//! Rendering of synthetic pages: template + epoch + data → DOM.
//!
//! The rendered markup deliberately exhibits the idioms the paper's wrappers
//! exploit: semantic `id`/`class` attributes on containers, optional
//! Microdata (`itemprop`), template labels such as `Director:` next to the
//! data values, item lists with a header element and surrounding adverts,
//! a search form, pagination links, navigation chrome, and a varying amount
//! of boilerplate (promos, ads) that shifts positional indices over time.

use crate::data::{ListItem, PageData};
use crate::epoch::{BlockKind, Epoch, SemanticName};
use crate::style::{LabelStyle, ListKind, SiteStyle, Vertical};
use wi_dom::{el, text, Document, TreeSpec};

/// Which page of a site is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// An entity detail page (movie, hotel, product, article).
    Detail,
    /// A listing / search-results page (larger main list, no article body).
    Listing,
}

/// Everything the renderer needs for one page.
#[derive(Debug, Clone)]
pub struct RenderInput<'a> {
    /// The site's structural style.
    pub style: &'a SiteStyle,
    /// The site's vertical.
    pub vertical: Vertical,
    /// The evolution state at the rendered date.
    pub epoch: &'a Epoch,
    /// The page's data.
    pub data: &'a PageData,
    /// The kind of page.
    pub kind: PageKind,
    /// How many list items are shown (list-length evolution applied).
    pub shown_items: usize,
}

impl<'a> RenderInput<'a> {
    fn sem(&self, name: SemanticName, default: &str) -> String {
        self.epoch.semantic(name, default)
    }

    /// A prefixed class name, re-namespaced after a site-wide redesign (a
    /// redesign renames essentially every styling class of the site, which is
    /// the paper's break group (b): both human and induced wrappers fail at
    /// the same time).
    fn c(&self, suffix: &str) -> String {
        let base = self.style.cls(suffix);
        if self.epoch.redesign_level > 0 {
            format!("{}-v{}", base, self.epoch.redesign_level + 1)
        } else {
            base
        }
    }

    fn header_label_for_list(&self) -> &'static str {
        match (self.vertical, self.kind) {
            (Vertical::News, _) => "Latest News",
            (Vertical::Movies | Vertical::Video, _) => "Cast",
            (Vertical::Travel, _) => "Offers:",
            (Vertical::Sports, _) => "Results",
            (Vertical::Finance, _) => "Top Movers",
            (_, PageKind::Listing) => "Results",
            _ => "Highlights",
        }
    }
}

/// Renders a full page.
pub fn render_page(input: &RenderInput<'_>) -> Document {
    let style = input.style;
    let epoch = input.epoch;

    let mut body_children: Vec<TreeSpec> = Vec::new();
    body_children.push(render_header(input));

    // Promo / banner blocks inserted before the content over time: these are
    // the classic cause of canonical-path breaks.
    for i in 0..epoch.promo_blocks {
        body_children.push(
            el("div").attr("class", input.c("promo")).child(
                el("a").attr("href", format!("/promo/{i}")).child(
                    el("img")
                        .attr("class", "banner")
                        .attr("src", format!("/img/banner{i}.png")),
                ),
            ),
        );
    }

    // Main content column + sidebar, wrapped in the site's decorative
    // wrapper depth (redesigns add one more level).
    let main = render_main_content(input);
    let sidebar = render_sidebar(input);
    let total_wrappers = style.wrapper_depth + epoch.redesign_level as usize;
    let mut columns = el("div")
        .attr("class", input.c("columns"))
        .child(main)
        .child(sidebar);
    for depth in (0..total_wrappers).rev() {
        columns = el("div")
            .attr("class", format!("{}-{}", input.c("wrap"), depth))
            .child(columns);
    }
    body_children.push(columns);

    body_children.push(render_footer(input));

    el("html")
        .child(
            el("head")
                .child(el("title").child(text(input.data.entity_title.clone())))
                .child(
                    el("meta")
                        .attr("name", "description")
                        .attr("content", input.data.paragraphs[0].clone()),
                ),
        )
        .child(
            el("body")
                .attr("class", input.c("page"))
                .children(body_children),
        )
        .into_document()
}

fn render_header(input: &RenderInput<'_>) -> TreeSpec {
    let style = input.style;
    let epoch = input.epoch;
    let mut header = el("div")
        .attr("id", style.header_id.clone())
        .attr("class", input.c("header"));

    header = header.child(
        el("a")
            .attr("href", "/")
            .attr("class", input.c("logo-link"))
            .child(
                el("img")
                    .attr("class", "logo")
                    .attr("id", "logo")
                    .attr("src", "/img/logo.png")
                    .attr("alt", "logo"),
            ),
    );

    if style.has_search && epoch.has_block(BlockKind::SearchForm) {
        header = header.child(
            el("form")
                .attr("action", "/search")
                .attr("id", "searchForm")
                .attr("class", input.c("search"))
                .child(
                    el("input")
                        .attr("type", "text")
                        .attr("name", "q")
                        .attr("placeholder", "Search"),
                )
                .child(el("input").attr("type", "submit").attr("value", "Go")),
        );
    }

    let nav_count = (style.nav_items as i32 + epoch.nav_delta).clamp(2, 12) as usize;
    let sections = [
        "Home",
        "World",
        "Business",
        "Technology",
        "Science",
        "Health",
        "Sports",
        "Arts",
        "Style",
        "Travel",
        "Video",
        "Archive",
    ];
    let mut nav = el("ul").attr("class", input.c("nav"));
    for section in sections.iter().take(nav_count) {
        nav = nav.child(
            el("li").attr("class", input.c("nav-item")).child(
                el("a")
                    .attr("href", format!("/{}", section.to_lowercase()))
                    .child(text(*section)),
            ),
        );
    }
    header.child(nav)
}

fn render_main_content(input: &RenderInput<'_>) -> TreeSpec {
    let style = input.style;
    let epoch = input.epoch;
    let data = input.data;

    let container_id = input.sem(SemanticName::ContainerId, &style.container_id);
    let versioned = input.sem(SemanticName::VersionedClass, &style.versioned_class);

    let mut main = el("div")
        .attr("id", container_id)
        .attr("class", input.c("content"));

    // Headline.
    let mut h1 = el("h1").attr("class", versioned);
    if style.uses_microdata {
        h1 = h1.attr("itemprop", "name");
    }
    main = main.child(h1.child(text(data.entity_title.clone())));

    // Meta row: rating, date, price.
    main = main.child(
        el("div")
            .attr("class", input.c("meta"))
            .child(
                el("span")
                    .attr("class", input.c("rating"))
                    .child(text(data.rating.clone())),
            )
            .child(
                el("span")
                    .attr("class", input.c("date"))
                    .child(text(data.date.clone())),
            )
            .child(
                el("span")
                    .attr("class", input.c("price"))
                    .attr("itemprop", if style.uses_microdata { "price" } else { "p" })
                    .child(text(data.price.clone())),
            ),
    );

    // Label–value field rows; the first row is the "primary field" block.
    if input.kind == PageKind::Detail {
        for (i, (label, value)) in data.fields.iter().enumerate() {
            if i == 0 && !epoch.has_block(BlockKind::PrimaryField) {
                continue;
            }
            main = main.child(render_field_row(input, label, value, i));
        }

        // Secondary people row ("Stars: …").
        if epoch.has_block(BlockKind::PeopleRow) {
            let mut row = el("div").attr(
                "class",
                input.sem(SemanticName::BlockClass, &input.c("block")),
            );
            row = row.child(
                el("h4")
                    .attr("class", input.sem(SemanticName::LabelClass, "inline"))
                    .child(text("Stars:")),
            );
            for person in &data.secondary_people {
                let mut span =
                    el("span").attr("class", input.sem(SemanticName::ValueClass, "itemprop"));
                if style.uses_microdata {
                    span = span.attr("itemprop", "name");
                }
                row = row.child(
                    el("a")
                        .attr("href", format!("/person/{}", slug(person)))
                        .child(span.child(text(person.clone()))),
                );
            }
            main = main.child(row);
        }
    }

    // Main item list.
    if epoch.has_block(BlockKind::MainList) {
        main = main.child(render_main_list(input));
    }

    // Pagination.
    if epoch.has_block(BlockKind::NextLink) {
        main = main.child(
            el("div")
                .attr("class", input.c("pager"))
                .child(
                    el("a")
                        .attr("href", "?page=0")
                        .attr("class", input.c("prev"))
                        .child(text("Previous")),
                )
                .child(
                    el("a")
                        .attr("href", "?page=2")
                        .attr("rel", "next")
                        .attr("class", input.c("next"))
                        .child(text("Next")),
                ),
        );
    }

    // Article body.
    if input.kind == PageKind::Detail {
        let mut article = el("div").attr("class", input.c("article"));
        for p in &data.paragraphs {
            article = article.child(el("p").child(text(p.clone())));
        }
        main = main.child(article);
    }

    main
}

fn render_field_row(input: &RenderInput<'_>, label: &str, value: &str, index: usize) -> TreeSpec {
    let style = input.style;
    let block_class = input.sem(SemanticName::BlockClass, &input.c("block"));
    let label_class = input.sem(SemanticName::LabelClass, "inline");
    let value_class = input.sem(SemanticName::ValueClass, "itemprop");

    let mut value_span = el("span").attr("class", value_class);
    if style.uses_microdata {
        value_span = value_span.attr("itemprop", if index == 0 { "name" } else { "value" });
    }
    let value_node = el("a")
        .attr("href", format!("/ref/{}", slug(value)))
        .child(value_span.child(text(value)));

    match style.label_style {
        LabelStyle::Heading => el("div")
            .attr("class", block_class)
            .child(el("h4").attr("class", label_class).child(text(label)))
            .child(value_node),
        LabelStyle::Strong => el("div")
            .attr("class", block_class)
            .child(el("strong").child(text(label)))
            .child(value_node),
        LabelStyle::TitleAttribute => el("div")
            .attr("class", block_class)
            .attr("title", label.trim_end_matches(':'))
            .child(el("span").attr("class", label_class).child(text(label)))
            .child(value_node),
    }
}

fn render_main_list(input: &RenderInput<'_>) -> TreeSpec {
    let style = input.style;
    let list_class = input.sem(SemanticName::ListClass, &input.c("list-box"));
    let items: Vec<&ListItem> = input
        .data
        .list_items
        .iter()
        .take(input.shown_items)
        .collect();

    let mut container = el("div")
        .attr("class", list_class)
        .child(
            el("h3")
                .attr("class", input.c("list-head"))
                .child(text(input.header_label_for_list())),
        )
        // A leading advert inside the list region: the robust multi-target
        // wrappers need sideways checks to skip it.
        .child(
            el("div")
                .attr("class", input.c("list-ad"))
                .child(el("img").attr("class", "adv").attr("src", "/img/spot.png")),
        );

    let list = match style.list_kind {
        ListKind::UnorderedList => {
            let mut ul = el("ul").attr("class", input.c("items"));
            for item in &items {
                ul = ul.child(
                    el("li")
                        .attr("class", input.c("item"))
                        .child(
                            el("a")
                                .attr("class", input.c("item-title"))
                                .attr("href", format!("/item/{}", slug(&item.title)))
                                .child(text(item.title.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-person"))
                                .child(text(item.person.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-price"))
                                .child(text(item.price.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-date"))
                                .child(text(item.date.clone())),
                        ),
                );
            }
            ul
        }
        ListKind::Table => {
            let mut table = el("table").attr("class", input.c("items"));
            table = table.child(
                el("tr")
                    .attr("class", input.c("head-row"))
                    .child(el("th").child(text("Title")))
                    .child(el("th").child(text("Name")))
                    .child(el("th").child(text("Price")))
                    .child(el("th").child(text("Date"))),
            );
            for item in &items {
                table = table.child(
                    el("tr")
                        .attr("class", input.c("item"))
                        .child(
                            el("td").child(
                                el("a")
                                    .attr("class", input.c("item-title"))
                                    .attr("href", format!("/item/{}", slug(&item.title)))
                                    .child(text(item.title.clone())),
                            ),
                        )
                        .child(
                            el("td")
                                .attr("class", input.c("item-person"))
                                .child(text(item.person.clone())),
                        )
                        .child(
                            el("td")
                                .attr("class", input.c("item-price"))
                                .child(text(item.price.clone())),
                        )
                        .child(
                            el("td")
                                .attr("class", input.c("item-date"))
                                .child(text(item.date.clone())),
                        ),
                );
            }
            table
        }
        ListKind::DivGrid => {
            let mut grid = el("div").attr("class", input.c("grid"));
            for item in &items {
                grid = grid.child(
                    el("div")
                        .attr("class", input.c("cell"))
                        .child(el("img").attr("src", format!("/thumb/{}.jpg", slug(&item.title))))
                        .child(
                            el("a")
                                .attr("class", input.c("item-title"))
                                .attr("href", format!("/item/{}", slug(&item.title)))
                                .child(text(item.title.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-person"))
                                .child(text(item.person.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-price"))
                                .child(text(item.price.clone())),
                        )
                        .child(
                            el("span")
                                .attr("class", input.c("item-date"))
                                .child(text(item.date.clone())),
                        ),
                );
            }
            grid
        }
    };
    container = container.child(list);
    // A trailing advert after the list.
    container.child(
        el("div")
            .attr("class", input.c("list-ad"))
            .child(el("img").attr("class", "adv").attr("src", "/img/spot2.png")),
    )
}

fn render_sidebar(input: &RenderInput<'_>) -> TreeSpec {
    let style = input.style;
    let epoch = input.epoch;
    let data = input.data;

    let mut sidebar = el("div")
        .attr("id", "sidebar")
        .attr("class", input.c("sidebar"));

    if epoch.has_block(BlockKind::Sidebar) {
        let mut related = el("ul").attr("class", input.c("related"));
        // For shopping listings the sidebar is a refine-by-person facet —
        // this is the structural positive noise source the paper's NER
        // experiment runs into (author lists in a sidebar).
        let entries: Vec<String> = if input.vertical == Vertical::Shopping {
            data.secondary_people.clone()
        } else {
            data.related.clone()
        };
        for entry in entries {
            related = related.child(
                el("li").attr("class", input.c("related-item")).child(
                    el("a")
                        .attr("href", format!("/related/{}", slug(&entry)))
                        .child(text(entry)),
                ),
            );
        }
        sidebar = sidebar.child(
            el("div")
                .attr("class", input.c("related-box"))
                .child(el("h3").child(text("Related")))
                .child(related),
        );
    }

    let ad_count = (style.ad_slots as i32 + epoch.ad_delta).clamp(0, 6) as usize;
    for i in 0..ad_count {
        sidebar = sidebar.child(
            el("div").attr("class", input.c("ad")).child(
                el("img")
                    .attr("class", "adv")
                    .attr("src", format!("/ads/{i}.gif")),
            ),
        );
    }
    sidebar
}

fn render_footer(input: &RenderInput<'_>) -> TreeSpec {
    el("div")
        .attr("id", "footer")
        .attr("class", input.c("footer"))
        .child(el("a").attr("href", "/about").child(text("About")))
        .child(el("a").attr("href", "/contact").child(text("Contact")))
        .child(el("a").attr("href", "/terms").child(text("Terms")))
}

/// A crude slug for URLs.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Day;

    fn input_for(seed: u64, vertical: Vertical) -> (SiteStyle, Epoch, PageData) {
        let style = SiteStyle::from_seed(seed);
        let epoch = Epoch::initial(Day(0), 0);
        let data = PageData::generate(vertical, seed, 0, 0);
        (style, epoch, data)
    }

    fn render(seed: u64, vertical: Vertical) -> (Document, PageData, SiteStyle) {
        let (style, epoch, data) = input_for(seed, vertical);
        let shown = data.list_items.len();
        let doc = render_page(&RenderInput {
            style: &style,
            vertical,
            epoch: &epoch,
            data: &data,
            kind: PageKind::Detail,
            shown_items: shown,
        });
        (doc, data, style)
    }

    #[test]
    fn page_has_expected_chrome() {
        let (doc, _, style) = render(1, Vertical::Movies);
        assert_eq!(doc.elements_by_tag("html").len(), 1);
        assert!(!doc.elements_by_tag("h1").is_empty());
        assert!(doc.element_by_id(&style.header_id).is_some());
        assert!(doc.element_by_id("footer").is_some());
        // search input present for styles with search
        if style.has_search {
            let inputs = doc.elements_by_tag("input");
            assert!(inputs
                .iter()
                .any(|&i| doc.attribute(i, "name") == Some("q")));
        }
    }

    #[test]
    fn primary_field_contains_label_and_value() {
        let (doc, data, _) = render(2, Vertical::Movies);
        let label = data.primary_label().to_string();
        let value = data.fields[0].1.clone();
        assert!(
            doc.descendants(doc.root())
                .any(|n| doc.is_text(n) && doc.text_content(n) == Some(label.as_str())),
            "label {label} not rendered"
        );
        assert!(
            doc.descendants(doc.root())
                .any(|n| doc.is_text(n) && doc.text_content(n) == Some(value.as_str())),
            "value {value} not rendered"
        );
    }

    #[test]
    fn list_items_rendered_for_each_list_kind() {
        for seed in 0..12 {
            let (doc, data, style) = render(seed, Vertical::Sports);
            for item in data.list_items.iter() {
                assert!(
                    doc.descendants(doc.root()).any(|n| {
                        doc.is_text(n) && doc.text_content(n) == Some(item.title.as_str())
                    }),
                    "list item {} missing (style {:?})",
                    item.title,
                    style.list_kind
                );
            }
        }
    }

    #[test]
    fn shown_items_limits_list() {
        let style = SiteStyle::from_seed(3);
        let epoch = Epoch::initial(Day(0), 0);
        let data = PageData::generate(Vertical::News, 3, 0, 0);
        let doc = render_page(&RenderInput {
            style: &style,
            vertical: Vertical::News,
            epoch: &epoch,
            data: &data,
            kind: PageKind::Listing,
            shown_items: 2,
        });
        let shown = data
            .list_items
            .iter()
            .filter(|it| {
                doc.descendants(doc.root())
                    .any(|n| doc.is_text(n) && doc.text_content(n) == Some(it.title.as_str()))
            })
            .count();
        assert_eq!(shown, 2);
    }

    #[test]
    fn promo_blocks_shift_positions() {
        let style = SiteStyle::from_seed(4);
        let data = PageData::generate(Vertical::Finance, 4, 0, 0);
        let epoch0 = Epoch::initial(Day(0), 0);
        let mut epoch1 = Epoch::initial(Day(20), 0);
        epoch1.promo_blocks = 2;
        let mk = |epoch: &Epoch| {
            render_page(&RenderInput {
                style: &style,
                vertical: Vertical::Finance,
                epoch,
                data: &data,
                kind: PageKind::Detail,
                shown_items: data.list_items.len(),
            })
        };
        let d0 = mk(&epoch0);
        let d1 = mk(&epoch1);
        let h1_0 = d0.elements_by_tag("h1")[0];
        let h1_1 = d1.elements_by_tag("h1")[0];
        let canon0 = wi_xpath::canonical_path(&d0, h1_0);
        let canon1 = wi_xpath::canonical_path(&d1, h1_1);
        assert_ne!(canon0.to_string(), canon1.to_string());
    }

    #[test]
    fn semantic_rename_changes_markup_but_keeps_content() {
        let style = SiteStyle::from_seed(5);
        let data = PageData::generate(Vertical::Movies, 5, 0, 0);
        let clean = Epoch::initial(Day(0), 0);
        let mut renamed = Epoch::initial(Day(400), 0);
        renamed.renames.insert(
            crate::epoch::SemanticName::ContainerId,
            "homepage-content".to_string(),
        );
        let mk = |epoch: &Epoch| {
            render_page(&RenderInput {
                style: &style,
                vertical: Vertical::Movies,
                epoch,
                data: &data,
                kind: PageKind::Detail,
                shown_items: data.list_items.len(),
            })
        };
        let d0 = mk(&clean);
        let d1 = mk(&renamed);
        assert!(d0.element_by_id(&style.container_id).is_some());
        assert!(d1.element_by_id(&style.container_id).is_none());
        assert!(d1.element_by_id("homepage-content").is_some());
        // Content unchanged.
        let director = &data.fields[0].1;
        assert!(d1
            .descendants(d1.root())
            .any(|n| d1.is_text(n) && d1.text_content(n) == Some(director.as_str())));
    }

    #[test]
    fn removed_blocks_disappear() {
        let style = SiteStyle::from_seed(6);
        let data = PageData::generate(Vertical::Travel, 6, 0, 0);
        let mut epoch = Epoch::initial(Day(900), 0);
        epoch.removed_blocks.insert(BlockKind::PrimaryField);
        epoch.removed_blocks.insert(BlockKind::NextLink);
        let doc = render_page(&RenderInput {
            style: &style,
            vertical: Vertical::Travel,
            epoch: &epoch,
            data: &data,
            kind: PageKind::Detail,
            shown_items: data.list_items.len(),
        });
        let primary_value = &data.fields[0].1;
        assert!(!doc
            .descendants(doc.root())
            .any(|n| doc.is_text(n) && doc.text_content(n) == Some(primary_value.as_str())));
        assert!(!doc
            .descendants(doc.root())
            .any(|n| doc.is_text(n) && doc.text_content(n) == Some("Next")));
        // Other fields are still there.
        let second_value = &data.fields[1].1;
        assert!(doc
            .descendants(doc.root())
            .any(|n| doc.is_text(n) && doc.text_content(n) == Some(second_value.as_str())));
    }

    #[test]
    fn microdata_only_when_style_says_so() {
        let with: Vec<u64> = (0..20)
            .filter(|&s| SiteStyle::from_seed(s).uses_microdata)
            .collect();
        let without: Vec<u64> = (0..20)
            .filter(|&s| !SiteStyle::from_seed(s).uses_microdata)
            .collect();
        assert!(!with.is_empty() && !without.is_empty());
        let (doc_with, _, _) = render(with[0], Vertical::Movies);
        let (doc_without, _, _) = render(without[0], Vertical::Movies);
        let count = |doc: &Document| {
            doc.descendants(doc.root())
                .filter(|&n| doc.attribute(n, "itemprop") == Some("name"))
                .count()
        };
        assert!(count(&doc_with) > 0);
        assert_eq!(count(&doc_without), 0);
    }

    #[test]
    fn page_sizes_are_realistic() {
        for seed in 0..8 {
            let (doc, _, _) = render(seed, Vertical::News);
            let elements = doc.element_count();
            assert!(
                (60..2000).contains(&elements),
                "unexpected page size: {elements} elements"
            );
        }
    }
}
