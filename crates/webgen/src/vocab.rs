//! Word pools and deterministic value generators for synthetic page content.
//!
//! The generated pages are filled with plausible-looking data (person names,
//! titles, places, prices, dates …).  All draws are deterministic functions
//! of a seed, so the "same page" rendered twice contains the same values and
//! the data oracle in [`crate::tasks`] can re-identify target nodes by value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First names used for person generation.
pub const FIRST_NAMES: &[&str] = &[
    "Martin",
    "Sofia",
    "Quentin",
    "Ava",
    "Noah",
    "Olivia",
    "Liam",
    "Emma",
    "Mason",
    "Isabella",
    "Ethan",
    "Mia",
    "Lucas",
    "Amelia",
    "Henry",
    "Charlotte",
    "Leo",
    "Harper",
    "Jack",
    "Grace",
    "Daniel",
    "Chloe",
    "Samuel",
    "Ella",
    "David",
    "Nora",
    "Joseph",
    "Lily",
    "Victor",
    "Ruth",
];

/// Last names used for person generation.
pub const LAST_NAMES: &[&str] = &[
    "Scorsese",
    "Coppola",
    "Tarantino",
    "Bigelow",
    "Anderson",
    "Nolan",
    "Kurosawa",
    "Miller",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Lee",
    "Walker",
    "Hall",
    "Allen",
    "Young",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
];

/// Nouns for titles (movies, products, articles, hotels).
pub const TITLE_NOUNS: &[&str] = &[
    "Empire", "River", "Shadow", "Garden", "Mountain", "Harbor", "Signal", "Voyage", "Archive",
    "Meridian", "Compass", "Lantern", "Orchard", "Summit", "Canyon", "Monarch", "Horizon",
    "Beacon", "Atlas", "Mirage",
];

/// Adjectives for titles.
pub const TITLE_ADJECTIVES: &[&str] = &[
    "Silent",
    "Golden",
    "Hidden",
    "Broken",
    "Electric",
    "Distant",
    "Crimson",
    "Frozen",
    "Restless",
    "Lucky",
    "Midnight",
    "Endless",
    "Roaring",
    "Quiet",
    "Painted",
    "Savage",
    "Velvet",
    "Northern",
    "Wandering",
    "Final",
];

/// City names for locations.
pub const CITIES: &[&str] = &[
    "San Francisco",
    "Edinburgh",
    "Oxford",
    "Lisbon",
    "Kyoto",
    "Toronto",
    "Melbourne",
    "Valparaiso",
    "Reykjavik",
    "Marrakesh",
    "Lucerne",
    "Tallinn",
    "Porto",
    "Savannah",
    "Wellington",
    "Bergen",
    "Ljubljana",
    "Galway",
    "Bruges",
    "Dubrovnik",
];

/// Countries for locations.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "United Kingdom",
    "Portugal",
    "Japan",
    "Canada",
    "Australia",
    "Chile",
    "Iceland",
    "Morocco",
    "Switzerland",
    "Estonia",
    "New Zealand",
    "Norway",
    "Slovenia",
    "Ireland",
    "Belgium",
    "Croatia",
    "France",
    "Italy",
    "Spain",
];

/// Organisation names.
pub const ORGANISATIONS: &[&str] = &[
    "Acme Corp",
    "Globex",
    "Initech",
    "Umbrella Partners",
    "Stark Industries",
    "Wayne Enterprises",
    "Hooli",
    "Vandelay Industries",
    "Wonka Labs",
    "Tyrell Analytics",
    "Cyberdyne Systems",
    "Aperture Research",
    "Oscorp",
    "Soylent Foods",
    "Gringotts Finance",
];

/// Product categories.
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "Wireless Headphones",
    "Espresso Machine",
    "Trail Backpack",
    "Mechanical Keyboard",
    "Road Bike",
    "Field Camera",
    "Desk Lamp",
    "Air Purifier",
    "Hiking Boots",
    "Watch",
    "Notebook",
    "Monitor",
    "Drone",
    "Blender",
    "Tent",
];

/// Month names used when formatting textual dates.
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Headline verbs for news generation.
pub const HEADLINE_VERBS: &[&str] = &[
    "announces",
    "unveils",
    "reports",
    "wins",
    "faces",
    "expands",
    "launches",
    "acquires",
    "reviews",
    "confirms",
    "delays",
    "opens",
];

/// A deterministic content generator seeded per (site, page, epoch).
#[derive(Debug)]
pub struct ValueGen {
    rng: StdRng,
}

impl ValueGen {
    /// Creates a generator from a compound seed.
    pub fn new(seed: u64) -> Self {
        ValueGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.random_range(0..pool.len())]
    }

    /// A random integer in a range.
    pub fn int(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.rng.random_range(range)
    }

    /// A person name ("First Last").
    pub fn person(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES))
    }

    /// A person name with a middle initial ("First Q. Last").  Used for the
    /// page's primary person so it can never textually collide with the
    /// plain names used in item lists.
    pub fn person_with_initial(&mut self) -> String {
        let first = self.pick(FIRST_NAMES);
        let initial = (b'A' + self.rng.random_range(0..26) as u8) as char;
        format!("{} {}. {}", first, initial, self.pick(LAST_NAMES))
    }

    /// An abbreviated person name ("F. Last"), used in item lists.
    pub fn person_short(&mut self) -> String {
        let first = self.pick(FIRST_NAMES);
        let initial = first.chars().next().unwrap_or('A');
        format!("{}. {}", initial, self.pick(LAST_NAMES))
    }

    /// A title ("Adjective Noun").
    pub fn title(&mut self) -> String {
        format!("{} {}", self.pick(TITLE_ADJECTIVES), self.pick(TITLE_NOUNS))
    }

    /// A news headline.
    pub fn headline(&mut self) -> String {
        format!(
            "{} {} {} {}",
            self.pick(ORGANISATIONS),
            self.pick(HEADLINE_VERBS),
            self.pick(TITLE_ADJECTIVES).to_lowercase(),
            self.pick(TITLE_NOUNS).to_lowercase()
        )
    }

    /// A city.
    pub fn city(&mut self) -> String {
        self.pick(CITIES).to_string()
    }

    /// A country.
    pub fn country(&mut self) -> String {
        self.pick(COUNTRIES).to_string()
    }

    /// An organisation.
    pub fn organisation(&mut self) -> String {
        self.pick(ORGANISATIONS).to_string()
    }

    /// A product name.
    pub fn product(&mut self) -> String {
        format!(
            "{} {}",
            self.pick(TITLE_ADJECTIVES),
            self.pick(PRODUCT_CATEGORIES)
        )
    }

    /// A price string ("$123.45").
    pub fn price(&mut self) -> String {
        format!(
            "${}.{:02}",
            self.rng.random_range(5..900),
            self.rng.random_range(0..100)
        )
    }

    /// A textual date ("March 14, 2011").
    pub fn textual_date(&mut self) -> String {
        format!(
            "{} {}, {}",
            self.pick(MONTHS),
            self.rng.random_range(1..29),
            self.rng.random_range(2004..2016)
        )
    }

    /// A star rating ("7.9").
    pub fn rating(&mut self) -> String {
        format!(
            "{}.{}",
            self.rng.random_range(4..10),
            self.rng.random_range(0..10)
        )
    }

    /// A short sentence of filler prose.
    pub fn sentence(&mut self) -> String {
        format!(
            "The {} {} near the {} drew attention in {}.",
            self.pick(TITLE_ADJECTIVES).to_lowercase(),
            self.pick(TITLE_NOUNS).to_lowercase(),
            self.pick(CITIES),
            self.rng.random_range(2004..2016)
        )
    }

    /// `n` distinct person names.
    pub fn people(&mut self, n: usize) -> Vec<String> {
        let mut out = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while out.len() < n {
            let p = self.person();
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }
}

/// Mixes several seed components into one `u64` (a tiny splitmix-style hash,
/// good enough for decorrelating site/page/epoch streams).
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ValueGen::new(42);
        let mut b = ValueGen::new(42);
        assert_eq!(a.person(), b.person());
        assert_eq!(a.title(), b.title());
        assert_eq!(a.price(), b.price());
        assert_eq!(a.headline(), b.headline());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ValueGen::new(1);
        let mut b = ValueGen::new(2);
        // Not guaranteed for any single draw, but across several draws the
        // streams must diverge.
        let va: Vec<String> = (0..5).map(|_| a.person()).collect();
        let vb: Vec<String> = (0..5).map(|_| b.person()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn people_are_distinct() {
        let mut g = ValueGen::new(7);
        let people = g.people(20);
        let set: std::collections::HashSet<_> = people.iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn price_and_rating_format() {
        let mut g = ValueGen::new(3);
        let p = g.price();
        assert!(p.starts_with('$') && p.contains('.'));
        let r = g.rating();
        assert!(r.contains('.'));
        assert!(r.len() <= 4);
    }

    #[test]
    fn mix_seed_is_order_sensitive() {
        assert_ne!(mix_seed(&[1, 2]), mix_seed(&[2, 1]));
        assert_eq!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 3]));
        assert_ne!(mix_seed(&[1]), mix_seed(&[1, 0]));
    }
}
