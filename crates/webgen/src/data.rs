//! Deterministic page content ("the data behind the template").
//!
//! A [`PageData`] value holds everything variable that a rendered page shows:
//! the entity (movie, hotel, product, article…), the people involved, the
//! main item list, label–value fields, prices, dates, prose.  It is a pure
//! function of `(site seed, page index, content epoch)`, which is what lets
//! the ground-truth oracle in [`crate::tasks`] re-identify target nodes *by
//! value* on any snapshot — the same way the paper's automated annotators
//! find known instances in pages.

use crate::style::Vertical;
use crate::vocab::{mix_seed, ValueGen};
use serde::{Deserialize, Serialize};

/// One entry of a page's main item list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListItem {
    /// The item's title (result title, cast member role, news headline…).
    pub title: String,
    /// A person associated with the item (author, actor, agent).
    pub person: String,
    /// A price string (product lists, hotel offers).
    pub price: String,
    /// A textual date.
    pub date: String,
    /// A location string.
    pub location: String,
}

/// All variable content of one page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageData {
    /// Main entity title (movie title, hotel name, product name, headline).
    pub entity_title: String,
    /// The primary person of the page (director, author, listing agent).
    pub primary_person: String,
    /// Secondary people (stars, co-authors).
    pub secondary_people: Vec<String>,
    /// The page's main item list.
    pub list_items: Vec<ListItem>,
    /// Label–value rows rendered as template fields.
    pub fields: Vec<(String, String)>,
    /// A price associated with the entity.
    pub price: String,
    /// A rating value.
    pub rating: String,
    /// A textual date (release date, publication date).
    pub date: String,
    /// The entity's location.
    pub location: String,
    /// An organisation related to the entity (studio, publisher, chain).
    pub organisation: String,
    /// Body paragraphs.
    pub paragraphs: Vec<String>,
    /// Sidebar "related" link labels.
    pub related: Vec<String>,
}

impl PageData {
    /// Generates the content of a page.
    ///
    /// `content_epoch` changes whenever the site's data is "refreshed"
    /// (articles rotate, prices change); two snapshots within the same epoch
    /// show identical data.
    pub fn generate(
        vertical: Vertical,
        site_seed: u64,
        page_index: u64,
        content_epoch: u64,
    ) -> PageData {
        let mut g = ValueGen::new(mix_seed(&[site_seed, page_index, content_epoch, 0xda7a]));
        // The entity itself is stable across content epochs (an IMDB movie
        // page keeps its movie); only the surrounding data rotates.
        let mut stable = ValueGen::new(mix_seed(&[site_seed, page_index, 0x57ab1e]));
        let entity_title = format!("The {}", stable.title());
        let primary_person = stable.person_with_initial();
        let location = stable.city();
        let organisation = stable.organisation();

        let list_len = (4
            + (mix_seed(&[site_seed, page_index]) % 6) as i64
            + (content_epoch % 3) as i64) as usize;
        let list_items = (0..list_len)
            .map(|_| ListItem {
                title: g.title(),
                person: g.person_short(),
                price: g.price(),
                date: g.textual_date(),
                location: g.city(),
            })
            .collect();

        let fields = match vertical {
            Vertical::Movies | Vertical::Video => vec![
                ("Director:".to_string(), primary_person.clone()),
                ("Country:".to_string(), stable.country()),
                ("Release Date:".to_string(), g.textual_date()),
                ("Rating:".to_string(), g.rating()),
            ],
            Vertical::Travel | Vertical::Events | Vertical::RealEstate => vec![
                ("Location:".to_string(), location.clone()),
                ("Country:".to_string(), stable.country()),
                ("Price:".to_string(), g.price()),
                ("Contact:".to_string(), primary_person.clone()),
            ],
            Vertical::Shopping | Vertical::Recipes => vec![
                ("Brand:".to_string(), organisation.clone()),
                ("Price:".to_string(), g.price()),
                ("Available:".to_string(), g.textual_date()),
                ("Seller:".to_string(), primary_person.clone()),
            ],
            Vertical::News | Vertical::Reference => vec![
                ("Author:".to_string(), primary_person.clone()),
                ("Published:".to_string(), g.textual_date()),
                ("Section:".to_string(), "Politics".to_string()),
                ("Source:".to_string(), organisation.clone()),
            ],
            Vertical::Sports | Vertical::Finance | Vertical::Jobs => vec![
                ("Organisation:".to_string(), organisation.clone()),
                ("Date:".to_string(), g.textual_date()),
                ("Location:".to_string(), location.clone()),
                ("Contact:".to_string(), primary_person.clone()),
            ],
        };

        PageData {
            entity_title,
            primary_person,
            secondary_people: g.people(4),
            list_items,
            fields,
            price: g.price(),
            rating: format!("{} / 10", g.rating()),
            date: g.textual_date(),
            location,
            organisation,
            paragraphs: (0..3).map(|_| g.sentence()).collect(),
            related: (0..5).map(|_| format!("About {}", g.title())).collect(),
        }
    }

    /// The label of the page's primary label–value field ("Director:",
    /// "Author:", "Location:" …).
    pub fn primary_label(&self) -> &str {
        &self.fields[0].0
    }

    /// All template labels of this page (used for template-only text
    /// policies in the induction configuration).
    pub fn template_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.fields.iter().map(|(l, _)| l.clone()).collect();
        labels.extend(
            [
                "Latest News",
                "Top Stories",
                "Results",
                "Cast",
                "Amenities",
                "Related",
                "Offers:",
                "Channels",
                "Next",
                "Search",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_deterministic() {
        let a = PageData::generate(Vertical::Movies, 7, 3, 5);
        let b = PageData::generate(Vertical::Movies, 7, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn entity_is_stable_across_content_epochs() {
        let a = PageData::generate(Vertical::Movies, 7, 3, 5);
        let b = PageData::generate(Vertical::Movies, 7, 3, 9);
        assert_eq!(a.entity_title, b.entity_title);
        assert_eq!(a.primary_person, b.primary_person);
        // …but the rotating content differs.
        assert_ne!(a.list_items, b.list_items);
    }

    #[test]
    fn different_pages_have_different_entities() {
        let a = PageData::generate(Vertical::Movies, 7, 0, 0);
        let b = PageData::generate(Vertical::Movies, 7, 1, 0);
        assert!(a.entity_title != b.entity_title || a.primary_person != b.primary_person);
    }

    #[test]
    fn vertical_specific_labels() {
        let movies = PageData::generate(Vertical::Movies, 1, 0, 0);
        assert_eq!(movies.primary_label(), "Director:");
        let travel = PageData::generate(Vertical::Travel, 1, 0, 0);
        assert_eq!(travel.primary_label(), "Location:");
        let news = PageData::generate(Vertical::News, 1, 0, 0);
        assert_eq!(news.primary_label(), "Author:");
        assert!(movies.template_labels().contains(&"Director:".to_string()));
    }

    #[test]
    fn list_lengths_in_expected_range() {
        for page in 0..20 {
            let d = PageData::generate(Vertical::Shopping, 11, page, 2);
            assert!(
                (4..=12).contains(&d.list_items.len()),
                "unexpected list length {}",
                d.list_items.len()
            );
        }
    }
}
