//! Page evolution: change events, per-site change timelines and the
//! accumulated [`Epoch`] state a page is rendered under.
//!
//! The paper tracks real pages through the Internet Archive and classifies
//! why wrappers break (Section 6.2): positional changes on the canonical
//! path, attribute-value renames (`"hp-content-block"` →
//! `"homepage-content-block"`), site-wide redesigns, disappearing targets and
//! erroneous archive snapshots.  This module generates, per site and fully
//! deterministically, a timeline of exactly these change classes; folding the
//! timeline up to a date yields the [`Epoch`] the renderer uses.

use crate::date::Day;
use crate::vocab::mix_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Template regions that can disappear from a page ("diminishing targets",
/// the paper's break group (f)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlockKind {
    /// The primary label–value row (e.g. the Director row).
    PrimaryField,
    /// The page's main item list.
    MainList,
    /// The secondary people row (stars / co-authors).
    PeopleRow,
    /// The sidebar with related links.
    Sidebar,
    /// The header search form.
    SearchForm,
    /// The pagination / next link.
    NextLink,
}

impl BlockKind {
    /// All removable blocks.
    pub const ALL: &'static [BlockKind] = &[
        BlockKind::PrimaryField,
        BlockKind::MainList,
        BlockKind::PeopleRow,
        BlockKind::Sidebar,
        BlockKind::SearchForm,
        BlockKind::NextLink,
    ];
}

/// Names (classes / ids) that semantic-rename events can hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SemanticName {
    /// The id of the main content container.
    ContainerId,
    /// The class of label–value blocks.
    BlockClass,
    /// The class of the main list.
    ListClass,
    /// The versioned headline class (`headline20` → `headline16`).
    VersionedClass,
    /// The class of the label element ("inline").
    LabelClass,
    /// The class of value elements ("itemprop"-style value class).
    ValueClass,
}

/// The coarse *class* of a change, aligned with the paper's Section 6.2
/// break groups.  This is the ground truth a maintenance subsystem's drift
/// classifier is scored against: every [`ChangeEvent`] maps onto exactly one
/// class via [`ChangeEvent::change_class`], and broken snapshots / content
/// rotation (which are not timeline events) have their own classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChangeClass {
    /// Chrome churn that shifts positional indices on canonical paths
    /// (groups (b)/(c): promo blocks, nav resizes, ad slots, list length).
    Positional,
    /// A semantic class/id rename (group (b)/(d): `"hp-content-block"` →
    /// `"homepage-content-block"`).
    AttributeRename,
    /// A site-wide redesign (group (d)).
    Redesign,
    /// The wrapper's target block disappeared (group (f), diminishing
    /// targets).
    TargetRemoved,
    /// The archive served an empty or truncated capture (group (e)).  Never
    /// produced by [`ChangeEvent::change_class`]; attached by callers that
    /// consult [`Timeline::snapshot_broken`].
    BrokenSnapshot,
    /// Only the rotating page data changed (no template event).  Never
    /// produced by [`ChangeEvent::change_class`]; the class of an epoch
    /// boundary with no structural event.
    ContentOnly,
}

impl ChangeClass {
    /// A short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ChangeClass::Positional => "positional",
            ChangeClass::AttributeRename => "attribute-rename",
            ChangeClass::Redesign => "redesign",
            ChangeClass::TargetRemoved => "target-removed",
            ChangeClass::BrokenSnapshot => "broken-snapshot",
            ChangeClass::ContentOnly => "content-only",
        }
    }
}

/// A single change event in a site's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChangeEvent {
    /// Insert (or remove, when `delta < 0`) promo/banner blocks before the
    /// main content — shifts positional indices on the canonical path.
    PromoDelta(i32),
    /// Resize the navigation menu.
    NavResize(i32),
    /// Change the number of advert slots in the sidebar.
    AdSlotsDelta(i32),
    /// Rename one semantic class/id to a new value.
    SemanticRename {
        /// Which name is renamed.
        name: SemanticName,
        /// The new value.
        to: String,
    },
    /// A site-wide redesign: class prefix changes, an extra wrapper level is
    /// introduced, the versioned class is bumped.
    Redesign,
    /// A template block disappears from the page.
    RemoveBlock(BlockKind),
    /// The main list gains or loses entries permanently.
    ListLengthDelta(i32),
}

impl ChangeEvent {
    /// The break-group class of this event (see [`ChangeClass`]).
    pub fn change_class(&self) -> ChangeClass {
        match self {
            ChangeEvent::PromoDelta(_)
            | ChangeEvent::NavResize(_)
            | ChangeEvent::AdSlotsDelta(_)
            | ChangeEvent::ListLengthDelta(_) => ChangeClass::Positional,
            ChangeEvent::SemanticRename { .. } => ChangeClass::AttributeRename,
            ChangeEvent::Redesign => ChangeClass::Redesign,
            ChangeEvent::RemoveBlock(_) => ChangeClass::TargetRemoved,
        }
    }
}

/// The accumulated state of a site's template at a given day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// The day this epoch describes.
    pub day: Day,
    /// Data-rotation epoch (changes every `content_period` days).
    pub content_epoch: u64,
    /// Number of promo blocks inserted before the main content.
    pub promo_blocks: usize,
    /// Navigation size delta relative to the style default.
    pub nav_delta: i32,
    /// Advert slots delta relative to the style default.
    pub ad_delta: i32,
    /// Accumulated renames of semantic names.
    pub renames: BTreeMap<SemanticName, String>,
    /// Number of redesigns applied so far.
    pub redesign_level: u32,
    /// Blocks removed from the template.
    pub removed_blocks: BTreeSet<BlockKind>,
    /// Permanent change to the main list length.
    pub list_len_delta: i32,
}

impl Epoch {
    /// The epoch of a pristine site at day zero.
    pub fn initial(day: Day, content_epoch: u64) -> Epoch {
        Epoch {
            day,
            content_epoch,
            promo_blocks: 0,
            nav_delta: 0,
            ad_delta: 0,
            renames: BTreeMap::new(),
            redesign_level: 0,
            removed_blocks: BTreeSet::new(),
            list_len_delta: 0,
        }
    }

    /// Returns the current value of a semantic name, falling back to the
    /// provided default and applying the redesign prefix if applicable.
    pub fn semantic(&self, name: SemanticName, default: &str) -> String {
        let base = self
            .renames
            .get(&name)
            .cloned()
            .unwrap_or_else(|| default.to_string());
        if self.redesign_level > 0 && !self.renames.contains_key(&name) {
            // A redesign re-namespaces classes that were not individually
            // renamed before.
            format!("{}-r{}", base, self.redesign_level)
        } else {
            base
        }
    }

    /// Whether a block is still present in the template.
    pub fn has_block(&self, block: BlockKind) -> bool {
        !self.removed_blocks.contains(&block)
    }

    fn apply(&mut self, event: &ChangeEvent) {
        match event {
            ChangeEvent::PromoDelta(d) => {
                self.promo_blocks = (self.promo_blocks as i32 + d).clamp(0, 4) as usize;
            }
            ChangeEvent::NavResize(d) => self.nav_delta += d,
            ChangeEvent::AdSlotsDelta(d) => self.ad_delta += d,
            ChangeEvent::SemanticRename { name, to } => {
                self.renames.insert(*name, to.clone());
            }
            ChangeEvent::Redesign => self.redesign_level += 1,
            ChangeEvent::RemoveBlock(b) => {
                self.removed_blocks.insert(*b);
            }
            ChangeEvent::ListLengthDelta(d) => self.list_len_delta += d,
        }
    }
}

/// A site's full change timeline plus the parameters needed to fold it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Events sorted by day.
    pub events: Vec<(Day, ChangeEvent)>,
    /// How often the page's rotating data changes (days).
    pub content_period: i64,
    /// Probability that any individual snapshot is broken (served empty or
    /// truncated by the archive).
    pub broken_snapshot_prob: f64,
    seed: u64,
}

/// Tuning knobs for timeline generation.  The defaults are calibrated so the
/// survival-time distributions of canonical / induced / human wrappers have
/// the shape of Figures 3 and 4 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionProfile {
    /// Mean days between chrome-churn events (promos, nav, ads).
    pub churn_interval: (i64, i64),
    /// Per-site probability that at least one semantic rename happens.
    pub semantic_rename_prob: f64,
    /// Per-site probability of a site-wide redesign during the window.
    pub redesign_prob: f64,
    /// Per-block probability that the block is removed during the window.
    pub block_removal_prob: f64,
    /// Probability that a snapshot is broken.
    pub broken_snapshot_prob: f64,
    /// First and last day events may be scheduled on.
    pub window: (i64, i64),
}

impl Default for EvolutionProfile {
    fn default() -> Self {
        EvolutionProfile {
            churn_interval: (30, 90),
            semantic_rename_prob: 0.45,
            redesign_prob: 0.35,
            block_removal_prob: 0.38,
            broken_snapshot_prob: 0.012,
            window: (-1500, 2200),
        }
    }
}

impl Timeline {
    /// Generates a site's timeline deterministically from its seed.
    pub fn generate(seed: u64, profile: &EvolutionProfile) -> Timeline {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[seed, 0xe1e17]));
        let mut events: Vec<(Day, ChangeEvent)> = Vec::new();
        let (start, end) = profile.window;

        // Chrome churn: positional changes that affect canonical paths but
        // rarely anything anchored on semantic attributes.
        let mut t = start;
        loop {
            t += rng.random_range(profile.churn_interval.0..=profile.churn_interval.1);
            if t >= end {
                break;
            }
            let event = match rng.random_range(0..4) {
                0 => ChangeEvent::PromoDelta(if rng.random_bool(0.6) { 1 } else { -1 }),
                1 => ChangeEvent::NavResize(rng.random_range(-1..=1)),
                2 => ChangeEvent::AdSlotsDelta(rng.random_range(-1..=1)),
                _ => ChangeEvent::ListLengthDelta(rng.random_range(-1..=1)),
            };
            events.push((Day(t), event));
        }

        // Semantic renames: these are what break attribute-anchored wrappers
        // (paper break-group (b)/(d): "hp-content-block" becomes
        // "homepage-content-block").
        if rng.random_bool(profile.semantic_rename_prob) {
            let count = rng.random_range(1..=2);
            for _ in 0..count {
                let day = Day(rng.random_range(80..end - 50));
                let name = match rng.random_range(0..6) {
                    0 => SemanticName::ContainerId,
                    1 => SemanticName::BlockClass,
                    2 => SemanticName::ListClass,
                    3 => SemanticName::VersionedClass,
                    4 => SemanticName::LabelClass,
                    _ => SemanticName::ValueClass,
                };
                let to = format!("renamed-{}-{}", rng.random_range(10..99), day.offset());
                events.push((day, ChangeEvent::SemanticRename { name, to }));
            }
        }

        // Site-wide redesign.
        if rng.random_bool(profile.redesign_prob) {
            let day = Day(rng.random_range(250..end - 30));
            events.push((day, ChangeEvent::Redesign));
        }

        // Diminishing targets.
        for &block in BlockKind::ALL {
            if rng.random_bool(profile.block_removal_prob) {
                let day = Day(rng.random_range(150..end));
                events.push((day, ChangeEvent::RemoveBlock(block)));
            }
        }

        events.sort_by_key(|(d, _)| *d);
        Timeline {
            events,
            content_period: rng.random_range(35..80),
            broken_snapshot_prob: profile.broken_snapshot_prob,
            seed,
        }
    }

    /// Folds the timeline up to (and including) `day` into an [`Epoch`].
    pub fn epoch_at(&self, day: Day) -> Epoch {
        let content_epoch = (day.offset() + 4000).max(0) as u64 / self.content_period as u64;
        let mut epoch = Epoch::initial(day, content_epoch);
        for (d, ev) in &self.events {
            if *d <= day {
                epoch.apply(ev);
            } else {
                break;
            }
        }
        epoch
    }

    /// Whether the archive snapshot at `day` is served broken (empty or
    /// truncated).  Deterministic per (site, day).
    pub fn snapshot_broken(&self, day: Day) -> bool {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[self.seed, 0xb40c, day.offset() as u64]));
        rng.random_bool(self.broken_snapshot_prob)
    }

    /// The events scheduled strictly after `after` and up to (and including)
    /// `upto`, in day order.  This is the ground-truth window a maintenance
    /// run consults when a wrapper that was healthy at `after` is found
    /// broken at `upto`.
    pub fn events_between(&self, after: Day, upto: Day) -> &[(Day, ChangeEvent)] {
        let lo = self.events.partition_point(|(d, _)| *d <= after);
        let hi = self.events.partition_point(|(d, _)| *d <= upto);
        &self.events[lo..hi]
    }

    /// The dominant [`ChangeClass`] of the window `(after, upto]`: the class
    /// a drift classifier should report for a break observed at `upto` after
    /// a healthy check at `after`.
    ///
    /// Broken snapshots dominate everything (the page itself is not
    /// trustworthy), then removal of the wrapper's own block (once the
    /// target is gone, concurrent template churn is moot), then redesigns
    /// (which subsume renames), then renames, then positional churn.  When
    /// no structural event falls in the window the class is
    /// [`ChangeClass::ContentOnly`].
    /// `role_block` restricts removal events to the block the maintained
    /// wrapper actually targets: a sidebar removal is positional noise for a
    /// headline wrapper, not a diminishing target.
    pub fn dominant_change_between(
        &self,
        after: Day,
        upto: Day,
        role_block: Option<BlockKind>,
    ) -> ChangeClass {
        if self.snapshot_broken(upto) {
            return ChangeClass::BrokenSnapshot;
        }
        let mut best = ChangeClass::ContentOnly;
        let mut rank = 0u8;
        for (_, event) in self.events_between(after, upto) {
            let class = match event {
                ChangeEvent::RemoveBlock(b) => {
                    if role_block == Some(*b) {
                        ChangeClass::TargetRemoved
                    } else {
                        ChangeClass::Positional
                    }
                }
                other => other.change_class(),
            };
            let r = match class {
                ChangeClass::TargetRemoved => 6,
                ChangeClass::Redesign => 5,
                ChangeClass::AttributeRename => 4,
                ChangeClass::Positional => 2,
                ChangeClass::ContentOnly | ChangeClass::BrokenSnapshot => 1,
            };
            if r > rank {
                rank = r;
                best = class;
            }
        }
        best
    }

    /// The day a block disappears, if it ever does.
    pub fn block_removed_at(&self, block: BlockKind) -> Option<Day> {
        self.events.iter().find_map(|(d, e)| match e {
            ChangeEvent::RemoveBlock(b) if *b == block => Some(*d),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_deterministic() {
        let p = EvolutionProfile::default();
        let a = Timeline::generate(5, &p);
        let b = Timeline::generate(5, &p);
        assert_eq!(a.events, b.events);
        assert_eq!(a.content_period, b.content_period);
    }

    #[test]
    fn events_are_sorted_and_windowed() {
        let p = EvolutionProfile::default();
        for seed in 0..10 {
            let t = Timeline::generate(seed, &p);
            assert!(!t.events.is_empty());
            for pair in t.events.windows(2) {
                assert!(pair[0].0 <= pair[1].0);
            }
            assert!(t
                .events
                .iter()
                .all(|(d, _)| d.offset() >= p.window.0 && d.offset() <= p.window.1));
        }
    }

    #[test]
    fn epochs_accumulate_monotonically() {
        let t = Timeline::generate(9, &EvolutionProfile::default());
        let early = t.epoch_at(Day(100));
        let late = t.epoch_at(Day(2000));
        assert!(late.removed_blocks.len() >= early.removed_blocks.len());
        assert!(late.redesign_level >= early.redesign_level);
        assert!(late.renames.len() >= early.renames.len());
        assert!(late.content_epoch >= early.content_epoch);
    }

    #[test]
    fn semantic_lookup_and_redesign_suffix() {
        let mut e = Epoch::initial(Day(0), 0);
        assert_eq!(e.semantic(SemanticName::ContainerId, "content"), "content");
        e.apply(&ChangeEvent::SemanticRename {
            name: SemanticName::ContainerId,
            to: "main-area".to_string(),
        });
        assert_eq!(
            e.semantic(SemanticName::ContainerId, "content"),
            "main-area"
        );
        e.apply(&ChangeEvent::Redesign);
        // Individually renamed names keep their value; others get namespaced.
        assert_eq!(
            e.semantic(SemanticName::ContainerId, "content"),
            "main-area"
        );
        assert_eq!(
            e.semantic(SemanticName::BlockClass, "txt-block"),
            "txt-block-r1"
        );
    }

    #[test]
    fn promo_blocks_clamped() {
        let mut e = Epoch::initial(Day(0), 0);
        for _ in 0..10 {
            e.apply(&ChangeEvent::PromoDelta(1));
        }
        assert!(e.promo_blocks <= 4);
        for _ in 0..10 {
            e.apply(&ChangeEvent::PromoDelta(-1));
        }
        assert_eq!(e.promo_blocks, 0);
    }

    #[test]
    fn block_removal_lookup() {
        let p = EvolutionProfile {
            block_removal_prob: 1.0,
            ..Default::default()
        };
        let t = Timeline::generate(3, &p);
        for &b in BlockKind::ALL {
            let day = t.block_removed_at(b).expect("block removal scheduled");
            assert!(!t.epoch_at(day).has_block(b));
            assert!(t.epoch_at(Day(day.offset() - 1)).has_block(b));
        }
    }

    #[test]
    fn events_between_is_exclusive_inclusive() {
        let t = Timeline::generate(7, &EvolutionProfile::default());
        assert!(!t.events.is_empty());
        let (first_day, _) = t.events[0];
        // A window ending exactly on an event day includes it …
        let upto_first = t.events_between(Day(i64::MIN), first_day);
        assert!(upto_first.iter().any(|(d, _)| *d == first_day));
        // … and a window starting on it excludes it.
        let after_first = t.events_between(first_day, Day(i64::MAX));
        assert!(after_first.iter().all(|(d, _)| *d > first_day));
        let total = t.events_between(Day(i64::MIN), Day(i64::MAX)).len();
        assert_eq!(total, t.events.len());
    }

    #[test]
    fn change_classes_map_break_groups() {
        assert_eq!(
            ChangeEvent::PromoDelta(1).change_class(),
            ChangeClass::Positional
        );
        assert_eq!(
            ChangeEvent::ListLengthDelta(-1).change_class(),
            ChangeClass::Positional
        );
        assert_eq!(
            ChangeEvent::SemanticRename {
                name: SemanticName::BlockClass,
                to: "x".into()
            }
            .change_class(),
            ChangeClass::AttributeRename
        );
        assert_eq!(ChangeEvent::Redesign.change_class(), ChangeClass::Redesign);
        assert_eq!(
            ChangeEvent::RemoveBlock(BlockKind::Sidebar).change_class(),
            ChangeClass::TargetRemoved
        );
    }

    #[test]
    fn dominant_change_prefers_structural_over_positional() {
        let p = EvolutionProfile {
            semantic_rename_prob: 1.0,
            ..Default::default()
        };
        let t = Timeline::generate(2, &p);
        let rename_day = t
            .events
            .iter()
            .find_map(|(d, e)| matches!(e, ChangeEvent::SemanticRename { .. }).then_some(*d))
            .expect("a rename is scheduled");
        let class = t.dominant_change_between(Day(rename_day.offset() - 1), rename_day, None);
        assert!(
            class == ChangeClass::AttributeRename
                || class == ChangeClass::Redesign
                || class == ChangeClass::BrokenSnapshot,
            "got {class:?}"
        );
        // An event-free window is content-only (pick a day far before the
        // first event).
        let quiet = t.dominant_change_between(Day(-4000), Day(-3999), None);
        assert!(
            quiet == ChangeClass::ContentOnly || quiet == ChangeClass::BrokenSnapshot,
            "got {quiet:?}"
        );
    }

    #[test]
    fn dominant_change_scopes_removals_to_the_role_block() {
        let p = EvolutionProfile {
            block_removal_prob: 1.0,
            semantic_rename_prob: 0.0,
            redesign_prob: 0.0,
            ..Default::default()
        };
        let t = Timeline::generate(11, &p);
        let day = t.block_removed_at(BlockKind::Sidebar).unwrap();
        if !t.snapshot_broken(day) {
            // For a wrapper living in the sidebar the removal is a
            // diminishing target …
            assert_eq!(
                t.dominant_change_between(Day(day.offset() - 1), day, Some(BlockKind::Sidebar)),
                ChangeClass::TargetRemoved
            );
            // … for any other wrapper it is just positional churn.
            assert_eq!(
                t.dominant_change_between(Day(day.offset() - 1), day, Some(BlockKind::SearchForm)),
                ChangeClass::Positional
            );
        }
    }

    #[test]
    fn broken_snapshots_are_rare_and_deterministic() {
        let t = Timeline::generate(12, &EvolutionProfile::default());
        let days: Vec<Day> = (0..110).map(|i| Day(i * 20)).collect();
        let broken: Vec<bool> = days.iter().map(|&d| t.snapshot_broken(d)).collect();
        let broken_again: Vec<bool> = days.iter().map(|&d| t.snapshot_broken(d)).collect();
        assert_eq!(broken, broken_again);
        let count = broken.iter().filter(|&&b| b).count();
        assert!(count <= 8, "too many broken snapshots: {count}");
    }

    #[test]
    fn some_sites_stay_stable() {
        // With the default profile a decent fraction of sites must have no
        // semantic rename, no redesign and keep their primary blocks — these
        // are the paper's group (a) full-period survivors.
        let p = EvolutionProfile::default();
        let stable = (0..40)
            .filter(|&seed| {
                let t = Timeline::generate(seed, &p);
                let final_epoch = t.epoch_at(Day(2200));
                final_epoch.redesign_level == 0
                    && final_epoch.renames.is_empty()
                    && final_epoch.has_block(BlockKind::PrimaryField)
            })
            .count();
        assert!(stable >= 3, "only {stable}/40 sites stayed stable");
    }
}
