//! The concrete datasets behind every experiment in the paper's evaluation.
//!
//! | paper dataset | constructor |
//! |---|---|
//! | 50+ single-node wrapper tasks over >50 sites, >20 verticals | [`single_node_tasks`] |
//! | 50 multi-node wrapper tasks (3–59 targets) | [`multi_node_tasks`] |
//! | 15 bi-monthly IMDB director snapshots (comparison with Dalvi et al.) | [`imdb_director_task`] |
//! | 5 × 10 same-template hotel pages from 2012 (comparison with WEIR) | [`hotel_corpus`] |
//! | 100 multi-node samples for negative noise | [`negative_noise_samples`] |
//! | 50 multi-node samples for positive noise | [`positive_noise_samples`] |
//! | 10 product-listing pages for the real-life NER experiment | [`ner_pages`] |

use crate::epoch::EvolutionProfile;
use crate::site::{PageKind, Site};
use crate::style::Vertical;
use crate::tasks::{TargetRole, WrapperTask};

/// Default master seed used by the experiment harness.
pub const DEFAULT_SEED: u64 = 20160626; // SIGMOD'16 conference date

/// The single-node wrapper tasks (paper Section 6.2, Figure 3): one target
/// node per task, spread over all verticals and the single-node roles the
/// paper mentions (form elements, menu entries, next links, data attributes).
pub fn single_node_tasks(count: usize) -> Vec<WrapperTask> {
    let mut tasks = Vec::new();
    let mut site_index = 0u64;
    while tasks.len() < count {
        let vertical = Vertical::ALL[(site_index as usize) % Vertical::ALL.len()];
        let site = Site::new(vertical, site_index);
        let role = TargetRole::SINGLE[(site_index as usize) % TargetRole::SINGLE.len()];
        let role = if role == TargetRole::SearchInput && !site.style.has_search {
            TargetRole::MainHeadline
        } else {
            role
        };
        tasks.push(WrapperTask::new(site, 0, PageKind::Detail, role));
        site_index += 1;
    }
    tasks
}

/// The multi-node wrapper tasks (paper Section 6.2, Figure 4): between 3 and
/// ~60 target nodes per task.
pub fn multi_node_tasks(count: usize) -> Vec<WrapperTask> {
    let mut tasks = Vec::new();
    let mut site_index = 100u64;
    while tasks.len() < count {
        let vertical = Vertical::ALL[(site_index as usize) % Vertical::ALL.len()];
        let site = Site::new(vertical, site_index);
        let role = TargetRole::MULTI[(site_index as usize) % TargetRole::MULTI.len()];
        tasks.push(WrapperTask::new(site, 0, PageKind::Detail, role));
        site_index += 1;
    }
    tasks
}

/// The IMDB-style movie site used to replicate the experiment of Dalvi et
/// al. [6]: director names on movie detail pages, tracked over bi-monthly
/// snapshots between 2004 and 2008.
pub fn imdb_director_task() -> WrapperTask {
    // A movie site with Microdata markup, like the real IMDB of that era's
    // later snapshots; the seed is chosen deterministically by scanning for
    // a movie site whose style uses Microdata and a heading label style.
    let site = (0..50)
        .map(|i| Site::new(Vertical::Movies, 1000 + i))
        .find(|s| s.style.uses_microdata && s.style.has_search)
        .expect("a microdata movie site exists in the first 50 candidates");
    WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue)
}

/// The hotel corpus for the WEIR comparison: `sets` groups of `pages_per_set`
/// detail pages that follow the same template (same site), as they looked in
/// 2012, with the site evolving until 2016.
pub fn hotel_corpus(sets: usize, pages_per_set: usize) -> Vec<Vec<WrapperTask>> {
    let profile = EvolutionProfile {
        // The WEIR comparison runs 2012–2016, so the timeline must keep
        // generating events beyond the default observation window.
        window: (-1500, 3100),
        ..Default::default()
    };
    // Only sites whose primary field is still present in 2012 qualify (the
    // wrappers are induced on 2012 pages).
    let induction_day = crate::date::Day::from_ymd(2012, 1, 1);
    (2000u64..)
        .map(|i| Site::with_profile(Vertical::Travel, i, &profile))
        .filter(|site| {
            site.timeline
                .epoch_at(induction_day)
                .has_block(crate::epoch::BlockKind::PrimaryField)
        })
        .take(sets)
        .map(|site| {
            (0..pages_per_set)
                .map(|page| {
                    WrapperTask::new(
                        site.clone(),
                        page as u64,
                        PageKind::Detail,
                        TargetRole::PrimaryValue,
                    )
                })
                .collect()
        })
        .collect()
}

/// Samples for the negative-noise experiments (N1/N2): multi-node tasks whose
/// target lists are dropped from.  The paper uses 100 samples matching 3–59
/// nodes (median 6).
pub fn negative_noise_samples(count: usize) -> Vec<WrapperTask> {
    let mut tasks = Vec::new();
    let mut site_index = 300u64;
    let roles = [
        TargetRole::ListTitles,
        TargetRole::ListRows,
        TargetRole::ListPersons,
        TargetRole::SecondaryPeople,
        TargetRole::RelatedLinks,
    ];
    while tasks.len() < count {
        let vertical = Vertical::ALL[(site_index as usize) % Vertical::ALL.len()];
        let site = Site::new(vertical, site_index);
        let role = roles[(site_index as usize) % roles.len()];
        tasks.push(WrapperTask::new(site, 0, PageKind::Detail, role));
        site_index += 1;
    }
    tasks
}

/// Samples for the positive-noise experiments (N3/N4).  The paper uses 50
/// samples matching 2–100 nodes (median 20); our synthetic lists are shorter
/// (4–12 items), which EXPERIMENTS.md records as a deviation.
pub fn positive_noise_samples(count: usize) -> Vec<WrapperTask> {
    let mut tasks = Vec::new();
    let mut site_index = 500u64;
    let roles = [
        TargetRole::ListTitles,
        TargetRole::ListRows,
        TargetRole::ListPrices,
        TargetRole::NavEntries,
    ];
    while tasks.len() < count {
        let vertical = Vertical::ALL[(site_index as usize) % Vertical::ALL.len()];
        let site = Site::new(vertical, site_index);
        let role = roles[(site_index as usize) % roles.len()];
        tasks.push(WrapperTask::new(site, 0, PageKind::Listing, role));
        site_index += 1;
    }
    tasks
}

/// The product-listing pages used for the real-life NER noise experiment
/// (Section 6.4): shopping listing pages whose item lists carry persons,
/// prices and dates, with a person-faceted sidebar.
pub fn ner_pages(count: usize) -> Vec<Site> {
    (0..count as u64)
        .map(|i| Site::new(Vertical::Shopping, 700 + i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Day;

    #[test]
    fn single_node_tasks_cover_verticals_and_have_one_target() {
        let tasks = single_node_tasks(53);
        assert_eq!(tasks.len(), 53);
        let verticals: std::collections::HashSet<_> =
            tasks.iter().map(|t| t.site.vertical).collect();
        assert!(verticals.len() >= 10, "only {} verticals", verticals.len());
        let sites: std::collections::HashSet<_> = tasks.iter().map(|t| t.site.id.clone()).collect();
        assert!(sites.len() >= 50);
        for task in tasks.iter().take(12) {
            let (_, targets) = task.page_with_targets(Day(0));
            assert_eq!(
                targets.len(),
                1,
                "task {} has {} targets",
                task.id(),
                targets.len()
            );
        }
    }

    #[test]
    fn multi_node_tasks_have_multiple_targets() {
        let tasks = multi_node_tasks(50);
        assert_eq!(tasks.len(), 50);
        for task in tasks.iter().take(12) {
            let (_, targets) = task.page_with_targets(Day(0));
            assert!(
                targets.len() >= 3,
                "task {} has only {} targets",
                task.id(),
                targets.len()
            );
        }
    }

    #[test]
    fn imdb_task_is_a_director_task_with_microdata() {
        let task = imdb_director_task();
        assert_eq!(task.role, TargetRole::PrimaryValue);
        assert!(task.site.style.uses_microdata);
        let (doc, targets) = task.page_with_targets(Day::from_ymd(2004, 1, 1));
        assert_eq!(targets.len(), 1);
        assert_eq!(doc.tag_name(targets[0]), Some("span"));
    }

    #[test]
    fn hotel_corpus_shape() {
        let corpus = hotel_corpus(5, 10);
        assert_eq!(corpus.len(), 5);
        for set in &corpus {
            assert_eq!(set.len(), 10);
            // All pages of a set share the template (same site id).
            let ids: std::collections::HashSet<_> = set.iter().map(|t| t.site.id.clone()).collect();
            assert_eq!(ids.len(), 1);
            // …but show different entities.
            let (_, t0) = set[0].page_with_targets(Day::from_ymd(2012, 1, 1));
            let (_, t1) = set[1].page_with_targets(Day::from_ymd(2012, 1, 1));
            assert_eq!(t0.len(), 1);
            assert_eq!(t1.len(), 1);
        }
    }

    #[test]
    fn noise_sample_sizes() {
        let neg = negative_noise_samples(20);
        assert_eq!(neg.len(), 20);
        let sizes: Vec<usize> = neg
            .iter()
            .take(10)
            .map(|t| t.page_with_targets(Day(0)).1.len())
            .collect();
        assert!(sizes.iter().all(|&s| s >= 2), "sizes {sizes:?}");
        let pos = positive_noise_samples(10);
        assert_eq!(pos.len(), 10);
    }

    #[test]
    fn ner_pages_are_shopping_sites() {
        let pages = ner_pages(10);
        assert_eq!(pages.len(), 10);
        assert!(pages.iter().all(|s| s.vertical == Vertical::Shopping));
    }
}
