//! The Internet-Archive simulator.
//!
//! The paper evaluates robustness by replaying snapshots of each page taken
//! from the Internet Archive at 20-day intervals between 2008-01-01 and
//! 2013-12-31, falling back to the closest available snapshot when one is
//! missing, and occasionally hitting snapshots that are "either empty or
//! structurally broken".  [`ArchiveSimulator`] reproduces those access
//! patterns over synthetic [`Site`]s.

use crate::date::{snapshot_days, Day, SNAPSHOT_INTERVAL_DAYS};
use crate::site::{PageKind, Site};
use wi_dom::{el, Document};

/// One archived page version.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The day the snapshot was taken.
    pub day: Day,
    /// The archived document.
    pub doc: Document,
    /// Whether the archive served a broken (empty or truncated) capture.
    pub broken: bool,
}

/// Serves snapshots of a site's pages the way the Internet Archive would.
#[derive(Debug, Clone)]
pub struct ArchiveSimulator {
    site: Site,
    page_index: u64,
    kind: PageKind,
}

impl ArchiveSimulator {
    /// Creates an archive view of one page of a site.
    pub fn new(site: Site, page_index: u64, kind: PageKind) -> Self {
        ArchiveSimulator {
            site,
            page_index,
            kind,
        }
    }

    /// The underlying site.
    pub fn site(&self) -> &Site {
        &self.site
    }

    /// The page index served by this archive view.
    pub fn page_index(&self) -> u64 {
        self.page_index
    }

    /// The page kind served by this archive view.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Returns the snapshot taken at `day` (or the closest available one:
    /// when the requested capture is missing the archive returns the
    /// neighbouring capture, which here amounts to the same rendered state).
    pub fn snapshot(&self, day: Day) -> Snapshot {
        if self.site.timeline.snapshot_broken(day) {
            return Snapshot {
                day,
                doc: broken_page(),
                broken: true,
            };
        }
        Snapshot {
            day,
            doc: self.site.render(self.page_index, day, self.kind),
            broken: false,
        }
    }

    /// All snapshots between two dates at the standard 20-day interval.
    pub fn snapshots(&self, start: Day, end: Day) -> Vec<Snapshot> {
        snapshot_days(start, end)
            .into_iter()
            .map(|d| self.snapshot(d))
            .collect()
    }

    /// Snapshots at a custom interval (used by the Dalvi-style comparison,
    /// which samples every two months).
    pub fn snapshots_every(&self, start: Day, end: Day, interval_days: i64) -> Vec<Snapshot> {
        let mut out = Vec::new();
        let mut d = start;
        while d <= end {
            let mut snap = self.snapshot(d);
            if snap.broken {
                // Emulate "if the Internet Archive does not contain a
                // required snapshot, we search for the closest existing
                // snapshot as replacement" for coarse sampling intervals.
                let retry = d.plus(SNAPSHOT_INTERVAL_DAYS);
                let retried = self.snapshot(retry);
                if !retried.broken {
                    snap = Snapshot {
                        day: d,
                        doc: retried.doc,
                        broken: false,
                    };
                }
            }
            out.push(snap);
            d = d.plus(interval_days);
        }
        out
    }
}

/// The document served for a broken capture: an almost empty page.
fn broken_page() -> Document {
    el("html")
        .child(el("body").child(el("p").text_child("Page cannot be crawled or displayed")))
        .into_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::{OBSERVATION_END, OBSERVATION_START};
    use crate::style::Vertical;

    #[test]
    fn snapshot_sequence_covers_window() {
        let site = Site::new(Vertical::Movies, 1);
        let archive = ArchiveSimulator::new(site, 0, PageKind::Detail);
        let snaps = archive.snapshots(OBSERVATION_START, OBSERVATION_END);
        // 2192 days / 20 ≈ 110 snapshots.
        assert!(snaps.len() >= 108 && snaps.len() <= 112, "{}", snaps.len());
        assert_eq!(snaps[0].day, OBSERVATION_START);
        for pair in snaps.windows(2) {
            assert_eq!(pair[0].day.days_until(pair[1].day), 20);
        }
    }

    #[test]
    fn broken_snapshots_are_flagged_and_small() {
        let site = Site::new(Vertical::News, 2);
        let archive = ArchiveSimulator::new(site, 0, PageKind::Detail);
        let snaps = archive.snapshots(OBSERVATION_START, OBSERVATION_END);
        let broken: Vec<&Snapshot> = snaps.iter().filter(|s| s.broken).collect();
        for s in &broken {
            assert!(s.doc.element_count() < 10);
        }
        let healthy = snaps.iter().filter(|s| !s.broken).count();
        assert!(healthy > snaps.len() * 8 / 10);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = ArchiveSimulator::new(Site::new(Vertical::Travel, 3), 0, PageKind::Detail);
        let b = ArchiveSimulator::new(Site::new(Vertical::Travel, 3), 0, PageKind::Detail);
        let sa = a.snapshot(Day(400));
        let sb = b.snapshot(Day(400));
        assert_eq!(sa.broken, sb.broken);
        assert_eq!(wi_dom::to_html(&sa.doc), wi_dom::to_html(&sb.doc));
    }

    #[test]
    fn custom_interval_snapshots() {
        let site = Site::new(Vertical::Movies, 4);
        let archive = ArchiveSimulator::new(site, 0, PageKind::Detail);
        let snaps =
            archive.snapshots_every(Day::from_ymd(2004, 1, 1), Day::from_ymd(2006, 6, 1), 60);
        assert!(snaps.len() >= 14);
        assert_eq!(snaps[1].day.offset() - snaps[0].day.offset(), 60);
    }
}
