//! # wi-webgen — synthetic web substrate
//!
//! The paper evaluates wrapper induction on real web pages tracked over six
//! years in the Internet Archive.  Neither the pages nor the archive are
//! available to this reproduction, so this crate builds the closest synthetic
//! equivalent (see DESIGN.md, "Substitutions"):
//!
//! * **Sites and templates** ([`site`], [`style`], [`render`], [`data`]) —
//!   deterministic, seeded generators for template-driven pages across the
//!   verticals the paper samples from (movies, news, travel, shopping,
//!   sports, finance, …), with the markup idioms real wrappers rely on:
//!   semantic `id`/`class`/`itemprop` attributes, template labels such as
//!   `Director:`, item lists with header elements and surrounding adverts,
//!   search forms, next links.
//! * **Page evolution** ([`epoch`]) — every site carries a seeded event
//!   timeline (content drift, positional changes, class renames, redesigns,
//!   target removal, broken snapshots) that reproduces the break-reason
//!   classes the paper reports (groups (a)–(f) in Section 6.2).
//! * **An Internet-Archive simulator** ([`archive`]) serving snapshots at
//!   20-day intervals between 2008-01-01 and 2013-12-31.
//! * **Evaluation datasets** ([`tasks`], [`datasets`]) — the single-node and
//!   multi-node wrapper tasks (with hand-written "human" wrappers), the
//!   IMDB-style pages for the comparison with Dalvi et al. [6], the
//!   same-template hotel pages for the comparison with WEIR [2], and the
//!   product-listing pages used in the NER noise experiment.
//! * **Annotation noise** ([`ner`], [`noise`]) — a simulated entity
//!   recogniser with calibrated error rates and the four synthetic noise
//!   models N1–N4 of Section 6.4.
//!
//! Everything is deterministic given a seed, so every experiment in
//! `wi-eval` is exactly reproducible.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod archive;
pub mod data;
pub mod datasets;
pub mod date;
pub mod epoch;
pub mod ner;
pub mod noise;
pub mod render;
pub mod site;
pub mod style;
pub mod tasks;
pub mod vocab;

pub use archive::{ArchiveSimulator, Snapshot};
pub use date::Day;
pub use epoch::{ChangeClass, ChangeEvent, Epoch};
pub use site::{PageKind, Site};
pub use style::{SiteStyle, Vertical};
pub use tasks::{TargetRole, WrapperTask};
