//! The [`Site`] type: a synthetic web site with a style, a data universe and
//! a change timeline, able to render any of its pages at any date.

use crate::data::PageData;
use crate::date::Day;
use crate::epoch::{BlockKind, Epoch, EvolutionProfile, Timeline};
pub use crate::render::PageKind;
use crate::render::{render_page, RenderInput};
use crate::style::{SiteStyle, Vertical};
use crate::vocab::mix_seed;
use wi_dom::Document;

/// A synthetic site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Human-readable identifier, e.g. `movies-03`.
    pub id: String,
    /// The site's vertical.
    pub vertical: Vertical,
    /// Seed all of the site's deterministic draws derive from.
    pub seed: u64,
    /// Structural style (class naming, list markup, microdata…).
    pub style: SiteStyle,
    /// The site's change timeline.
    pub timeline: Timeline,
}

/// The resolved view of one page of a site at one date: the epoch, the data
/// and the number of list items actually shown.  Both the renderer and the
/// ground-truth oracle work from this view so they can never disagree.
#[derive(Debug, Clone)]
pub struct PageView {
    /// The evolution state at the requested day.
    pub epoch: Epoch,
    /// The page's data at the requested day.
    pub data: PageData,
    /// Number of list items visible on the page.
    pub shown_items: usize,
    /// The page kind.
    pub kind: PageKind,
}

impl Site {
    /// Creates a site with the default evolution profile.
    pub fn new(vertical: Vertical, index: u64) -> Site {
        Site::with_profile(vertical, index, &EvolutionProfile::default())
    }

    /// Creates a site with an explicit evolution profile (used to build
    /// stable same-template corpora, e.g. the hotel pages for the WEIR
    /// comparison).
    pub fn with_profile(vertical: Vertical, index: u64, profile: &EvolutionProfile) -> Site {
        let seed = mix_seed(&[vertical as u64 + 1, index, 0x517e]);
        Site {
            id: format!("{}-{:02}", vertical.slug(), index),
            vertical,
            seed,
            style: SiteStyle::from_seed(seed),
            timeline: Timeline::generate(seed, profile),
        }
    }

    /// Resolves the view of page `page_index` at `day`.
    pub fn page_view(&self, page_index: u64, day: Day, kind: PageKind) -> PageView {
        let epoch = self.timeline.epoch_at(day);
        let data = PageData::generate(self.vertical, self.seed, page_index, epoch.content_epoch);
        let base_len = data.list_items.len() as i32;
        // The main list never shrinks below 3 visible items: the multi-node
        // datasets guarantee at least 3 annotatable targets per task, and a
        // real site's "main content" list keeps several entries no matter how
        // much churn the timeline accumulates.
        let shown_items =
            (base_len + epoch.list_len_delta).clamp(3.min(base_len), base_len) as usize;
        PageView {
            epoch,
            data,
            shown_items,
            kind,
        }
    }

    /// Renders page `page_index` of the site as it looked at `day`.
    pub fn render(&self, page_index: u64, day: Day, kind: PageKind) -> Document {
        let view = self.page_view(page_index, day, kind);
        render_page(&RenderInput {
            style: &self.style,
            vertical: self.vertical,
            epoch: &view.epoch,
            data: &view.data,
            kind,
            shown_items: view.shown_items,
        })
    }

    /// Renders a page from an already-resolved view (avoids recomputing the
    /// epoch and data when both the document and the view are needed).
    pub fn render_view(&self, view: &PageView) -> Document {
        render_page(&RenderInput {
            style: &self.style,
            vertical: self.vertical,
            epoch: &view.epoch,
            data: &view.data,
            kind: view.kind,
            shown_items: view.shown_items,
        })
    }

    /// Returns `true` if the given template block still exists at `day`.
    pub fn block_present(&self, block: BlockKind, day: Day) -> bool {
        self.timeline.epoch_at(day).has_block(block)
    }

    /// The template labels of this site (for template-only text policies).
    pub fn template_labels(&self, page_index: u64, day: Day) -> Vec<String> {
        self.page_view(page_index, day, PageKind::Detail)
            .data
            .template_labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::OBSERVATION_START;

    #[test]
    fn sites_are_deterministic() {
        let a = Site::new(Vertical::Movies, 3);
        let b = Site::new(Vertical::Movies, 3);
        assert_eq!(a.id, b.id);
        assert_eq!(a.style, b.style);
        let da = a.render(0, OBSERVATION_START, PageKind::Detail);
        let db = b.render(0, OBSERVATION_START, PageKind::Detail);
        assert_eq!(wi_dom::to_html(&da), wi_dom::to_html(&db));
    }

    #[test]
    fn different_sites_differ() {
        let a = Site::new(Vertical::Movies, 1);
        let b = Site::new(Vertical::Movies, 2);
        assert_ne!(a.seed, b.seed);
        let da = a.render(0, OBSERVATION_START, PageKind::Detail);
        let db = b.render(0, OBSERVATION_START, PageKind::Detail);
        assert_ne!(wi_dom::to_html(&da), wi_dom::to_html(&db));
    }

    #[test]
    fn pages_change_over_time_but_template_persists() {
        let site = Site::new(Vertical::News, 5);
        let d0 = site.render(0, Day(0), PageKind::Detail);
        let d1 = site.render(0, Day(600), PageKind::Detail);
        assert_ne!(wi_dom::to_html(&d0), wi_dom::to_html(&d1));
        // The header/footer chrome persists.
        assert!(d1.element_by_id("footer").is_some());
    }

    #[test]
    fn page_view_shown_items_consistent_with_render() {
        let site = Site::new(Vertical::Shopping, 7);
        for day in [Day(0), Day(400), Day(1200)] {
            let view = site.page_view(0, day, PageKind::Listing);
            let doc = site.render_view(&view);
            let visible = view
                .data
                .list_items
                .iter()
                .take(view.shown_items)
                .filter(|it| {
                    doc.descendants(doc.root())
                        .any(|n| doc.is_text(n) && doc.text_content(n) == Some(it.title.as_str()))
                })
                .count();
            assert_eq!(visible, view.shown_items);
        }
    }

    #[test]
    fn block_present_tracks_timeline() {
        let profile = EvolutionProfile {
            block_removal_prob: 1.0,
            ..Default::default()
        };
        let site = Site::with_profile(Vertical::Travel, 1, &profile);
        let removal = site
            .timeline
            .block_removed_at(BlockKind::PrimaryField)
            .unwrap();
        assert!(site.block_present(BlockKind::PrimaryField, Day(removal.offset() - 1)));
        assert!(!site.block_present(BlockKind::PrimaryField, removal));
    }
}
