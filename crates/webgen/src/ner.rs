//! A simulated named-entity recogniser (the paper uses the Stanford NER).
//!
//! Section 6.4 of the paper annotates product-listing pages with a real NER
//! and uses the (noisy) annotations as induction input: on average the
//! annotations carry 32 % negative and 28 % positive noise, with structural
//! positive noise (e.g. an author list in a sidebar facet) being the
//! dangerous kind.  This module reproduces that setting: it "recognises"
//! entity mentions on a rendered listing page, missing some true mentions
//! and hallucinating others — with the same structural bias.

use crate::noise::noise_stats;
use crate::site::{PageKind, PageView, Site};
use crate::tasks::TargetRole;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wi_dom::{Document, NodeId};

/// The entity types the simulated recogniser supports (the paper uses date,
/// person, location, organisation and money).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// Person names.
    Person,
    /// Monetary amounts.
    Money,
    /// Dates.
    Date,
    /// Locations.
    Location,
    /// Organisations.
    Organisation,
}

impl EntityKind {
    /// All supported entity kinds.
    pub const ALL: &'static [EntityKind] = &[
        EntityKind::Person,
        EntityKind::Money,
        EntityKind::Date,
        EntityKind::Location,
        EntityKind::Organisation,
    ];

    /// The list-column role whose nodes carry this entity on a listing page.
    pub fn list_role(self) -> TargetRole {
        match self {
            EntityKind::Person => TargetRole::ListPersons,
            EntityKind::Money => TargetRole::ListPrices,
            // Dates, locations and organisations are carried by the same
            // item rows; we use the date column as their anchor nodes.
            EntityKind::Date | EntityKind::Location | EntityKind::Organisation => {
                TargetRole::ListPersons
            }
        }
    }
}

/// Error behaviour of the simulated recogniser.
#[derive(Debug, Clone)]
pub struct NerConfig {
    /// Mean probability of missing a true entity mention (negative noise).
    pub miss_rate: f64,
    /// Mean number of spurious annotations, as a fraction of the true count.
    pub spurious_rate: f64,
    /// Fraction of the spurious annotations that are *structural* (taken
    /// from a sidebar facet or another coherent list) rather than random.
    pub structural_share: f64,
}

impl Default for NerConfig {
    fn default() -> Self {
        // Calibrated so the dataset-level averages land near the paper's
        // observed 32 % negative / 28 % positive noise.
        NerConfig {
            miss_rate: 0.32,
            spurious_rate: 0.28,
            structural_share: 0.6,
        }
    }
}

/// The result of running the simulated NER over one page.
#[derive(Debug, Clone)]
pub struct NerAnnotation {
    /// The entity kind that was recognised.
    pub kind: EntityKind,
    /// The annotated DOM nodes (the induction input).
    pub annotated: Vec<NodeId>,
    /// The true entity nodes (the evaluation reference).
    pub truth: Vec<NodeId>,
    /// Negative noise of `annotated` w.r.t. `truth`.
    pub negative_noise: f64,
    /// Positive noise of `annotated` w.r.t. `truth`.
    pub positive_noise: f64,
}

/// Runs the simulated recogniser for one entity kind over a rendered listing
/// page.
pub fn run_ner(
    doc: &Document,
    view: &PageView,
    kind: EntityKind,
    config: &NerConfig,
    seed: u64,
) -> NerAnnotation {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = true_entity_nodes(doc, view, kind);

    // Per-page rates vary widely around the configured means (the paper
    // reports 0–67 % negative and 0–145 % positive noise).
    let miss_rate = (config.miss_rate * rng.random_range(0.3..2.0)).clamp(0.0, 0.9);
    let spurious_rate = (config.spurious_rate * rng.random_range(0.2..2.5)).clamp(0.0, 1.6);

    let mut annotated: Vec<NodeId> = truth
        .iter()
        .copied()
        .filter(|_| !rng.random_bool(miss_rate))
        .collect();
    if annotated.is_empty() && !truth.is_empty() {
        annotated.push(truth[0]);
    }

    let spurious_count = ((truth.len() as f64) * spurious_rate).round() as usize;
    let structural_count = ((spurious_count as f64) * config.structural_share).round() as usize;
    let random_count = spurious_count.saturating_sub(structural_count);

    let mut structural_pool = structural_noise_pool(doc, view, kind);
    structural_pool.retain(|n| !truth.contains(n));
    structural_pool.shuffle(&mut rng);
    annotated.extend(structural_pool.into_iter().take(structural_count));

    let mut random_pool: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| doc.element_children(n).next().is_none())
        .filter(|&n| !truth.contains(&n))
        .filter(|&n| !doc.normalized_text(n).is_empty())
        .collect();
    random_pool.shuffle(&mut rng);
    annotated.extend(random_pool.into_iter().take(random_count));

    let mut annotated_sorted = annotated;
    doc.sort_document_order(&mut annotated_sorted);
    let stats = noise_stats(&truth, &annotated_sorted);
    NerAnnotation {
        kind,
        annotated: annotated_sorted,
        truth,
        negative_noise: stats.negative,
        positive_noise: stats.positive,
    }
}

/// The nodes that truly carry mentions of the entity kind on a listing page.
pub fn true_entity_nodes(doc: &Document, view: &PageView, kind: EntityKind) -> Vec<NodeId> {
    let values: Vec<String> = view
        .data
        .list_items
        .iter()
        .take(view.shown_items)
        .map(|item| match kind {
            EntityKind::Person => item.person.clone(),
            EntityKind::Money => item.price.clone(),
            EntityKind::Date => item.date.clone(),
            EntityKind::Location => item.title.clone(),
            EntityKind::Organisation => item.title.clone(),
        })
        .collect();
    innermost(doc, &values)
}

/// Where structural false positives come from: the sidebar facet for person
/// entities (the paper's waterstones.com failure case), price-like template
/// nodes for money, date fields for dates.
fn structural_noise_pool(doc: &Document, view: &PageView, kind: EntityKind) -> Vec<NodeId> {
    match kind {
        EntityKind::Person => {
            // Sidebar refinement list entries.
            innermost(doc, &view.data.secondary_people)
        }
        EntityKind::Money => innermost(doc, std::slice::from_ref(&view.data.price)),
        EntityKind::Date => innermost(doc, std::slice::from_ref(&view.data.date)),
        EntityKind::Location | EntityKind::Organisation => innermost(doc, &view.data.related),
    }
}

fn innermost(doc: &Document, values: &[impl AsRef<str>]) -> Vec<NodeId> {
    let set: std::collections::HashSet<&str> = values.iter().map(|v| v.as_ref()).collect();
    let matches: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| set.contains(doc.normalized_text(n).as_str()))
        .collect();
    let match_set: std::collections::HashSet<NodeId> = matches.iter().copied().collect();
    matches
        .into_iter()
        .filter(|&n| !doc.descendants(n).any(|d| match_set.contains(&d)))
        .collect()
}

/// Convenience: renders a shopping listing page and runs the NER on it.
pub fn annotate_listing_page(
    site: &Site,
    page_index: u64,
    kind: EntityKind,
    config: &NerConfig,
    seed: u64,
) -> (Document, NerAnnotation) {
    let view = site.page_view(page_index, crate::date::Day(0), PageKind::Listing);
    let doc = site.render_view(&view);
    let annotation = run_ner(&doc, &view, kind, config, seed);
    (doc, annotation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::Vertical;

    #[test]
    fn truth_nodes_exist_for_each_kind() {
        let site = Site::new(Vertical::Shopping, 0);
        let view = site.page_view(0, crate::date::Day(0), PageKind::Listing);
        let doc = site.render_view(&view);
        for &kind in EntityKind::ALL {
            let truth = true_entity_nodes(&doc, &view, kind);
            assert!(!truth.is_empty(), "no truth nodes for {kind:?}");
        }
    }

    #[test]
    fn ner_produces_noise_in_expected_ranges() {
        let config = NerConfig::default();
        let mut neg_sum = 0.0;
        let mut pos_sum = 0.0;
        let mut count = 0;
        for page in 0..10 {
            let site = Site::new(Vertical::Shopping, page);
            let (_, ann) = annotate_listing_page(&site, page, EntityKind::Person, &config, page);
            assert!(!ann.annotated.is_empty());
            assert!(ann.negative_noise >= 0.0 && ann.negative_noise <= 0.95);
            assert!(ann.positive_noise >= 0.0 && ann.positive_noise <= 1.6);
            neg_sum += ann.negative_noise;
            pos_sum += ann.positive_noise;
            count += 1;
        }
        let neg_avg = neg_sum / f64::from(count);
        let pos_avg = pos_sum / f64::from(count);
        // Averages should land in the vicinity of the paper's 32 % / 28 %.
        assert!((0.05..=0.6).contains(&neg_avg), "neg avg {neg_avg}");
        assert!((0.05..=0.7).contains(&pos_avg), "pos avg {pos_avg}");
    }

    #[test]
    fn ner_is_deterministic() {
        let site = Site::new(Vertical::Shopping, 3);
        let config = NerConfig::default();
        let (_, a) = annotate_listing_page(&site, 0, EntityKind::Money, &config, 42);
        let (_, b) = annotate_listing_page(&site, 0, EntityKind::Money, &config, 42);
        assert_eq!(a.annotated, b.annotated);
        let (_, c) = annotate_listing_page(&site, 0, EntityKind::Money, &config, 43);
        // Different seeds give (almost always) different annotations.
        assert!(a.annotated != c.annotated || a.truth == c.truth);
    }

    #[test]
    fn structural_noise_prefers_sidebar_for_persons() {
        let site = Site::new(Vertical::Shopping, 1);
        let view = site.page_view(0, crate::date::Day(0), PageKind::Listing);
        let doc = site.render_view(&view);
        let pool = structural_noise_pool(&doc, &view, EntityKind::Person);
        assert!(!pool.is_empty());
        // All pool nodes carry sidebar person names.
        for n in pool {
            let text = doc.normalized_text(n);
            assert!(view.data.secondary_people.contains(&text));
        }
    }

    #[test]
    fn annotation_never_empty_when_truth_exists() {
        let config = NerConfig {
            miss_rate: 0.9,
            spurious_rate: 0.0,
            structural_share: 0.0,
        };
        let site = Site::new(Vertical::Shopping, 5);
        let (_, ann) = annotate_listing_page(&site, 0, EntityKind::Person, &config, 7);
        assert!(!ann.annotated.is_empty());
    }
}
