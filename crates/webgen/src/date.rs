//! A minimal date type for the archive simulation.
//!
//! The evaluation only needs day arithmetic ("snapshots at 20-day
//! intervals", "valid for 817 days") and human-readable rendering, so dates
//! are represented as a day offset from the start of the paper's observation
//! window, 2008-01-01.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A day, counted from 2008-01-01 (day 0).  Negative offsets address days
/// before the observation window (used by the Dalvi-comparison experiment,
/// which replays 2004–2008 snapshots).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Day(pub i64);

/// First day of the paper's observation window (2008-01-01).
pub const OBSERVATION_START: Day = Day(0);
/// Last day of the paper's observation window (2013-12-31).
pub const OBSERVATION_END: Day = Day(2191);
/// The snapshot interval used throughout the evaluation (20 days).
pub const SNAPSHOT_INTERVAL_DAYS: i64 = 20;

impl Day {
    /// Creates a day from a year/month/day triple (proleptic Gregorian).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Day {
        Day(days_from_civil(year, month, day) - days_from_civil(2008, 1, 1))
    }

    /// Offset in days from 2008-01-01.
    pub fn offset(self) -> i64 {
        self.0
    }

    /// Adds a number of days.
    pub fn plus(self, days: i64) -> Day {
        Day(self.0 + days)
    }

    /// Number of days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: Day) -> i64 {
        other.0 - self.0
    }

    /// The civil (year, month, day) triple of this day.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0 + days_from_civil(2008, 1, 1))
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// The sequence of snapshot days between two dates (inclusive start), spaced
/// by [`SNAPSHOT_INTERVAL_DAYS`].
pub fn snapshot_days(start: Day, end: Day) -> Vec<Day> {
    let mut out = Vec::new();
    let mut d = start;
    while d <= end {
        out.push(d);
        d = d.plus(SNAPSHOT_INTERVAL_DAYS);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2008_01_01() {
        assert_eq!(Day(0).to_ymd(), (2008, 1, 1));
        assert_eq!(Day(0).to_string(), "2008-01-01");
        assert_eq!(Day::from_ymd(2008, 1, 1), Day(0));
    }

    #[test]
    fn observation_window_matches_paper() {
        assert_eq!(OBSERVATION_END.to_ymd(), (2013, 12, 31));
        assert_eq!(Day::from_ymd(2013, 12, 31), OBSERVATION_END);
    }

    #[test]
    fn roundtrip_and_arithmetic() {
        for &(y, m, d) in &[(2004, 2, 29), (2010, 12, 31), (2016, 6, 26), (1999, 1, 1)] {
            let day = Day::from_ymd(y, m, d);
            assert_eq!(day.to_ymd(), (y, m, d));
        }
        let a = Day::from_ymd(2008, 1, 1);
        let b = Day::from_ymd(2008, 1, 21);
        assert_eq!(a.days_until(b), 20);
        assert_eq!(a.plus(20), b);
        assert!(Day::from_ymd(2004, 1, 1) < a);
    }

    #[test]
    fn snapshot_days_are_20_apart() {
        let days = snapshot_days(OBSERVATION_START, Day(100));
        assert_eq!(days.len(), 6);
        assert_eq!(days[1].offset() - days[0].offset(), 20);
        assert_eq!(days.last().unwrap().offset(), 100);
    }

    #[test]
    fn leap_years_handled() {
        let d = Day::from_ymd(2008, 2, 28);
        assert_eq!(d.plus(1).to_ymd(), (2008, 2, 29));
        assert_eq!(d.plus(2).to_ymd(), (2008, 3, 1));
    }
}
