//! Wrapper tasks: what to extract from which site, with a ground-truth
//! oracle and a hand-written ("human") reference wrapper.
//!
//! A [`WrapperTask`] corresponds to one row of the paper's test datasets: a
//! URL (here: a site + page), the set of nodes a wrapper should select
//! (single node or a list), a human-crafted XPath expression written against
//! the first snapshot, and the machinery to re-identify the intended nodes on
//! later snapshots so robustness can be judged.
//!
//! The ground truth is value-based: because all page data is a deterministic
//! function of (site, page, date), the oracle recomputes the expected values
//! and finds the innermost elements carrying them — mirroring how the paper
//! checks "a pre-specified predicate on the nodes matched" and how automated
//! annotators locate known instances on a page.

use crate::date::Day;
use crate::epoch::BlockKind;
use crate::site::{PageKind, PageView, Site};
use crate::style::{LabelStyle, ListKind, Vertical};
use serde::{Deserialize, Serialize};
use wi_dom::{Document, NodeId};

/// What a task extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetRole {
    /// The header search input (single node).
    SearchInput,
    /// The main `<h1>` headline (single node).
    MainHeadline,
    /// The value of the primary label–value field, e.g. the director name
    /// (single node).
    PrimaryValue,
    /// The entity price in the meta row (single node).
    PriceValue,
    /// The rating in the meta row (single node).
    RatingValue,
    /// The pagination "Next" link (single node).
    NextLink,
    /// The site logo image (single node).
    LogoImage,
    /// The secondary people ("Stars:") value nodes (multiple nodes).
    SecondaryPeople,
    /// The title elements of the main item list (multiple nodes).
    ListTitles,
    /// The person elements of the main item list (multiple nodes).
    ListPersons,
    /// The price elements of the main item list (multiple nodes).
    ListPrices,
    /// The row container elements of the main item list (multiple nodes).
    ListRows,
    /// The sidebar related links (multiple nodes).
    RelatedLinks,
    /// The navigation menu links (multiple nodes).
    NavEntries,
}

impl TargetRole {
    /// Roles that select a single node.
    pub const SINGLE: &'static [TargetRole] = &[
        TargetRole::SearchInput,
        TargetRole::MainHeadline,
        TargetRole::PrimaryValue,
        TargetRole::PriceValue,
        TargetRole::RatingValue,
        TargetRole::NextLink,
        TargetRole::LogoImage,
    ];

    /// Roles that select multiple nodes.
    pub const MULTI: &'static [TargetRole] = &[
        TargetRole::SecondaryPeople,
        TargetRole::ListTitles,
        TargetRole::ListPersons,
        TargetRole::ListPrices,
        TargetRole::ListRows,
        TargetRole::RelatedLinks,
        TargetRole::NavEntries,
    ];

    /// Returns `true` for multi-node roles.
    pub fn is_multi(self) -> bool {
        TargetRole::MULTI.contains(&self)
    }

    /// The template block this role lives in (used to decide whether the
    /// target has been removed from the page).
    pub fn block(self) -> BlockKind {
        match self {
            TargetRole::SearchInput => BlockKind::SearchForm,
            TargetRole::PrimaryValue => BlockKind::PrimaryField,
            TargetRole::NextLink => BlockKind::NextLink,
            TargetRole::SecondaryPeople => BlockKind::PeopleRow,
            TargetRole::ListTitles
            | TargetRole::ListPersons
            | TargetRole::ListPrices
            | TargetRole::ListRows => BlockKind::MainList,
            TargetRole::RelatedLinks => BlockKind::Sidebar,
            // Headline, price, rating, logo and navigation never disappear.
            TargetRole::MainHeadline
            | TargetRole::PriceValue
            | TargetRole::RatingValue
            | TargetRole::LogoImage
            | TargetRole::NavEntries => BlockKind::MainList, // placeholder, see `can_disappear`
        }
    }

    /// Whether this role's targets can be removed by the evolution model.
    pub fn can_disappear(self) -> bool {
        !matches!(
            self,
            TargetRole::MainHeadline
                | TargetRole::PriceValue
                | TargetRole::RatingValue
                | TargetRole::LogoImage
                | TargetRole::NavEntries
        )
    }
}

/// One evaluation task.
#[derive(Debug, Clone)]
pub struct WrapperTask {
    /// The site the task runs against.
    pub site: Site,
    /// The page of the site.
    pub page_index: u64,
    /// Detail or listing page.
    pub kind: PageKind,
    /// What to extract.
    pub role: TargetRole,
    /// The hand-written reference wrapper (textual XPath).
    pub human_wrapper: String,
}

impl WrapperTask {
    /// Creates a task, deriving the human wrapper from the site's style.
    pub fn new(site: Site, page_index: u64, kind: PageKind, role: TargetRole) -> WrapperTask {
        let human_wrapper = human_wrapper(&site, role);
        WrapperTask {
            site,
            page_index,
            kind,
            role,
            human_wrapper,
        }
    }

    /// A short identifier for reports.
    pub fn id(&self) -> String {
        format!("{}/{:?}", self.site.id, self.role)
    }

    /// Renders the task's page at `day` and returns it with the ground-truth
    /// target nodes.
    pub fn page_with_targets(&self, day: Day) -> (Document, Vec<NodeId>) {
        let view = self.site.page_view(self.page_index, day, self.kind);
        let doc = self.site.render_view(&view);
        let targets = find_targets(&doc, &view, self.role);
        (doc, targets)
    }

    /// Ground-truth target nodes in an already rendered document.
    pub fn targets_in(&self, doc: &Document, day: Day) -> Vec<NodeId> {
        let view = self.site.page_view(self.page_index, day, self.kind);
        find_targets(doc, &view, self.role)
    }

    /// Whether the intended targets still exist on the page at `day`.
    pub fn targets_present(&self, day: Day) -> bool {
        if self.role.can_disappear() {
            self.site
                .timeline
                .epoch_at(day)
                .has_block(self.role.block())
        } else {
            true
        }
    }

    /// The template labels of the task's page (for template-only induction).
    pub fn template_labels(&self, day: Day) -> Vec<String> {
        self.site.template_labels(self.page_index, day)
    }
}

/// Finds the ground-truth nodes for a role in a rendered page.
pub fn find_targets(doc: &Document, view: &PageView, role: TargetRole) -> Vec<NodeId> {
    let data = &view.data;
    match role {
        TargetRole::SearchInput => doc
            .elements_by_tag("input")
            .into_iter()
            .filter(|&n| doc.attribute(n, "name") == Some("q"))
            .collect(),
        TargetRole::LogoImage => doc
            .elements_by_tag("img")
            .into_iter()
            .filter(|&n| doc.attribute(n, "id") == Some("logo"))
            .collect(),
        TargetRole::NextLink => innermost_with_texts(doc, &["Next".to_string()], Some("a")),
        TargetRole::MainHeadline => {
            innermost_with_texts(doc, std::slice::from_ref(&data.entity_title), Some("h1"))
        }
        TargetRole::PrimaryValue => innermost_with_texts(doc, &[data.fields[0].1.clone()], None),
        TargetRole::PriceValue => {
            innermost_with_texts(doc, std::slice::from_ref(&data.price), None)
        }
        TargetRole::RatingValue => {
            innermost_with_texts(doc, std::slice::from_ref(&data.rating), None)
        }
        TargetRole::SecondaryPeople => {
            // The same names may appear elsewhere (e.g. a sidebar facet on
            // shopping sites); the intended targets are the ones inside the
            // "Stars:" row.
            innermost_with_texts(doc, &data.secondary_people, None)
                .into_iter()
                .filter(|&n| {
                    doc.ancestors(n)
                        .any(|a| doc.normalized_text(a).starts_with("Stars:"))
                })
                .collect()
        }
        TargetRole::ListTitles => {
            let titles: Vec<String> = shown_items(view).map(|i| i.title.clone()).collect();
            innermost_with_texts(doc, &titles, None)
        }
        TargetRole::ListPersons => {
            let persons: Vec<String> = shown_items(view).map(|i| i.person.clone()).collect();
            innermost_with_texts(doc, &persons, None)
        }
        TargetRole::ListPrices => {
            let prices: Vec<String> = shown_items(view).map(|i| i.price.clone()).collect();
            innermost_with_texts(doc, &prices, None)
        }
        TargetRole::ListRows => {
            let titles: Vec<String> = shown_items(view).map(|i| i.title.clone()).collect();
            let title_nodes = innermost_with_texts(doc, &titles, None);
            let mut rows: Vec<NodeId> = title_nodes
                .into_iter()
                .filter_map(|n| enclosing_row(doc, n))
                .collect();
            doc.sort_document_order(&mut rows);
            rows
        }
        TargetRole::RelatedLinks => {
            // Sidebar entries: related titles, or people for shopping sites.
            let entries: Vec<String> = if matches!(view_vertical(view), Some(Vertical::Shopping)) {
                data.secondary_people.clone()
            } else {
                data.related.clone()
            };
            // Restrict to links living under the box headed by the template
            // label "Related" so value collisions elsewhere on the page
            // (e.g. the Stars row on shopping sites) cannot leak in.
            innermost_with_texts(doc, &entries, Some("a"))
                .into_iter()
                .filter(|&link| {
                    doc.ancestors(link).any(|anc| {
                        doc.element_children(anc).any(|c| {
                            doc.tag_name(c) == Some("h3") && doc.normalized_text(c) == "Related"
                        })
                    })
                })
                .collect()
        }
        TargetRole::NavEntries => {
            let sections = [
                "Home",
                "World",
                "Business",
                "Technology",
                "Science",
                "Health",
                "Sports",
                "Arts",
                "Style",
                "Travel",
                "Video",
                "Archive",
            ];
            let labels: Vec<String> = sections.iter().map(|s| s.to_string()).collect();
            innermost_with_texts(doc, &labels, Some("a"))
        }
    }
}

fn view_vertical(view: &PageView) -> Option<Vertical> {
    // The vertical is not stored on the view; infer it from the primary
    // label, which is vertical-specific.
    match view.data.fields.first().map(|(l, _)| l.as_str()) {
        Some("Brand:") => Some(Vertical::Shopping),
        _ => None,
    }
}

fn shown_items(view: &PageView) -> impl Iterator<Item = &crate::data::ListItem> {
    view.data.list_items.iter().take(view.shown_items)
}

/// The innermost elements whose normalized text equals one of `values`
/// (optionally restricted to a tag), in document order.
fn innermost_with_texts(doc: &Document, values: &[String], tag: Option<&str>) -> Vec<NodeId> {
    if values.is_empty() {
        return Vec::new();
    }
    let value_set: std::collections::HashSet<&str> = values.iter().map(|s| s.as_str()).collect();
    let mut matches: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| tag.is_none_or(|t| doc.tag_name(n) == Some(t)))
        .filter(|&n| value_set.contains(doc.normalized_text(n).as_str()))
        .collect();
    // Keep only innermost matches (drop any match that has another match as
    // a descendant).
    let match_set: std::collections::HashSet<NodeId> = matches.iter().copied().collect();
    matches.retain(|&n| !doc.descendants(n).any(|d| d != n && match_set.contains(&d)));
    matches
}

/// Walks up from a node to the enclosing list row (`li`, `tr`, or grid cell).
fn enclosing_row(doc: &Document, node: NodeId) -> Option<NodeId> {
    doc.ancestors_or_self(node).find(|&a| {
        matches!(doc.tag_name(a), Some("li") | Some("tr"))
            || doc
                .attribute(a, "class")
                .map(|c| c.contains("-cell"))
                .unwrap_or(false)
    })
}

/// The hand-written reference wrapper for a role on a site, authored the way
/// an expert would against the first snapshot of the page.
pub fn human_wrapper(site: &Site, role: TargetRole) -> String {
    let style = &site.style;
    let container = &style.container_id;
    match role {
        TargetRole::SearchInput => r#"descendant::input[@name="q"]"#.to_string(),
        TargetRole::LogoImage => r#"descendant::img[@id="logo"]"#.to_string(),
        TargetRole::NextLink => r#"descendant::a[@rel="next"]"#.to_string(),
        TargetRole::MainHeadline => {
            format!(r#"descendant::div[@id="{container}"]/descendant::h1"#)
        }
        TargetRole::PrimaryValue => {
            let label = primary_label_for(site.vertical);
            match style.label_style {
                LabelStyle::TitleAttribute => format!(
                    r#"descendant::div[@title="{}"]/descendant::span[@class="itemprop"]"#,
                    label.trim_end_matches(':')
                ),
                _ => {
                    if style.uses_microdata {
                        format!(
                            r#"descendant::div[starts-with(.,"{label}")]/descendant::span[@itemprop="name"]"#
                        )
                    } else {
                        format!(
                            r#"descendant::div[starts-with(.,"{label}")]/descendant::span[@class="itemprop"]"#
                        )
                    }
                }
            }
        }
        TargetRole::PriceValue => format!(
            r#"descendant::div[@id="{container}"]/descendant::span[@class="{}"]"#,
            style.cls("price")
        ),
        TargetRole::RatingValue => format!(
            r#"descendant::div[@id="{container}"]/descendant::span[@class="{}"]"#,
            style.cls("rating")
        ),
        TargetRole::SecondaryPeople => {
            r#"descendant::div[starts-with(.,"Stars:")]/descendant::span"#.to_string()
        }
        TargetRole::ListTitles => format!(
            r#"descendant::div[@class="{}"]/descendant::a[@class="{}"]"#,
            style.cls("list-box"),
            style.cls("item-title")
        ),
        TargetRole::ListPersons => {
            let tag = match style.list_kind {
                ListKind::Table => "td",
                _ => "span",
            };
            format!(
                r#"descendant::{tag}[@class="{}"]"#,
                style.cls("item-person")
            )
        }
        TargetRole::ListPrices => {
            let tag = match style.list_kind {
                ListKind::Table => "td",
                _ => "span",
            };
            format!(r#"descendant::{tag}[@class="{}"]"#, style.cls("item-price"))
        }
        TargetRole::ListRows => match style.list_kind {
            ListKind::UnorderedList => format!(
                r#"descendant::ul[@class="{}"]/child::li"#,
                style.cls("items")
            ),
            ListKind::Table => format!(r#"descendant::tr[@class="{}"]"#, style.cls("item")),
            ListKind::DivGrid => format!(r#"descendant::div[@class="{}"]"#, style.cls("cell")),
        },
        TargetRole::RelatedLinks => format!(
            r#"descendant::ul[@class="{}"]/descendant::a"#,
            style.cls("related")
        ),
        TargetRole::NavEntries => format!(
            r#"descendant::ul[@class="{}"]/descendant::a"#,
            style.cls("nav")
        ),
    }
}

fn primary_label_for(vertical: Vertical) -> &'static str {
    match vertical {
        Vertical::Movies | Vertical::Video => "Director:",
        Vertical::Travel | Vertical::Events | Vertical::RealEstate => "Location:",
        Vertical::Shopping | Vertical::Recipes => "Brand:",
        Vertical::News | Vertical::Reference => "Author:",
        Vertical::Sports | Vertical::Finance | Vertical::Jobs => "Organisation:",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Day;
    use wi_xpath::{evaluate, parse_query};

    fn check_human_matches_ground_truth(vertical: Vertical, index: u64, role: TargetRole) {
        let site = Site::new(vertical, index);
        if role == TargetRole::SearchInput && !site.style.has_search {
            return;
        }
        let kind = PageKind::Detail;
        let task = WrapperTask::new(site, 0, kind, role);
        let (doc, targets) = task.page_with_targets(Day(0));
        assert!(
            !targets.is_empty(),
            "no ground-truth targets for {:?} on {}",
            role,
            task.site.id
        );
        let human = parse_query(&task.human_wrapper)
            .unwrap_or_else(|e| panic!("bad human wrapper {}: {e}", task.human_wrapper));
        let mut selected = evaluate(&human, &doc, doc.root());
        selected.sort_unstable();
        let mut expected = targets.clone();
        expected.sort_unstable();
        assert_eq!(
            selected, expected,
            "human wrapper {} does not match ground truth for {:?} on {}",
            task.human_wrapper, role, task.site.id
        );
    }

    #[test]
    fn human_wrappers_match_ground_truth_on_first_snapshot() {
        for (i, &vertical) in Vertical::ALL.iter().enumerate() {
            for &role in TargetRole::SINGLE {
                check_human_matches_ground_truth(vertical, i as u64, role);
            }
        }
    }

    #[test]
    fn human_multi_wrappers_match_ground_truth() {
        for (i, &vertical) in Vertical::ALL.iter().enumerate() {
            for &role in &[
                TargetRole::SecondaryPeople,
                TargetRole::ListTitles,
                TargetRole::ListRows,
                TargetRole::NavEntries,
            ] {
                check_human_matches_ground_truth(vertical, i as u64 + 20, role);
            }
        }
    }

    #[test]
    fn multi_targets_have_multiple_nodes() {
        let site = Site::new(Vertical::News, 2);
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::ListTitles);
        let (_, targets) = task.page_with_targets(Day(0));
        assert!(targets.len() >= 3, "got {} targets", targets.len());
    }

    #[test]
    fn ground_truth_tracks_content_drift() {
        let site = Site::new(Vertical::Movies, 4);
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::ListTitles);
        let (_, t0) = task.page_with_targets(Day(0));
        let (_, t1) = task.page_with_targets(Day(600));
        assert!(!t0.is_empty() && !t1.is_empty());
        // Node identities will differ (different documents); both snapshots
        // must still be locatable.
    }

    #[test]
    fn targets_disappear_with_their_block() {
        use crate::epoch::EvolutionProfile;
        let profile = EvolutionProfile {
            block_removal_prob: 1.0,
            ..Default::default()
        };
        let site = Site::with_profile(Vertical::Travel, 9, &profile);
        let removal = site
            .timeline
            .block_removed_at(BlockKind::PrimaryField)
            .unwrap();
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
        assert!(task.targets_present(Day(removal.offset() - 1)));
        assert!(!task.targets_present(removal));
        let (_, targets) = task.page_with_targets(removal);
        assert!(targets.is_empty());
    }

    #[test]
    fn innermost_filter_returns_leaf_elements() {
        let site = Site::new(Vertical::Movies, 11);
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
        let (doc, targets) = task.page_with_targets(Day(0));
        assert_eq!(targets.len(), 1);
        // The innermost element is the value span, not the enclosing link or
        // block div.
        assert_eq!(doc.tag_name(targets[0]), Some("span"));
    }

    #[test]
    fn list_rows_are_row_elements() {
        for index in 0..6 {
            let site = Site::new(Vertical::Sports, index);
            let list_kind = site.style.list_kind;
            let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::ListRows);
            let (doc, targets) = task.page_with_targets(Day(0));
            assert!(!targets.is_empty());
            for &t in &targets {
                match list_kind {
                    ListKind::UnorderedList => assert_eq!(doc.tag_name(t), Some("li")),
                    ListKind::Table => assert_eq!(doc.tag_name(t), Some("tr")),
                    ListKind::DivGrid => {
                        assert!(doc.attribute(t, "class").unwrap().contains("-cell"))
                    }
                }
            }
        }
    }

    #[test]
    fn task_ids_are_unique_per_role_and_site() {
        let a = WrapperTask::new(
            Site::new(Vertical::News, 1),
            0,
            PageKind::Detail,
            TargetRole::MainHeadline,
        );
        let b = WrapperTask::new(
            Site::new(Vertical::News, 1),
            0,
            PageKind::Detail,
            TargetRole::NextLink,
        );
        assert_ne!(a.id(), b.id());
    }
}
