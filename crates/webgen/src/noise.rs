//! Synthetic annotation noise (Section 6.4 of the paper).
//!
//! Four noise models are applied to a sample's target set:
//!
//! * **N1 — negative random**: a fraction of the targets is dropped.
//! * **N2 — negative mid-random**: as N1, but the first and last target (in
//!   document order) are never dropped.
//! * **N3 — positive structured**: nodes that are structurally related to
//!   the targets (same tag elsewhere on the page) are added.
//! * **N4 — positive random**: random leaf elements from anywhere on the
//!   page are added.
//!
//! All draws are deterministic given the provided RNG.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wi_dom::{Document, NodeId};

/// The four noise models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// N1 — negative random noise.
    NegativeRandom,
    /// N2 — negative mid-random noise (first and last targets kept).
    NegativeMidRandom,
    /// N3 — positive structured noise.
    PositiveStructured,
    /// N4 — positive random noise.
    PositiveRandom,
}

impl NoiseKind {
    /// All noise kinds, in the paper's order.
    pub const ALL: &'static [NoiseKind] = &[
        NoiseKind::NegativeRandom,
        NoiseKind::NegativeMidRandom,
        NoiseKind::PositiveStructured,
        NoiseKind::PositiveRandom,
    ];

    /// A short label used in reports ("N1" … "N4").
    pub fn label(self) -> &'static str {
        match self {
            NoiseKind::NegativeRandom => "N1 negative random",
            NoiseKind::NegativeMidRandom => "N2 negative mid-random",
            NoiseKind::PositiveStructured => "N3 positive structured",
            NoiseKind::PositiveRandom => "N4 positive random",
        }
    }

    /// Whether the noise removes targets (negative) or adds spurious ones.
    pub fn is_negative(self) -> bool {
        matches!(
            self,
            NoiseKind::NegativeRandom | NoiseKind::NegativeMidRandom
        )
    }
}

/// Applies a noise model to a target set at the given intensity (fraction of
/// the target-set size) and returns the noisy target set, in document order.
pub fn apply_noise(
    doc: &Document,
    targets: &[NodeId],
    kind: NoiseKind,
    intensity: f64,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sorted: Vec<NodeId> = targets.to_vec();
    let mut sorted_clone = sorted.clone();
    doc.sort_document_order(&mut sorted_clone);
    sorted = sorted_clone;
    let count = ((targets.len() as f64) * intensity).round() as usize;
    let mut noisy = match kind {
        NoiseKind::NegativeRandom => negative_random(&sorted, count, &mut rng, false),
        NoiseKind::NegativeMidRandom => negative_random(&sorted, count, &mut rng, true),
        NoiseKind::PositiveStructured => {
            let mut v = sorted.clone();
            v.extend(positive_structured(doc, &sorted, count, &mut rng));
            v
        }
        NoiseKind::PositiveRandom => {
            let mut v = sorted.clone();
            v.extend(positive_random(doc, &sorted, count, &mut rng));
            v
        }
    };
    doc.sort_document_order(&mut noisy);
    noisy
}

fn negative_random(
    targets: &[NodeId],
    count: usize,
    rng: &mut StdRng,
    keep_ends: bool,
) -> Vec<NodeId> {
    if targets.len() <= 1 {
        return targets.to_vec();
    }
    let removable: Vec<usize> = if keep_ends {
        (1..targets.len() - 1).collect()
    } else {
        (0..targets.len()).collect()
    };
    let max_removable = if keep_ends {
        removable.len()
    } else {
        // Never remove every annotation: an empty sample is not a sample.
        targets.len() - 1
    };
    let count = count.min(max_removable);
    let mut indices = removable;
    indices.shuffle(rng);
    let drop: std::collections::HashSet<usize> = indices.into_iter().take(count).collect();
    targets
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop.contains(i))
        .map(|(_, &n)| n)
        .collect()
}

/// Nodes that are structurally related to the targets: same tag name,
/// element nodes, not already targets.  This mirrors the paper's "random
/// nodes chosen from a node set which is structurally related (via an XPath
/// expression) to the target nodes".
pub fn structurally_related(doc: &Document, targets: &[NodeId]) -> Vec<NodeId> {
    let target_set: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let tags: std::collections::HashSet<&str> =
        targets.iter().filter_map(|&t| doc.tag_name(t)).collect();
    doc.descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| !target_set.contains(&n))
        .filter(|&n| doc.tag_name(n).is_some_and(|t| tags.contains(t)))
        .collect()
}

fn positive_structured(
    doc: &Document,
    targets: &[NodeId],
    count: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let mut pool = structurally_related(doc, targets);
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

fn positive_random(
    doc: &Document,
    targets: &[NodeId],
    count: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let target_set: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let mut pool: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| doc.element_children(n).next().is_none())
        .filter(|&n| !target_set.contains(&n))
        .collect();
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

/// Measured noise levels of a noisy annotation set relative to the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseStats {
    /// Fraction of true targets missing from the annotation.
    pub negative: f64,
    /// Spurious annotations as a fraction of the true target count.
    pub positive: f64,
}

/// Computes the noise statistics of an annotation set against the truth.
pub fn noise_stats(truth: &[NodeId], annotated: &[NodeId]) -> NoiseStats {
    let truth_set: std::collections::HashSet<NodeId> = truth.iter().copied().collect();
    let annotated_set: std::collections::HashSet<NodeId> = annotated.iter().copied().collect();
    let missing = truth_set.difference(&annotated_set).count();
    let spurious = annotated_set.difference(&truth_set).count();
    let denom = truth.len().max(1) as f64;
    NoiseStats {
        negative: missing as f64 / denom,
        positive: spurious as f64 / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    fn list_doc() -> (Document, Vec<NodeId>) {
        let doc = parse_html(
            r#"<body><div id="other"><span>x</span><span>y</span></div>
               <ul id="l">
                 <li>a</li><li>b</li><li>c</li><li>d</li><li>e</li><li>f</li>
                 <li>g</li><li>h</li><li>i</li><li>j</li>
               </ul></body>"#,
        )
        .unwrap();
        let targets = doc.elements_by_tag("li");
        (doc, targets)
    }

    #[test]
    fn negative_random_removes_requested_fraction() {
        let (doc, targets) = list_doc();
        let noisy = apply_noise(&doc, &targets, NoiseKind::NegativeRandom, 0.3, 1);
        assert_eq!(noisy.len(), 7);
        assert!(noisy.iter().all(|n| targets.contains(n)));
    }

    #[test]
    fn negative_never_empties_the_sample() {
        let (doc, targets) = list_doc();
        let noisy = apply_noise(&doc, &targets, NoiseKind::NegativeRandom, 1.0, 2);
        assert!(!noisy.is_empty());
        let single = vec![targets[0]];
        let noisy = apply_noise(&doc, &single, NoiseKind::NegativeRandom, 0.9, 3);
        assert_eq!(noisy, single);
    }

    #[test]
    fn mid_random_keeps_first_and_last() {
        let (doc, targets) = list_doc();
        for seed in 0..10 {
            let noisy = apply_noise(&doc, &targets, NoiseKind::NegativeMidRandom, 0.5, seed);
            assert!(noisy.contains(&targets[0]));
            assert!(noisy.contains(targets.last().unwrap()));
            assert_eq!(noisy.len(), 5);
        }
    }

    #[test]
    fn positive_structured_adds_same_tag_nodes() {
        let doc = parse_html(
            r#"<body><ul><li class="t">a</li><li class="t">b</li></ul>
               <ol><li>x</li><li>y</li><li>z</li></ol>
               <div><span>not related</span></div></body>"#,
        )
        .unwrap();
        let targets = doc.elements_by_class("t");
        let noisy = apply_noise(&doc, &targets, NoiseKind::PositiveStructured, 1.0, 5);
        assert_eq!(noisy.len(), 4);
        let added: Vec<NodeId> = noisy
            .iter()
            .copied()
            .filter(|n| !targets.contains(n))
            .collect();
        assert!(added.iter().all(|&n| doc.tag_name(n) == Some("li")));
    }

    #[test]
    fn positive_random_adds_leaf_elements() {
        let (doc, targets) = list_doc();
        let noisy = apply_noise(&doc, &targets, NoiseKind::PositiveRandom, 0.2, 7);
        assert_eq!(noisy.len(), 12);
        for n in &noisy {
            if !targets.contains(n) {
                assert!(doc.element_children(*n).next().is_none());
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (doc, targets) = list_doc();
        let a = apply_noise(&doc, &targets, NoiseKind::NegativeRandom, 0.5, 11);
        let b = apply_noise(&doc, &targets, NoiseKind::NegativeRandom, 0.5, 11);
        assert_eq!(a, b);
        let c = apply_noise(&doc, &targets, NoiseKind::NegativeRandom, 0.5, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_intensity_is_identity() {
        let (doc, targets) = list_doc();
        for &kind in NoiseKind::ALL {
            let noisy = apply_noise(&doc, &targets, kind, 0.0, 1);
            assert_eq!(noisy, targets, "{}", kind.label());
        }
    }

    #[test]
    fn stats_computation() {
        let (_, targets) = list_doc();
        let annotated: Vec<NodeId> = targets[..5].to_vec();
        let stats = noise_stats(&targets, &annotated);
        assert!((stats.negative - 0.5).abs() < 1e-9);
        assert_eq!(stats.positive, 0.0);
        let stats = noise_stats(&targets[..5], &targets);
        assert_eq!(stats.negative, 0.0);
        assert!((stats.positive - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labels_and_flags() {
        assert!(NoiseKind::NegativeRandom.is_negative());
        assert!(!NoiseKind::PositiveRandom.is_negative());
        assert_eq!(NoiseKind::ALL.len(), 4);
        assert!(NoiseKind::PositiveStructured.label().contains("N3"));
    }
}
