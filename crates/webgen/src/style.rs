//! Site styles: the per-site structural and naming choices that make two
//! sites of the same vertical look different.
//!
//! A [`SiteStyle`] is drawn deterministically from the site's seed and fixes
//! the things the induced wrappers will latch onto: container ids, class
//! naming scheme, whether Microdata (`itemprop`) is emitted, how item lists
//! are marked up, and how many navigation/advert slots the chrome carries.

use crate::vocab::mix_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The application domain ("vertical") of a site.  The paper's datasets span
/// "over 20 different verticals, such as Movies, News, and Travel".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vertical {
    /// Movie database pages (IMDB-like detail pages).
    Movies,
    /// News front/article pages.
    News,
    /// Hotel / travel detail pages (Tripadvisor-like).
    Travel,
    /// Product listing / e-commerce pages.
    Shopping,
    /// Sports scores and team pages.
    Sports,
    /// Banking / finance product pages.
    Finance,
    /// Reference / encyclopedia articles.
    Reference,
    /// Video portal pages.
    Video,
    /// Job listing pages.
    Jobs,
    /// Event / ticketing pages.
    Events,
    /// Recipe pages.
    Recipes,
    /// Real-estate listing pages.
    RealEstate,
}

impl Vertical {
    /// All verticals, in a fixed order.
    pub const ALL: &'static [Vertical] = &[
        Vertical::Movies,
        Vertical::News,
        Vertical::Travel,
        Vertical::Shopping,
        Vertical::Sports,
        Vertical::Finance,
        Vertical::Reference,
        Vertical::Video,
        Vertical::Jobs,
        Vertical::Events,
        Vertical::Recipes,
        Vertical::RealEstate,
    ];

    /// A short lowercase name used in site ids.
    pub fn slug(self) -> &'static str {
        match self {
            Vertical::Movies => "movies",
            Vertical::News => "news",
            Vertical::Travel => "travel",
            Vertical::Shopping => "shopping",
            Vertical::Sports => "sports",
            Vertical::Finance => "finance",
            Vertical::Reference => "reference",
            Vertical::Video => "video",
            Vertical::Jobs => "jobs",
            Vertical::Events => "events",
            Vertical::Recipes => "recipes",
            Vertical::RealEstate => "realestate",
        }
    }
}

/// How the main item list of a page is marked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ListKind {
    /// `<ul class="…"><li>…</li></ul>`
    UnorderedList,
    /// `<table><tr><td>…</td></tr></table>`
    Table,
    /// `<div class="grid"><div class="cell">…</div></div>`
    DivGrid,
}

/// How label–value template rows ("Director: …") are marked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelStyle {
    /// `<h4 class="inline">Director:</h4> <span>…</span>`
    Heading,
    /// `<strong>Director:</strong> <span>…</span>`
    Strong,
    /// `<span class="label" title="Director">…</span>`
    TitleAttribute,
}

/// The per-site structural/naming profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteStyle {
    /// Whether `itemprop`/`itemtype` Microdata attributes are emitted.
    pub uses_microdata: bool,
    /// Markup of the main item list.
    pub list_kind: ListKind,
    /// Markup of label–value rows.
    pub label_style: LabelStyle,
    /// Prefix used when generating class names (`"hp"`, `"c"`, `"site"` …).
    pub class_prefix: String,
    /// The id of the main content container (`"content"`, `"main"` …).
    pub container_id: String,
    /// The id of the page header region.
    pub header_id: String,
    /// Number of navigation entries in the chrome.
    pub nav_items: usize,
    /// Number of advert slots in the sidebar.
    pub ad_slots: usize,
    /// Whether the search form appears in the header.
    pub has_search: bool,
    /// Number of decorative wrapper `div`s around the main content (depth
    /// padding; canonical paths are sensitive to it).
    pub wrapper_depth: usize,
    /// Class name used for class-drift experiments (it embeds a numeric
    /// suffix like `headline20` that redesigns bump to `headline16`).
    pub versioned_class: String,
}

impl SiteStyle {
    /// Draws a style deterministically from a site seed.
    pub fn from_seed(seed: u64) -> SiteStyle {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[seed, 0xc0ffee]));
        let prefixes = ["hp", "c", "site", "m", "page", "app"];
        let containers = ["content", "main", "page-body", "wrapper-main", "console"];
        let headers = ["header", "masthead", "top", "site-head"];
        let class_prefix = prefixes[rng.random_range(0..prefixes.len())].to_string();
        SiteStyle {
            uses_microdata: rng.random_bool(0.45),
            list_kind: match rng.random_range(0..3) {
                0 => ListKind::UnorderedList,
                1 => ListKind::Table,
                _ => ListKind::DivGrid,
            },
            label_style: match rng.random_range(0..3) {
                0 => LabelStyle::Heading,
                1 => LabelStyle::Strong,
                _ => LabelStyle::TitleAttribute,
            },
            class_prefix,
            container_id: containers[rng.random_range(0..containers.len())].to_string(),
            header_id: headers[rng.random_range(0..headers.len())].to_string(),
            nav_items: rng.random_range(4..9),
            ad_slots: rng.random_range(1..4),
            has_search: rng.random_bool(0.85),
            wrapper_depth: rng.random_range(1..4),
            versioned_class: format!("headline{}", rng.random_range(16..24)),
        }
    }

    /// A class name with the site's prefix (`cls("title")` → `"hp-title"`).
    pub fn cls(&self, suffix: &str) -> String {
        format!("{}-{}", self.class_prefix, suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_are_deterministic() {
        let a = SiteStyle::from_seed(17);
        let b = SiteStyle::from_seed(17);
        assert_eq!(a, b);
    }

    #[test]
    fn styles_vary_across_seeds() {
        let styles: Vec<SiteStyle> = (0..30).map(SiteStyle::from_seed).collect();
        let microdata = styles.iter().filter(|s| s.uses_microdata).count();
        assert!(
            microdata > 3 && microdata < 27,
            "microdata share {microdata}/30"
        );
        let list_kinds: std::collections::HashSet<_> = styles.iter().map(|s| s.list_kind).collect();
        assert!(list_kinds.len() >= 2);
        let prefixes: std::collections::HashSet<_> =
            styles.iter().map(|s| s.class_prefix.clone()).collect();
        assert!(prefixes.len() >= 3);
    }

    #[test]
    fn class_names_use_prefix() {
        let s = SiteStyle::from_seed(3);
        let c = s.cls("title");
        assert!(c.starts_with(&s.class_prefix));
        assert!(c.ends_with("-title"));
    }

    #[test]
    fn verticals_have_unique_slugs() {
        let slugs: std::collections::HashSet<_> = Vertical::ALL.iter().map(|v| v.slug()).collect();
        assert_eq!(slugs.len(), Vertical::ALL.len());
    }

    #[test]
    fn nav_and_ads_in_sane_ranges() {
        for seed in 0..20 {
            let s = SiteStyle::from_seed(seed);
            assert!((4..9).contains(&s.nav_items));
            assert!((1..4).contains(&s.ad_slots));
            assert!((1..4).contains(&s.wrapper_depth));
            assert!(s.versioned_class.starts_with("headline"));
        }
    }
}
