//! Property-based tests of the synthetic web substrate: deterministic
//! rendering, archive behaviour, ground-truth task oracles, and the noise
//! injectors of Section 6.4.

use proptest::prelude::*;
use wi_dom::{structural_hash, Document, NodeId};
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::noise::{apply_noise, NoiseKind};
use wi_webgen::{ArchiveSimulator, Day, PageKind, Site, TargetRole, Vertical, WrapperTask};
use wi_xpath::parse_query;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_vertical() -> impl Strategy<Value = Vertical> {
    prop::sample::select(Vertical::ALL.to_vec())
}

fn arb_day() -> impl Strategy<Value = Day> {
    // Days across the paper's observation window 2008-01-01 … 2013-12-31.
    (0i64..2191).prop_map(Day)
}

fn arb_kind() -> impl Strategy<Value = PageKind> {
    prop_oneof![Just(PageKind::Detail), Just(PageKind::Listing)]
}

fn arb_task() -> impl Strategy<Value = WrapperTask> {
    (0usize..40, any::<bool>()).prop_map(|(index, multi)| {
        if multi {
            multi_node_tasks(index + 1).pop().unwrap()
        } else {
            single_node_tasks(index + 1).pop().unwrap()
        }
    })
}

fn doc_order_ok(doc: &Document, nodes: &[NodeId]) -> bool {
    let mut sorted = nodes.to_vec();
    doc.sort_document_order(&mut sorted);
    sorted == nodes
}

// ---------------------------------------------------------------------------
// Rendering and archive
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rendering is a pure function of (site, page, day, kind): two renders
    /// of the same coordinates are structurally identical, and the page is a
    /// plausible HTML document.
    #[test]
    fn rendering_is_deterministic(
        vertical in arb_vertical(),
        site_index in 0u64..50,
        page in 0u64..5,
        day in arb_day(),
        kind in arb_kind(),
    ) {
        let site = Site::new(vertical, site_index);
        let a = site.render(page, day, kind);
        let b = site.render(page, day, kind);
        prop_assert_eq!(
            structural_hash(&a, a.root()),
            structural_hash(&b, b.root())
        );
        prop_assert!(!a.elements_by_tag("body").is_empty());
        prop_assert!(!a.elements_by_tag("html").is_empty());
        prop_assert!(a.len() > 10, "suspiciously small page ({} nodes)", a.len());
    }

    /// Different pages of the same site share the template but differ in
    /// data; the same page on consecutive days inside one epoch is stable.
    #[test]
    fn pages_of_a_site_share_the_template(
        vertical in arb_vertical(),
        site_index in 0u64..30,
        day in arb_day(),
    ) {
        let site = Site::new(vertical, site_index);
        let a = site.render(0, day, PageKind::Detail);
        let b = site.render(1, day, PageKind::Detail);
        // Same template: same tag multiset for the top two levels.
        let tags = |doc: &Document| -> Vec<String> {
            let body = doc.elements_by_tag("body")[0];
            doc.children(body)
                .filter_map(|n| doc.tag_name(n).map(String::from))
                .collect()
        };
        prop_assert_eq!(tags(&a), tags(&b));
    }

    /// The archive serves snapshots at the 20-day cadence, reports the day it
    /// was asked for, and broken captures are nearly empty pages.
    #[test]
    fn archive_snapshots_follow_the_request(
        vertical in arb_vertical(),
        site_index in 0u64..30,
        start in 0i64..500,
    ) {
        let site = Site::new(vertical, site_index);
        let archive = ArchiveSimulator::new(site, 0, PageKind::Detail);
        let start = Day(start);
        let end = start.plus(200);
        let snapshots = archive.snapshots(start, end);
        prop_assert_eq!(snapshots.len(), 11); // inclusive range at 20-day step
        for (i, snap) in snapshots.iter().enumerate() {
            prop_assert_eq!(snap.day, start.plus(20 * i as i64));
            if snap.broken {
                prop_assert!(snap.doc.len() < 10);
            } else {
                prop_assert!(snap.doc.len() > 10);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Task oracles
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated task has a parseable human wrapper and a non-empty,
    /// document-ordered ground-truth target set on the induction page; the
    /// human wrapper selects exactly those targets on that page.
    #[test]
    fn tasks_are_internally_consistent(task in arb_task(), day_offset in 0i64..1000) {
        let day = Day(day_offset);
        let human = parse_query(&task.human_wrapper)
            .unwrap_or_else(|e| panic!("human wrapper {:?} does not parse: {e}", task.human_wrapper));
        let (doc, targets) = task.page_with_targets(day);
        if targets.is_empty() {
            // The role may legitimately have been removed by the evolution
            // model at this date; nothing more to check.
            return Ok(());
        }
        prop_assert!(doc_order_ok(&doc, &targets));
        prop_assert!(targets.iter().all(|&t| doc.contains(t)));
        if task.role.is_multi() {
            prop_assert!(targets.len() >= 2, "multi-node task with {} targets", targets.len());
        } else {
            prop_assert_eq!(targets.len(), 1);
        }
        // On the very first snapshot the human wrapper is exact by
        // construction; later snapshots may have broken it.
        if day == Day(0) {
            let selected = wi_xpath::evaluate(&human, &doc, doc.root());
            prop_assert_eq!(selected, targets);
        }
    }

    /// The dataset constructors honour the requested size and produce the
    /// advertised single/multi split.
    #[test]
    fn dataset_sizes_are_honoured(n in 1usize..30) {
        let singles = single_node_tasks(n);
        let multis = multi_node_tasks(n);
        prop_assert_eq!(singles.len(), n);
        prop_assert_eq!(multis.len(), n);
        prop_assert!(singles.iter().all(|t| !t.role.is_multi()));
        prop_assert!(multis.iter().all(|t| t.role.is_multi()));
        // Task ids are unique within a dataset.
        let ids: std::collections::HashSet<String> = singles.iter().map(|t| t.id()).collect();
        prop_assert_eq!(ids.len(), n);
    }
}

// ---------------------------------------------------------------------------
// Noise injectors (Section 6.4)
// ---------------------------------------------------------------------------

/// A fixed multi-node page/target pair to exercise the noise models on.
fn noise_fixture() -> (Document, Vec<NodeId>) {
    let task = multi_node_tasks(8)
        .into_iter()
        .find(|t| {
            let (_, targets) = t.page_with_targets(Day(0));
            targets.len() >= 5
        })
        .expect("a task with at least 5 targets");
    task.page_with_targets(Day(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Negative noise only removes targets, never invents nodes, never
    /// removes everything, and N2 keeps the first and last target.
    #[test]
    fn negative_noise_shrinks_within_bounds(intensity in 0.0f64..0.9, seed in any::<u64>()) {
        let (doc, targets) = noise_fixture();
        for kind in [NoiseKind::NegativeRandom, NoiseKind::NegativeMidRandom] {
            let noisy = apply_noise(&doc, &targets, kind, intensity, seed);
            prop_assert!(!noisy.is_empty());
            prop_assert!(noisy.len() <= targets.len());
            prop_assert!(noisy.iter().all(|n| targets.contains(n)));
            prop_assert!(doc_order_ok(&doc, &noisy));
            let expected_removed = ((targets.len() as f64) * intensity).round() as usize;
            prop_assert!(targets.len() - noisy.len() <= expected_removed);
            if kind == NoiseKind::NegativeMidRandom {
                prop_assert_eq!(noisy.first(), targets.first());
                prop_assert_eq!(noisy.last(), targets.last());
            }
        }
    }

    /// Positive noise only adds nodes: the noisy set is a superset of the
    /// targets, the additions are live nodes outside the target set, and the
    /// requested intensity bounds the number of additions.
    #[test]
    fn positive_noise_grows_within_bounds(intensity in 0.0f64..1.5, seed in any::<u64>()) {
        let (doc, targets) = noise_fixture();
        for kind in [NoiseKind::PositiveStructured, NoiseKind::PositiveRandom] {
            let noisy = apply_noise(&doc, &targets, kind, intensity, seed);
            prop_assert!(noisy.len() >= targets.len());
            prop_assert!(targets.iter().all(|t| noisy.contains(t)));
            prop_assert!(doc_order_ok(&doc, &noisy));
            let added = noisy.len() - targets.len();
            let requested = ((targets.len() as f64) * intensity).round() as usize;
            prop_assert!(added <= requested);
            for node in noisy.iter().filter(|n| !targets.contains(n)) {
                prop_assert!(doc.contains(*node));
            }
        }
    }

    /// Noise draws are deterministic in the seed.
    #[test]
    fn noise_is_deterministic_per_seed(intensity in 0.0f64..1.0, seed in any::<u64>()) {
        let (doc, targets) = noise_fixture();
        for &kind in NoiseKind::ALL {
            let a = apply_noise(&doc, &targets, kind, intensity, seed);
            let b = apply_noise(&doc, &targets, kind, intensity, seed);
            prop_assert_eq!(a, b);
        }
    }

    /// Zero intensity is a no-op for every noise model.
    #[test]
    fn zero_intensity_noise_is_identity(seed in any::<u64>()) {
        let (doc, targets) = noise_fixture();
        let mut ordered = targets.clone();
        doc.sort_document_order(&mut ordered);
        for &kind in NoiseKind::ALL {
            let noisy = apply_noise(&doc, &targets, kind, 0.0, seed);
            prop_assert_eq!(&noisy, &ordered, "{:?} altered a 0-intensity sample", kind);
        }
    }
}

// ---------------------------------------------------------------------------
// Evolution over time
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Target roles that can never disappear stay present across the whole
    /// observation window.
    #[test]
    fn permanent_roles_never_disappear(site_index in 0u64..20, day in arb_day()) {
        let site = Site::new(Vertical::ALL[site_index as usize % Vertical::ALL.len()], site_index);
        for &role in [TargetRole::MainHeadline, TargetRole::LogoImage, TargetRole::NavEntries].iter() {
            let task = WrapperTask::new(site.clone(), 0, PageKind::Detail, role);
            prop_assert!(
                task.targets_present(day),
                "{:?} disappeared on day {:?}",
                role,
                day
            );
            let (doc, targets) = task.page_with_targets(day);
            prop_assert!(!targets.is_empty());
            prop_assert!(targets.iter().all(|&t| doc.contains(t)));
        }
    }
}
