//! The unified metric registry: named counters, gauges and histograms
//! with label sets, rendered in Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! cells: resolve them once (at construction, or through a `OnceLock` at
//! an instrumentation site) and every subsequent record is a relaxed
//! `fetch_add` — the registry mutex is only taken at registration and at
//! render time.  Families render in **registration order** and series in
//! **creation order**, so exposition output is deterministic.
//!
//! [`parse_exposition`] is the minimal inverse of [`Registry::render`],
//! used by the round-trip property test and available to scrapers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Canonical µs latency bucket bounds shared by the workspace's latency
/// histograms; the final `u64::MAX` bound renders as `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// Family kinds, matching Prometheus `# TYPE` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Instantaneous value (set, not accumulated).
    Gauge,
    /// Fixed-bucket distribution with `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` label.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Shared storage behind every handle.
#[derive(Debug, Default)]
struct Cells {
    value: AtomicU64,
    /// Per-bucket (non-cumulative) observation counts; empty for
    /// counters/gauges.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<Cells>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cells.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cells.value.load(Ordering::Relaxed)
    }
}

/// A set-anytime gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    cells: Arc<Cells>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.cells.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cells.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle.  Bounds are inclusive upper limits;
/// a final `u64::MAX` bound renders as `+Inf`.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<Cells>,
    bounds: Arc<Vec<u64>>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&limit| v <= limit)
            .unwrap_or(self.bounds.len().saturating_sub(1));
        if let Some(slot) = self.cells.buckets.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in µs.
    pub fn observe_us(&self, elapsed: Duration) {
        self.observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    cells: Arc<Cells>,
}

#[derive(Debug)]
struct Family {
    name: String,
    kind: MetricKind,
    bounds: Arc<Vec<u64>>,
    series: Vec<Series>,
}

/// A metric registry.  The workspace-wide instance is [`Registry::global`];
/// per-daemon registries (serve) construct their own so parallel daemons
/// in one test process do not cross-count.
#[derive(Debug)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            families: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry that library subsystems (induction,
    /// maintenance, the persistent registry) record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter {
            cells: self.series(name, MetricKind::Counter, &[], labels),
        }
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge {
            cells: self.series(name, MetricKind::Gauge, &[], labels),
        }
    }

    /// Gets or creates a histogram series with the given inclusive upper
    /// bucket bounds (use a final `u64::MAX` for `+Inf`).  Bounds are
    /// fixed by the first registration of the family.
    pub fn histogram(&self, name: &str, bounds: &[u64], labels: &[(&str, &str)]) -> Histogram {
        let cells = self.series(name, MetricKind::Histogram, bounds, labels);
        let bounds = self
            .families
            .lock()
            .ok()
            .and_then(|fams| {
                fams.iter()
                    .find(|f| f.name == name)
                    .map(|f| Arc::clone(&f.bounds))
            })
            .unwrap_or_else(|| Arc::new(bounds.to_vec()));
        Histogram { cells, bounds }
    }

    /// Get-or-create the cells of one series.  A name reused with a
    /// different kind gets detached cells (recorded but never rendered)
    /// rather than a panic — the registry sits on request paths.
    fn series(
        &self,
        name: &str,
        kind: MetricKind,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Cells> {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let Ok(mut families) = self.families.lock() else {
            return Arc::new(Cells::default());
        };
        let family = match families.iter().position(|f| f.name == name) {
            Some(i) => {
                if families[i].kind != kind {
                    return Arc::new(Cells::default());
                }
                &mut families[i]
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    kind,
                    bounds: Arc::new(bounds.to_vec()),
                    series: Vec::new(),
                });
                let last = families.len() - 1;
                &mut families[last]
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return Arc::clone(&s.cells);
        }
        let cells = Arc::new(Cells {
            value: AtomicU64::new(0),
            buckets: family.bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        });
        family.series.push(Series {
            labels,
            cells: Arc::clone(&cells),
        });
        cells
    }

    /// Renders the Prometheus text exposition: families in registration
    /// order, series in creation order, histograms as cumulative
    /// `_bucket{le=…}` plus `_sum`/`_count`.
    pub fn render(&self) -> String {
        let Ok(families) = self.families.lock() else {
            return String::new();
        };
        let mut out = String::with_capacity(4096);
        for family in families.iter() {
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind.name()));
            for series in &family.series {
                match family.kind {
                    MetricKind::Counter | MetricKind::Gauge => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            series.cells.value.load(Ordering::Relaxed)
                        ));
                    }
                    MetricKind::Histogram => {
                        let mut cumulative = 0u64;
                        for (slot, &limit) in series.cells.buckets.iter().zip(family.bounds.iter())
                        {
                            cumulative += slot.load(Ordering::Relaxed);
                            let le = if limit == u64::MAX {
                                "+Inf".to_string()
                            } else {
                                limit.to_string()
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                family.name,
                                render_labels(&series.labels, Some(&le)),
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            series.cells.sum.load(Ordering::Relaxed)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            series.cells.count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{v}\""));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

/// One sample line of a parsed exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSample {
    /// Full sample name including `_bucket`/`_sum`/`_count` suffixes.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The (integer) sample value.
    pub value: u64,
}

/// One `# TYPE` family of a parsed exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFamily {
    /// Family name.
    pub name: String,
    /// `counter` / `gauge` / `histogram`.
    pub kind: String,
    /// Sample lines attributed to this family.
    pub samples: Vec<ParsedSample>,
}

/// Parses text in the subset of the Prometheus exposition format that
/// [`Registry::render`] emits (integer values, no escapes in label
/// values, `# TYPE` comments only).  Returns `None` on any malformed
/// line — the round-trip property test treats that as failure.
pub fn parse_exposition(text: &str) -> Option<Vec<ParsedFamily>> {
    let mut families: Vec<ParsedFamily> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ')?;
            families.push(ParsedFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let sample = parse_sample(line)?;
        // Attribute to the most recent family whose name prefixes the
        // sample name (covers `_bucket`/`_sum`/`_count`).
        let family = families
            .iter_mut()
            .rev()
            .find(|f| sample.name == f.name || sample.name.starts_with(&format!("{}_", f.name)))?;
        family.samples.push(sample);
    }
    Some(families)
}

fn parse_sample(line: &str) -> Option<ParsedSample> {
    let (head, value) = line.rsplit_once(' ')?;
    let value = if value == "+Inf" {
        u64::MAX
    } else {
        value.parse::<u64>().ok()?
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=')?;
                    let v = v.strip_prefix('"')?.strip_suffix('"')?;
                    labels.push((k.to_string(), v.to_string()));
                }
            }
            (name.to_string(), labels)
        }
    };
    Some(ParsedSample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_in_registration_order() {
        let reg = Registry::new();
        let a = reg.counter("t_requests_total", &[("endpoint", "x")]);
        let b = reg.counter("t_requests_total", &[("endpoint", "y")]);
        let g = reg.gauge("t_depth", &[]);
        a.inc();
        a.inc();
        b.inc();
        g.set(7);
        assert_eq!(
            reg.render(),
            "# TYPE t_requests_total counter\n\
             t_requests_total{endpoint=\"x\"} 2\n\
             t_requests_total{endpoint=\"y\"} 1\n\
             # TYPE t_depth gauge\n\
             t_depth 7\n"
        );
    }

    #[test]
    fn same_series_resolves_to_the_same_cells() {
        let reg = Registry::new();
        let a = reg.counter("t_total", &[("k", "v")]);
        let b = reg.counter("t_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let reg = Registry::new();
        let c = reg.counter("t_mixed", &[]);
        let g = reg.gauge("t_mixed", &[]);
        c.inc();
        g.set(99);
        assert_eq!(c.get(), 1, "original series untouched");
        assert!(!reg.render().contains("99"), "detached cells never render");
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("t_lat_us", &[100, 1_000, u64::MAX], &[("op", "read")]);
        h.observe(50);
        h.observe(60);
        h.observe(500);
        h.observe(2_000_000);
        assert_eq!(h.count(), 4);
        assert_eq!(
            reg.render(),
            "# TYPE t_lat_us histogram\n\
             t_lat_us_bucket{op=\"read\",le=\"100\"} 2\n\
             t_lat_us_bucket{op=\"read\",le=\"1000\"} 3\n\
             t_lat_us_bucket{op=\"read\",le=\"+Inf\"} 4\n\
             t_lat_us_sum{op=\"read\"} 2000610\n\
             t_lat_us_count{op=\"read\"} 4\n"
        );
    }

    #[test]
    fn parser_inverts_render() {
        let reg = Registry::new();
        reg.counter("t_a_total", &[("x", "1")]).add(5);
        reg.gauge("t_b", &[]).set(9);
        let h = reg.histogram("t_c_us", &[10, u64::MAX], &[]);
        h.observe(3);
        h.observe(30);
        let parsed = parse_exposition(&reg.render()).expect("well-formed");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "t_a_total");
        assert_eq!(parsed[0].kind, "counter");
        assert_eq!(parsed[0].samples[0].value, 5);
        assert_eq!(parsed[0].samples[0].labels, vec![("x".into(), "1".into())]);
        assert_eq!(parsed[1].samples[0].value, 9);
        assert_eq!(parsed[2].kind, "histogram");
        let count = parsed[2]
            .samples
            .iter()
            .find(|s| s.name == "t_c_us_count")
            .map(|s| s.value);
        assert_eq!(count, Some(2));
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        assert!(parse_exposition("nonsense with spaces but no value").is_none());
        assert!(parse_exposition("t_x{k=unquoted} 3").is_none());
        assert!(parse_exposition("orphan_sample 3").is_none(), "no family");
    }
}
