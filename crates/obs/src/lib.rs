//! # wi-obs — workspace-wide observability
//!
//! Structured tracing, a unified metric registry, and structured logging
//! for the wrapper-induction system, built with zero external
//! dependencies (the build environment is offline).
//!
//! ## The three surfaces
//!
//! * **Tracing** ([`trace`]): [`Span`](trace::Record)/event records with
//!   monotonic `Instant`-anchored timestamps ([`clock`]), RAII
//!   [`span`](trace::span) guards and guard-free
//!   [`record_span`](trace::record_span), per-thread lock-free SPSC
//!   [rings](ring::Ring) drained into a bounded global
//!   [journal](journal::Journal), and a top-K slow-span log.  Surfaced by
//!   the daemon as `GET /debug/trace` (NDJSON) and `GET /debug/slow`.
//! * **Metrics** ([`metrics`]): named counters/gauges/histograms with
//!   label sets behind `Arc`-backed handles; rendered (and parsed back)
//!   in Prometheus text exposition format.  The process-wide
//!   [`Registry::global`](metrics::Registry::global) collects the library
//!   subsystems (induction, maintenance, persistent registry); the serve
//!   daemon keeps a per-instance registry for its request families.
//! * **Logging** ([`logger`]): single-line `key=value` lifecycle records
//!   with monotonic offsets, closed-pipe tolerant.
//!
//! ## The disabled-path overhead contract
//!
//! Tracing defaults to [`Mode::Off`](trace::Mode).  Every tracing entry
//! point ([`trace::span`], [`trace::record_span`], [`trace::event`])
//! begins with a **single relaxed atomic load** and returns immediately
//! when tracing is off — no clock read, no allocation, no thread-local
//! touch.  The contract, gated in CI via `BENCH_obs.json`: **< 2%
//! overhead on the `maintain` bench with tracing off**.  Metric handles
//! are always live but cost one relaxed `fetch_add` per record; hot loops
//! accumulate locally and flush once per call.
//!
//! ## Ring-buffer semantics
//!
//! Each emitting thread owns one fixed-capacity SPSC ring.  A **full ring
//! drops the newest record** (counted in
//! [`JournalStats::ring_dropped`](journal::JournalStats)) so drain order
//! is never corrupted; the **full journal evicts the oldest record**
//! (counted in `overwritten`) so the `/debug/trace` view stays
//! recency-bounded.  Journal drains are serialised by the journal mutex,
//! which is what makes it the single consumer each ring requires; the
//! no-loss/no-duplication guarantee under parallel emission is proven by
//! the concurrency test in [`journal`].

#![deny(missing_docs)]

pub mod clock;
pub mod journal;
pub mod logger;
pub mod metrics;
pub mod ring;
pub mod trace;

pub use journal::JournalStats;
pub use logger::{format_record, log, Level};
pub use metrics::{
    parse_exposition, Counter, Gauge, Histogram, MetricKind, Registry, LATENCY_BUCKETS_US,
};
pub use trace::{
    event, journal_stats, mode, parse_mode, recent, record_span, set_mode, set_slow_threshold_us,
    slow_ndjson, slow_top, span, trace_ndjson, Mode, Record, RecordKind, SpanGuard,
};
