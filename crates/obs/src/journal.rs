//! The bounded global journal that per-thread rings drain into.
//!
//! Producers never touch the journal: they push into their own SPSC
//! [`Ring`](crate::ring::Ring).  Readers (the `/debug/trace` handler, the
//! bench drainer) call [`Journal::drain`], which — under the journal's own
//! mutex, making it the single consumer every ring requires — moves all
//! pending ring records into one bounded `VecDeque`.  When the deque is
//! full the **oldest** journal record is overwritten (counted in
//! [`JournalStats::overwritten`]): the journal is a recency-bounded view,
//! so the newest records win here, the opposite of the ring's
//! drop-newest-on-overflow rule (which protects drain ordering).

use crate::ring::Ring;
use crate::trace::Record;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Counters describing journal health, surfaced via `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Records currently buffered.
    pub len: usize,
    /// Maximum buffered records.
    pub capacity: usize,
    /// Records ever moved out of rings into the journal.
    pub drained: u64,
    /// Old records overwritten because the journal was full.
    pub overwritten: u64,
    /// Records refused at ring level because a ring was full (sum over
    /// registered rings).
    pub ring_dropped: u64,
}

#[derive(Debug)]
struct Inner {
    rings: Vec<Arc<Ring>>,
    records: VecDeque<Record>,
    drained: u64,
    overwritten: u64,
}

/// The bounded journal.  One global instance lives in
/// [`crate::trace`]; tests construct their own.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Journal {
    /// A journal retaining at most `capacity` records.
    pub const fn new(capacity: usize) -> Journal {
        Journal {
            capacity,
            inner: Mutex::new(Inner {
                rings: Vec::new(),
                records: VecDeque::new(),
                drained: 0,
                overwritten: 0,
            }),
        }
    }

    /// Registers a thread's ring for draining.  Called once per emitting
    /// thread; the `Arc` keeps the ring alive past thread exit so pending
    /// records still drain.
    pub fn register(&self, ring: Arc<Ring>) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.rings.push(ring);
        }
    }

    /// Moves every pending ring record into the journal, evicting the
    /// oldest journal entries on overflow.  Safe to call from any thread;
    /// the mutex serialises consumers (rings are SPSC).
    pub fn drain(&self) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        let inner = &mut *inner;
        for ring in &inner.rings {
            while let Some(record) = ring.pop() {
                if inner.records.len() >= self.capacity {
                    inner.records.pop_front();
                    inner.overwritten += 1;
                }
                inner.records.push_back(record);
                inner.drained += 1;
            }
        }
    }

    /// Drains, then returns (a clone of) the newest `limit` records in
    /// emission order.
    pub fn recent(&self, limit: usize) -> Vec<Record> {
        self.drain();
        let Ok(inner) = self.inner.lock() else {
            return Vec::new();
        };
        let skip = inner.records.len().saturating_sub(limit);
        inner.records.iter().skip(skip).cloned().collect()
    }

    /// Drains, then snapshots the journal counters.
    pub fn stats(&self) -> JournalStats {
        self.drain();
        let Ok(inner) = self.inner.lock() else {
            return JournalStats::default();
        };
        JournalStats {
            len: inner.records.len(),
            capacity: self.capacity,
            drained: inner.drained,
            overwritten: inner.overwritten,
            ring_dropped: inner.rings.iter().map(|r| r.dropped()).sum(),
        }
    }

    /// Empties the buffered records (registered rings stay registered).
    pub fn clear(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.records.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Record, RecordKind};

    fn rec(seq: u64, thread: u64) -> Record {
        Record {
            seq,
            kind: RecordKind::Span,
            name: "j",
            thread,
            start_us: seq,
            dur_us: 1,
            fields: Vec::new(),
        }
    }

    #[test]
    fn drain_moves_ring_records_and_bounds_the_journal() {
        let journal = Journal::new(8);
        let ring = Arc::new(Ring::new(64));
        journal.register(Arc::clone(&ring));
        for i in 0..20 {
            assert!(ring.push(rec(i, 0)));
        }
        let stats = journal.stats();
        assert_eq!(stats.drained, 20);
        assert_eq!(stats.len, 8, "bounded at capacity");
        assert_eq!(stats.overwritten, 12, "oldest evicted");
        let recent = journal.recent(4);
        assert_eq!(
            recent.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![16, 17, 18, 19],
            "newest records survive"
        );
    }

    #[test]
    fn recent_is_in_emission_order_across_rings() {
        let journal = Journal::new(32);
        let a = Arc::new(Ring::new(8));
        let b = Arc::new(Ring::new(8));
        journal.register(Arc::clone(&a));
        journal.register(Arc::clone(&b));
        a.push(rec(0, 0));
        b.push(rec(1, 1));
        a.push(rec(2, 0));
        let got: Vec<u64> = journal.recent(10).iter().map(|r| r.seq).collect();
        // Per-ring order is preserved; cross-ring interleave is by drain
        // pass, so all of `a` then all of `b` within one pass.
        assert_eq!(got, vec![0, 2, 1]);
    }

    /// The no-loss / no-duplication contract under parallel emission: every
    /// record that a producer successfully pushed (ring accepted it) shows
    /// up in the journal exactly once, even with a drainer racing the
    /// producers.
    #[test]
    fn parallel_emission_never_loses_or_duplicates_records() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;

        // Capacity large enough that nothing is evicted — losses would be
        // indistinguishable from overwrites otherwise.
        static JOURNAL: Journal = Journal::new((THREADS * PER_THREAD) as usize);
        static SEQ: AtomicU64 = AtomicU64::new(0);
        static DONE: AtomicBool = AtomicBool::new(false);

        let drainer = std::thread::spawn(|| {
            while !DONE.load(Ordering::Acquire) {
                JOURNAL.drain();
                std::thread::yield_now();
            }
            JOURNAL.drain();
        });

        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let ring = Arc::new(Ring::new(256));
                    JOURNAL.register(Arc::clone(&ring));
                    let mut pushed = 0u64;
                    for _ in 0..PER_THREAD {
                        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
                        if ring.push(rec(seq, t)) {
                            pushed += 1;
                        } else {
                            // Ring full: back off so the drainer catches up,
                            // then count the retry as a fresh record.
                            std::thread::yield_now();
                        }
                    }
                    pushed
                })
            })
            .collect();

        let pushed_total: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        DONE.store(true, Ordering::Release);
        drainer.join().unwrap();

        let stats = JOURNAL.stats();
        assert_eq!(stats.overwritten, 0, "sized to never overwrite");
        assert_eq!(stats.drained, pushed_total, "no pushed record lost");
        assert_eq!(
            stats.drained + stats.ring_dropped,
            THREADS * PER_THREAD,
            "every emission accounted for: drained or counted dropped"
        );

        let mut seqs: Vec<u64> = JOURNAL.recent(usize::MAX).iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len() as u64, pushed_total);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len() as u64, pushed_total, "no duplicates");
    }
}
