//! The monotonic process clock every observability record is anchored to.
//!
//! Wall-clock time (`SystemTime::now`) is banned outside the serve layer by
//! wi-lint R6 because it makes replay non-deterministic.  Observability
//! records therefore carry *monotonic offsets*: microseconds since a
//! process-wide [`Instant`] anchor captured on first use.  Offsets are
//! totally ordered within a process, immune to NTP steps, and cheap to
//! subtract; they are meaningless across processes, which is fine for a
//! per-daemon introspection surface.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// The process anchor instant.  First call wins; call this early (daemon
/// startup) so offsets cover the whole process lifetime.
pub fn anchor() -> Instant {
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process anchor.
pub fn offset_us() -> u64 {
    u64::try_from(anchor().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The monotonic offset (µs) of an already-captured instant.  Instants
/// taken before the anchor saturate to zero (`Instant::duration_since`
/// is saturating), so this never panics.
pub fn offset_us_of(at: Instant) -> u64 {
    u64::try_from(at.duration_since(anchor()).as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_monotone() {
        let a = offset_us();
        let b = offset_us();
        assert!(b >= a);
    }

    #[test]
    fn pre_anchor_instants_saturate_to_zero() {
        // `anchor()` is already initialised by the time this runs (or is
        // initialised right now); an instant equal to the anchor maps to 0.
        let at = anchor();
        assert_eq!(offset_us_of(at), 0);
    }
}
