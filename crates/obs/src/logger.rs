//! Structured single-line logging for daemon lifecycle events.
//!
//! The daemon's startup/shutdown/recovery messages used to be bare
//! `println!` prose; operators (and the cross-process test battery) need
//! machine-splittable records instead.  [`log`] emits one line per event:
//!
//! ```text
//! level=info off_us=1234 event=serve.listening addr=http://127.0.0.1:8080
//! ```
//!
//! * `level` — `info`/`warn`/`error`,
//! * `off_us` — monotonic offset since the process anchor (no wall
//!   clock: wi-lint R6 bans `SystemTime::now` here),
//! * `event` — a static dotted name,
//! * then caller fields in order, `key=value`, values containing
//!   whitespace or `"` rendered as a quoted string.
//!
//! Writes go through `writeln!` with the result discarded, so a closed
//! stdout pipe (daemon parent exited) never panics the process.  When
//! tracing is enabled the event name is mirrored into the journal.

use crate::{clock, trace};
use std::io::Write;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine lifecycle events.
    Info,
    /// Degraded-but-running conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// The `level=` value.
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Formats one record without writing it (exposed for tests).
pub fn format_record(level: Level, off_us: u64, event: &str, fields: &[(&str, String)]) -> String {
    let mut line = format!("level={} off_us={off_us} event={event}", level.name());
    for (key, value) in fields {
        let needs_quotes =
            value.is_empty() || value.contains(|c: char| c.is_whitespace() || c == '"');
        if needs_quotes {
            line.push_str(&format!(" {key}=\"{}\"", value.replace('"', "'")));
        } else {
            line.push_str(&format!(" {key}={value}"));
        }
    }
    line
}

/// Emits one structured log line to stdout, tolerating a closed pipe.
pub fn log(level: Level, event: &'static str, fields: &[(&str, String)]) {
    let line = format_record(level, clock::offset_us(), event, fields);
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
    trace::event(event, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_single_line_key_value() {
        let line = format_record(
            Level::Info,
            42,
            "serve.listening",
            &[
                ("addr", "http://127.0.0.1:8080".to_string()),
                ("workers", "4".to_string()),
            ],
        );
        assert_eq!(
            line,
            "level=info off_us=42 event=serve.listening addr=http://127.0.0.1:8080 workers=4"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn awkward_values_are_quoted() {
        let line = format_record(
            Level::Error,
            7,
            "serve.recovery",
            &[("detail", "torn \"tail\" record".to_string())],
        );
        assert_eq!(
            line,
            "level=error off_us=7 event=serve.recovery detail=\"torn 'tail' record\""
        );
    }
}
