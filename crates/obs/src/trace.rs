//! The structured tracing core: span/event records, the mode gate, and
//! the global journal plumbing.
//!
//! # The disabled-path contract
//!
//! Tracing defaults to **off**, and the off path must be invisible on hot
//! paths: [`span`] and [`record_span`] start with a **single relaxed
//! atomic load** of the mode and return immediately when it is zero — no
//! allocation, no clock read, no thread-local access.  The `maintain`
//! bench budget for the disabled path is <2% overhead (see
//! `BENCH_obs.json`); in practice a relaxed load is sub-nanosecond.
//!
//! # Record flow
//!
//! When tracing is on (or the sampler picks a record), the emitting
//! thread timestamps the record against the monotonic
//! [anchor](crate::clock), tags it with a process-unique sequence number,
//! and pushes it into its own lock-free SPSC [`Ring`] (registered with
//! the global [`Journal`] on first use).  Consumers — `/debug/trace`,
//! benches, tests — drain rings into the bounded journal on read.  A full
//! ring drops the newest record (counted); a full journal evicts the
//! oldest (counted); both counters surface in [`journal_stats`].

use crate::clock;
use crate::journal::{Journal, JournalStats};
use crate::ring::Ring;
use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Records each emitting thread's ring can hold before dropping.
pub const RING_CAPACITY: usize = 1024;
/// Records the global journal retains.
pub const JOURNAL_CAPACITY: usize = 4096;
/// Spans kept in the slow log (top-K by duration).
pub const SLOW_CAPACITY: usize = 32;

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A timed region (`dur_us` is meaningful).
    Span,
    /// A point-in-time marker (`dur_us` is zero).
    Event,
}

impl RecordKind {
    /// The NDJSON label.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Process-unique emission sequence number.
    pub seq: u64,
    /// Span or event.
    pub kind: RecordKind,
    /// Static site name, e.g. `"maintain.verify"`.
    pub name: &'static str,
    /// Small dense id of the emitting thread.
    pub thread: u64,
    /// Monotonic offset (µs since the process anchor) of the span start
    /// (or the event itself).
    pub start_us: u64,
    /// Span duration in µs (zero for events).
    pub dur_us: u64,
    /// Numeric payload, e.g. `[("candidates", 42)]`.
    pub fields: Vec<(&'static str, u64)>,
}

impl Record {
    /// One NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{}",
            self.seq,
            self.kind.name(),
            self.name,
            self.thread,
            self.start_us,
            self.dur_us
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// The tracing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No records are emitted; the hot-path cost is one relaxed load.
    Off,
    /// Every span/event is recorded.
    On,
    /// Every N-th span/event is recorded (N ≥ 1; process-wide ticket).
    Sample(u64),
}

const MODE_OFF: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_SAMPLE: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);
static SAMPLE_N: AtomicU64 = AtomicU64::new(1);
static TICKET: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);
static SLOW_THRESHOLD_US: AtomicU64 = AtomicU64::new(1_000);
static SLOW: Mutex<Vec<Record>> = Mutex::new(Vec::new());
static JOURNAL: Journal = Journal::new(JOURNAL_CAPACITY);

thread_local! {
    static LOCAL: OnceCell<(u64, Arc<Ring>)> = const { OnceCell::new() };
}

/// Sets the process-wide tracing mode.
pub fn set_mode(mode: Mode) {
    match mode {
        Mode::Off => MODE.store(MODE_OFF, Ordering::Relaxed),
        Mode::On => MODE.store(MODE_ON, Ordering::Relaxed),
        Mode::Sample(n) => {
            SAMPLE_N.store(n.max(1), Ordering::Relaxed);
            MODE.store(MODE_SAMPLE, Ordering::Relaxed);
        }
    }
}

/// The current tracing mode.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_ON => Mode::On,
        MODE_SAMPLE => Mode::Sample(SAMPLE_N.load(Ordering::Relaxed)),
        _ => Mode::Off,
    }
}

/// Parses a `--trace` flag value: `on`, `off`, or `sample:N` (N ≥ 1).
pub fn parse_mode(s: &str) -> Option<Mode> {
    match s {
        "on" => Some(Mode::On),
        "off" => Some(Mode::Off),
        _ => {
            let n = s.strip_prefix("sample:")?.parse::<u64>().ok()?;
            if n == 0 {
                return None;
            }
            Some(Mode::Sample(n))
        }
    }
}

/// True when tracing is not [`Mode::Off`].  This is the documented
/// single-relaxed-load disabled-path check.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != MODE_OFF
}

/// Should the record about to be emitted actually be recorded?
#[inline]
fn should_record() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => false,
        MODE_ON => true,
        _ => {
            let n = SAMPLE_N.load(Ordering::Relaxed).max(1);
            TICKET.fetch_add(1, Ordering::Relaxed).is_multiple_of(n)
        }
    }
}

fn emit(
    kind: RecordKind,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    fields: &[(&'static str, u64)],
) {
    let mut record = Record {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind,
        name,
        thread: 0,
        start_us,
        dur_us,
        fields: fields.to_vec(),
    };
    LOCAL.with(|cell| {
        let (thread, ring) = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new(RING_CAPACITY));
            JOURNAL.register(Arc::clone(&ring));
            (THREAD_IDS.fetch_add(1, Ordering::Relaxed), ring)
        });
        record.thread = *thread;
        if kind == RecordKind::Span && dur_us >= SLOW_THRESHOLD_US.load(Ordering::Relaxed) {
            if let Ok(mut slow) = SLOW.lock() {
                slow.push(record.clone());
                slow.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.seq.cmp(&b.seq)));
                slow.truncate(SLOW_CAPACITY);
            }
        }
        ring.push(record);
    });
}

/// An RAII span: created by [`span`], emits a [`RecordKind::Span`] record
/// on drop.  When tracing was off at creation the guard is inert (a
/// `None`), so the drop costs nothing.
///
/// **Serve-handler discipline (wi-lint R7):** do not hold a `SpanGuard`
/// across a registry lock acquisition — use [`record_span`] with an
/// explicit start instant instead, so guard liveness never overlaps lock
/// liveness.
#[must_use = "the span measures until the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(&'static str, Instant)>,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled path).
    pub fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, started)) = self.active.take() {
            let dur = duration_us(started);
            emit(
                RecordKind::Span,
                name,
                clock::offset_us_of(started),
                dur,
                &[],
            );
        }
    }
}

fn duration_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Opens a span; the returned guard emits the record when dropped.
/// Disabled path: one relaxed load, no clock read.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !should_record() {
        return SpanGuard::inert();
    }
    SpanGuard {
        active: Some((name, Instant::now())),
    }
}

/// Records a completed span from an explicit start instant — the
/// guard-free form serve handlers use so no span guard is ever live
/// across a registry lock (wi-lint R7).  Disabled path: one relaxed load.
#[inline]
pub fn record_span(name: &'static str, started: Instant, fields: &[(&'static str, u64)]) {
    if !should_record() {
        return;
    }
    emit(
        RecordKind::Span,
        name,
        clock::offset_us_of(started),
        duration_us(started),
        fields,
    );
}

/// Records a point-in-time event.  Disabled path: one relaxed load.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, u64)]) {
    if !should_record() {
        return;
    }
    emit(RecordKind::Event, name, clock::offset_us(), 0, fields);
}

/// Drains all rings into the global journal and returns the newest
/// `limit` records in emission order.
pub fn recent(limit: usize) -> Vec<Record> {
    JOURNAL.recent(limit)
}

/// The newest `limit` journal records as NDJSON (one record per line).
pub fn trace_ndjson(limit: usize) -> String {
    let mut out = String::new();
    for record in recent(limit) {
        out.push_str(&record.to_ndjson());
        out.push('\n');
    }
    out
}

/// Drains and snapshots the global journal counters.
pub fn journal_stats() -> JournalStats {
    JOURNAL.stats()
}

/// Sets the slow-log threshold: spans at least this long (µs) enter the
/// top-K slow log.
pub fn set_slow_threshold_us(us: u64) {
    SLOW_THRESHOLD_US.store(us, Ordering::Relaxed);
}

/// The current slow-log threshold (µs).
pub fn slow_threshold_us() -> u64 {
    SLOW_THRESHOLD_US.load(Ordering::Relaxed)
}

/// The top-K slowest spans (duration ≥ threshold), slowest first.
pub fn slow_top() -> Vec<Record> {
    SLOW.lock().map(|s| s.clone()).unwrap_or_default()
}

/// The slow log as NDJSON, slowest span first.
pub fn slow_ndjson() -> String {
    let mut out = String::new();
    for record in slow_top() {
        out.push_str(&record.to_ndjson());
        out.push('\n');
    }
    out
}

/// Test/bench hook: clears the journal and the slow log (mode, rings and
/// counters are left as-is).
pub fn clear() {
    JOURNAL.clear();
    if let Ok(mut slow) = SLOW.lock() {
        slow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global journal is process-wide, so these tests key their
    // assertions on unique span names rather than absolute counts.

    #[test]
    fn disabled_mode_emits_nothing() {
        set_mode(Mode::Off);
        for _ in 0..100 {
            let _g = span("trace.test.disabled");
            record_span("trace.test.disabled", Instant::now(), &[]);
            event("trace.test.disabled", &[]);
        }
        assert!(recent(usize::MAX)
            .iter()
            .all(|r| r.name != "trace.test.disabled"));
    }

    #[test]
    fn spans_events_and_fields_round_trip_through_the_journal() {
        set_mode(Mode::On);
        {
            let _g = span("trace.test.guard");
        }
        event("trace.test.event", &[("k", 7)]);
        set_mode(Mode::Off);

        let records = recent(usize::MAX);
        let g = records.iter().find(|r| r.name == "trace.test.guard");
        assert!(g.is_some_and(|r| r.kind == RecordKind::Span));
        let e = records.iter().find(|r| r.name == "trace.test.event");
        assert!(e.is_some_and(|r| r.kind == RecordKind::Event && r.fields == vec![("k", 7)]));
    }

    #[test]
    fn sampling_records_one_in_n() {
        set_mode(Mode::Sample(10));
        for _ in 0..100 {
            event("trace.test.sampled", &[]);
        }
        set_mode(Mode::Off);
        let n = recent(usize::MAX)
            .iter()
            .filter(|r| r.name == "trace.test.sampled")
            .count();
        // The process-wide ticket may be mid-phase, and other tests may
        // consume tickets concurrently; the count stays well under 100
        // and (with tolerance for racing tests) near 10.
        assert!((1..=30).contains(&n), "sampled {n}/100");
    }

    #[test]
    fn slow_spans_enter_the_top_k() {
        set_mode(Mode::On);
        set_slow_threshold_us(0);
        record_span("trace.test.slow", Instant::now(), &[]);
        set_slow_threshold_us(1_000);
        set_mode(Mode::Off);
        assert!(
            slow_top().iter().any(|r| r.name == "trace.test.slow"),
            "any span clears a zero threshold"
        );
        assert!(slow_ndjson().contains("\"name\":\"trace.test.slow\""));
    }

    #[test]
    fn ndjson_shape_is_stable() {
        let r = Record {
            seq: 3,
            kind: RecordKind::Span,
            name: "x",
            thread: 1,
            start_us: 10,
            dur_us: 5,
            fields: vec![("a", 1), ("b", 2)],
        };
        assert_eq!(
            r.to_ndjson(),
            "{\"seq\":3,\"kind\":\"span\",\"name\":\"x\",\"thread\":1,\"start_us\":10,\"dur_us\":5,\"fields\":{\"a\":1,\"b\":2}}"
        );
    }

    #[test]
    fn parse_mode_accepts_the_flag_grammar() {
        assert_eq!(parse_mode("on"), Some(Mode::On));
        assert_eq!(parse_mode("off"), Some(Mode::Off));
        assert_eq!(parse_mode("sample:16"), Some(Mode::Sample(16)));
        assert_eq!(parse_mode("sample:0"), None);
        assert_eq!(parse_mode("sample:"), None);
        assert_eq!(parse_mode("loud"), None);
    }
}
