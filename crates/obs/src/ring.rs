//! A single-producer / single-consumer lock-free ring buffer of trace
//! records.
//!
//! Each emitting thread owns exactly one ring (it is the only *producer*);
//! the global journal drains every registered ring under its own mutex,
//! making the journal the only *consumer*.  Under that discipline the ring
//! needs no locks: the producer publishes a slot with a release store of
//! `head`, the consumer acknowledges with a release store of `tail`, and
//! each side reads the other's index with an acquire load.
//!
//! **Overflow drops the newest record** (the push is refused and counted in
//! [`Ring::dropped`]) rather than overwriting history — a full ring means
//! the drainer is behind, and silently overwriting would reorder the
//! journal.  Capacity is fixed at construction.

use crate::trace::Record;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The SPSC ring.  See the module docs for the producer/consumer contract.
#[derive(Debug)]
pub struct Ring {
    slots: Box<[UnsafeCell<Option<Record>>]>,
    /// Next write position (monotonically increasing; producer-owned).
    head: AtomicUsize,
    /// Next read position (monotonically increasing; consumer-owned).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot `i % len` is written only by the single producer before the
// release store of `head` that publishes it, and taken only by the single
// consumer after an acquire load of `head` observes that store; the
// matching release/acquire pair on `tail` keeps the producer from reusing
// a slot before the consumer has emptied it.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// A ring holding at most `capacity` undrained records.
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| UnsafeCell::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records refused because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Undrained record count (approximate under concurrency).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }

    /// True when no records await draining.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: appends one record, or counts it dropped when the
    /// ring is full.  Must only be called from the owning thread.
    pub fn push(&self, record: Record) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = head % self.slots.len();
        // SAFETY: this slot is outside the published [tail, head) window,
        // so the consumer does not touch it; we are the only producer.
        unsafe { *self.slots[idx].get() = Some(record) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: removes the oldest record, if any.  Must only be
    /// called from the single consumer (the journal, under its mutex).
    pub fn pop(&self) -> Option<Record> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let idx = tail % self.slots.len();
        // SAFETY: the acquire load of `head` above proves the producer's
        // write to this slot happened-before; the slot is inside the
        // published window and we are the only consumer.
        let record = unsafe { (*self.slots[idx].get()).take() };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Record, RecordKind};

    fn rec(seq: u64) -> Record {
        Record {
            seq,
            kind: RecordKind::Event,
            name: "t",
            thread: 0,
            start_us: 0,
            dur_us: 0,
            fields: Vec::new(),
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let ring = Ring::new(8);
        for i in 0..5 {
            assert!(ring.push(rec(i)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop().map(|r| r.seq), Some(i));
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = Ring::new(4);
        for i in 0..4 {
            assert!(ring.push(rec(i)));
        }
        assert!(!ring.push(rec(99)), "full ring refuses the push");
        assert_eq!(ring.dropped(), 1);
        // The four oldest records survive untouched.
        let drained: Vec<u64> = std::iter::from_fn(|| ring.pop()).map(|r| r.seq).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drained_slots_become_reusable() {
        let ring = Ring::new(2);
        for round in 0..10u64 {
            assert!(ring.push(rec(round * 2)));
            assert!(ring.push(rec(round * 2 + 1)));
            assert!(!ring.push(rec(1_000)), "capacity 2 is a hard limit");
            assert_eq!(ring.pop().map(|r| r.seq), Some(round * 2));
            assert_eq!(ring.pop().map(|r| r.seq), Some(round * 2 + 1));
        }
        assert_eq!(ring.dropped(), 10);
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_producer_and_consumer_lose_nothing() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(64));
        let total = 10_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..total {
                    if ring.push(rec(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut seen: Vec<u64> = Vec::new();
        while !producer.is_finished() || !ring.is_empty() {
            while let Some(r) = ring.pop() {
                seen.push(r.seq);
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(seen.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), total);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "drained in order");
    }
}
