//! Property test: the Prometheus text exposition emitted by
//! [`wi_obs::Registry::render`] parses back (via the minimal
//! [`wi_obs::parse_exposition`]) into the same families, kinds, series
//! and values.  Families, label sets and recorded values are generated;
//! the invariant is exact structural equality plus histogram
//! bucket-arithmetic consistency.

use proptest::prelude::*;
use wi_obs::{parse_exposition, Registry};

/// A safe metric-name / label alphabet (the renderer does not escape).
fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ])
    .prop_map(|s: &str| s.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn render_then_parse_is_lossless(
        names in prop::collection::vec(name_strategy(), 1..5),
        label_values in prop::collection::vec(name_strategy(), 1..4),
        counts in prop::collection::vec(0u64..10_000, 1..8),
        histogram_values in prop::collection::vec(0u64..5_000_000, 0..12),
    ) {
        let reg = Registry::new();

        // Duplicate label values would collapse into one series (same
        // cells), so expectations are phrased over the unique list.
        let mut lv_seen = std::collections::HashSet::new();
        let label_values: Vec<String> = label_values
            .into_iter()
            .filter(|v| lv_seen.insert(v.clone()))
            .collect();

        // Duplicate family names would likewise re-bump existing series,
        // so registration also runs over the unique name list.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<String> = names.into_iter().filter(|n| seen.insert(n.clone())).collect();

        // One counter family per unique name, one series per label value,
        // each bumped by the matching count.
        for name in &unique {
            let family = format!("p_{name}_total");
            for (i, lv) in label_values.iter().enumerate() {
                let c = reg.counter(&family, &[("case", lv)]);
                c.add(counts[i % counts.len()]);
            }
        }
        // A labelled gauge and a histogram exercising all three kinds.
        reg.gauge("p_depth", &[("site", &label_values[0])]).set(counts[0]);
        let h = reg.histogram("p_lat_us", &[100, 10_000, 1_000_000, u64::MAX], &[]);
        for &v in &histogram_values {
            h.observe(v);
        }

        let text = reg.render();
        let parsed = parse_exposition(&text);
        prop_assert!(parsed.is_some(), "render must be parseable:\n{text}");
        let parsed = parsed.unwrap();

        // Family count and order: unique names + gauge + histogram.
        prop_assert_eq!(parsed.len(), unique.len() + 2);

        // Counter families: same series labels and values.
        for (fi, name) in unique.iter().enumerate() {
            let family = &parsed[fi];
            prop_assert_eq!(family.name.clone(), format!("p_{name}_total"));
            prop_assert_eq!(family.kind.as_str(), "counter");
            prop_assert_eq!(family.samples.len(), label_values.len());
            for (i, lv) in label_values.iter().enumerate() {
                let sample = &family.samples[i];
                prop_assert_eq!(
                    sample.labels.clone(),
                    vec![("case".to_string(), lv.clone())]
                );
                prop_assert_eq!(sample.value, counts[i % counts.len()]);
            }
        }

        // Gauge: value survives.
        let gauge = &parsed[unique.len()];
        prop_assert_eq!(gauge.kind.as_str(), "gauge");
        prop_assert_eq!(gauge.samples[0].value, counts[0]);

        // Histogram: _count equals observations, _sum equals their sum,
        // the +Inf bucket is cumulative-total, and buckets are monotone.
        let hist = &parsed[unique.len() + 1];
        prop_assert_eq!(hist.kind.as_str(), "histogram");
        let count = hist.samples.iter().find(|s| s.name == "p_lat_us_count");
        prop_assert_eq!(count.map(|s| s.value), Some(histogram_values.len() as u64));
        let sum = hist.samples.iter().find(|s| s.name == "p_lat_us_sum");
        prop_assert_eq!(sum.map(|s| s.value), Some(histogram_values.iter().sum::<u64>()));
        let buckets: Vec<u64> = hist
            .samples
            .iter()
            .filter(|s| s.name == "p_lat_us_bucket")
            .map(|s| s.value)
            .collect();
        prop_assert_eq!(buckets.len(), 4);
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative");
        prop_assert_eq!(buckets[3], histogram_values.len() as u64);
    }
}
