//! Property-based tests of the DOM substrate: structural invariants of the
//! arena tree, navigation, document order, hashing, serialization and
//! mutation.

use proptest::prelude::*;
use wi_dom::{
    parse_html, structural_hash, subtree_equal, to_html, Document, DocumentBuilder, NodeId,
    ParseOptions,
};

/// A compact description of a random tree: rows of
/// `(depth, tag index, attribute choice, text choice)` interpreted in
/// pre-order by a [`DocumentBuilder`].
fn arb_document() -> impl Strategy<Value = Document> {
    prop::collection::vec((0usize..5, 0usize..7, 0usize..4, 0usize..4), 1..60).prop_map(|rows| {
        // Only tags without HTML implied-end-tag rules: nesting any of these
        // inside itself survives a serialize → parse round trip unchanged.
        let tags = ["div", "span", "section", "ul", "article", "a", "h2"];
        let mut builder = DocumentBuilder::new();
        builder.open_element("html", &[]);
        builder.open_element("body", &[]);
        let base = builder.depth();
        for (i, (depth, tag, attr_choice, text_choice)) in rows.iter().enumerate() {
            while builder.depth() > base + depth {
                let _ = builder.close_element();
            }
            let id_value = format!("n{i}");
            let class_value = format!("c{}", attr_choice);
            let attrs: Vec<(&str, &str)> = match attr_choice {
                0 => vec![],
                1 => vec![("id", id_value.as_str())],
                2 => vec![("class", class_value.as_str())],
                _ => vec![("id", id_value.as_str()), ("class", class_value.as_str())],
            };
            builder.open_element(tags[*tag], &attrs);
            if *text_choice > 0 {
                builder.text(&format!("text {i} {text_choice}"));
            }
        }
        builder.finish_lenient()
    })
}

/// All live nodes of a document in document order.
fn all_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants_or_self(doc.root()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every non-root node's parent lists it among its children, and every
    /// child's parent is the node it was listed under.
    #[test]
    fn parent_child_links_are_consistent(doc in arb_document()) {
        for node in all_nodes(&doc) {
            for child in doc.children(node) {
                prop_assert_eq!(doc.parent(child), Some(node));
            }
            if let Some(parent) = doc.parent(node) {
                let children: Vec<NodeId> = doc.children(parent).collect();
                prop_assert!(children.contains(&node));
            } else {
                prop_assert_eq!(node, doc.root());
            }
        }
    }

    /// first_child / last_child / next_sibling / prev_sibling agree with the
    /// children iterator.
    #[test]
    fn sibling_links_agree_with_children_iterator(doc in arb_document()) {
        for node in all_nodes(&doc) {
            let children: Vec<NodeId> = doc.children(node).collect();
            prop_assert_eq!(doc.first_child(node), children.first().copied());
            prop_assert_eq!(doc.last_child(node), children.last().copied());
            for pair in children.windows(2) {
                prop_assert_eq!(doc.next_sibling(pair[0]), Some(pair[1]));
                prop_assert_eq!(doc.prev_sibling(pair[1]), Some(pair[0]));
            }
            if let Some(&first) = children.first() {
                prop_assert_eq!(doc.prev_sibling(first), None);
            }
            if let Some(&last) = children.last() {
                prop_assert_eq!(doc.next_sibling(last), None);
            }
        }
    }

    /// The descendants of a node are exactly the node's children plus their
    /// descendants (and the count matches).
    #[test]
    fn descendant_counts_decompose_over_children(doc in arb_document()) {
        for node in all_nodes(&doc) {
            let direct: usize = doc.children(node).count();
            let nested: usize = doc
                .children(node)
                .map(|c| doc.descendants(c).count())
                .sum();
            prop_assert_eq!(doc.descendants(node).count(), direct + nested);
        }
    }

    /// Following and preceding siblings partition the parent's other
    /// children.
    #[test]
    fn sibling_axes_partition_the_parents_children(doc in arb_document()) {
        for node in all_nodes(&doc) {
            let Some(parent) = doc.parent(node) else { continue };
            let mut preceding: Vec<NodeId> = doc.preceding_siblings(node).collect();
            preceding.reverse();
            let following: Vec<NodeId> = doc.following_siblings(node).collect();
            let mut reconstructed = preceding;
            reconstructed.push(node);
            reconstructed.extend(following);
            let children: Vec<NodeId> = doc.children(parent).collect();
            prop_assert_eq!(reconstructed, children);
        }
    }

    /// Ancestors of every node end at the document root and are consistent
    /// with repeated `parent` calls.
    #[test]
    fn ancestors_chain_to_the_root(doc in arb_document()) {
        for node in all_nodes(&doc) {
            let ancestors: Vec<NodeId> = doc.ancestors(node).collect();
            let mut walked = Vec::new();
            let mut current = node;
            while let Some(p) = doc.parent(current) {
                walked.push(p);
                current = p;
            }
            prop_assert_eq!(&ancestors, &walked);
            if node != doc.root() {
                prop_assert_eq!(ancestors.last().copied(), Some(doc.root()));
            }
        }
    }

    /// `sort_document_order` sorts pre-order traversal positions: sorting a
    /// shuffled copy of the descendants reproduces the iterator order, and
    /// sorting is idempotent.
    #[test]
    fn document_order_sorting_matches_preorder(doc in arb_document(), seed in any::<u64>()) {
        let order: Vec<NodeId> = all_nodes(&doc);
        let mut shuffled = order.clone();
        // Deterministic Fisher–Yates driven by the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut sorted = shuffled;
        doc.sort_document_order(&mut sorted);
        prop_assert_eq!(&sorted, &order);
        let mut again = sorted.clone();
        doc.sort_document_order(&mut again);
        prop_assert_eq!(again, sorted);
    }

    /// Serialize → parse preserves the structural hash of the root element
    /// and subtree equality.
    #[test]
    fn serialization_roundtrip_preserves_structure(doc in arb_document()) {
        let html = to_html(&doc);
        let reparsed = parse_html(&html).unwrap();
        let a = doc.root_element().unwrap();
        let b = reparsed.root_element().unwrap();
        prop_assert_eq!(structural_hash(&doc, a), structural_hash(&reparsed, b));
        prop_assert!(subtree_equal(&doc, a, &reparsed, b));
    }

    /// Parser → serializer → parser is a fixpoint that preserves document
    /// order, the tag index and all text content, for every [`ParseOptions`]
    /// variation.  This is the invariant the maintenance replay loop relies
    /// on: a wrapper verified against a re-parsed snapshot must see exactly
    /// the tree the original snapshot had.
    #[test]
    fn parse_serialize_parse_preserves_order_tags_and_text(doc in arb_document()) {
        let html = to_html(&doc);
        let variations = [
            ParseOptions::default(),
            ParseOptions { skip_whitespace_text: false, ..Default::default() },
            ParseOptions { lowercase_names: false, ..Default::default() },
            ParseOptions { decode_entities: false, ..Default::default() },
        ];
        // The generated documents use lowercase tags and entity-free text, so
        // every option variation must converge to the same tree (compact
        // serialization emits no inter-element whitespace for
        // `skip_whitespace_text` to disagree on).
        for options in variations {
            let reparsed = Document::parse_with(&html, options).unwrap();

            // Document order: the pre-order signature (tag names and text
            // payloads, in index order) is identical.
            let signature = |d: &Document| -> Vec<String> {
                d.descendants(d.root())
                    .map(|n| match d.tag_name(n) {
                        Some(t) => format!("<{t}>"),
                        None => d.text_content(n).unwrap_or_default().to_string(),
                    })
                    .collect()
            };
            prop_assert_eq!(signature(&doc), signature(&reparsed));

            // Tag index: same tags, same per-tag counts, and each tag list in
            // the same relative document order (checked via the pre-order
            // positions of the order index).
            for tag in ["html", "body", "div", "span", "section", "ul", "article", "a", "h2"] {
                let original = doc.elements_by_tag(tag);
                let round_tripped = reparsed.elements_by_tag(tag);
                prop_assert_eq!(original.len(), round_tripped.len(), "tag {} count", tag);
                let order = reparsed.order_index();
                let positions: Vec<u32> = round_tripped
                    .iter()
                    .map(|&n| order.position(n).expect("indexed"))
                    .collect();
                prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            }

            // Text content survives (string-value of the whole tree).
            prop_assert_eq!(
                doc.normalized_text(doc.root()),
                reparsed.normalized_text(reparsed.root())
            );

            // And the round trip is a fixpoint: serializing the re-parsed
            // tree reproduces the markup byte for byte.
            prop_assert_eq!(&to_html(&reparsed), &html);
        }

        // A pretty-printed serialization parses back to the same element
        // structure under the default (whitespace-skipping) options.
        let pretty = wi_dom::serializer::to_html_with(
            &doc,
            &wi_dom::SerializeOptions { pretty: true, indent: 2 },
        );
        let from_pretty = Document::parse(&pretty).unwrap();
        let tags = |d: &Document| -> Vec<String> {
            d.descendants(d.root())
                .filter_map(|n| d.tag_name(n).map(str::to_string))
                .collect()
        };
        prop_assert_eq!(tags(&doc), tags(&from_pretty));
    }

    /// Structural hashing is insensitive to node identity: cloning a subtree
    /// inside the same document yields an equal hash, and `subtree_equal`
    /// agrees.
    #[test]
    fn cloned_subtrees_hash_equal(doc in arb_document()) {
        let mut doc = doc;
        let body = doc.elements_by_tag("body")[0];
        // Pick a subject strictly below the body so appending the copy under
        // the body does not alter the subject's own subtree.
        let Some(subject) = doc.descendants(body).find(|&n| doc.is_element(n)) else {
            return Ok(());
        };
        let copy = doc.clone_subtree(subject, body).unwrap();
        prop_assert_eq!(
            structural_hash(&doc, subject),
            structural_hash(&doc, copy)
        );
        prop_assert!(subtree_equal(&doc, subject, &doc, copy));
    }

    /// Removing a subtree removes exactly its nodes from the live set and
    /// never corrupts the remaining links; a plain detach keeps the nodes
    /// allocated but unlinks them from the tree.
    #[test]
    fn remove_subtree_removes_exactly_the_subtree(doc in arb_document()) {
        let mut doc = doc;
        let body = doc.elements_by_tag("body")[0];
        let Some(victim) = doc.children(body).next() else { return Ok(()) };
        let subtree_size = doc.descendants_or_self(victim).count();
        let before = doc.len();
        doc.remove_subtree(victim).unwrap();
        prop_assert_eq!(doc.len(), before - subtree_size);
        prop_assert!(!doc.contains(victim));
        // The remaining tree is still consistent.
        for node in all_nodes(&doc) {
            for child in doc.children(node) {
                prop_assert_eq!(doc.parent(child), Some(node));
            }
        }
    }

    /// Detaching a subtree unlinks it from its parent but keeps it alive, so
    /// it can be re-attached elsewhere without loss.
    #[test]
    fn detach_and_reattach_preserve_the_subtree(doc in arb_document()) {
        let mut doc = doc;
        let body = doc.elements_by_tag("body")[0];
        let Some(victim) = doc.children(body).next() else { return Ok(()) };
        let hash_before = structural_hash(&doc, victim);
        let before = doc.len();
        doc.detach(victim).unwrap();
        // Still allocated, no longer reachable from the body.
        prop_assert!(doc.contains(victim));
        prop_assert_eq!(doc.len(), before);
        prop_assert!(doc.descendants(body).all(|n| n != victim));
        // Re-attach at the end of the body: the subtree is unchanged.
        doc.append_child(body, victim).unwrap();
        prop_assert_eq!(doc.parent(victim), Some(body));
        prop_assert_eq!(doc.last_child(body), Some(victim));
        prop_assert_eq!(structural_hash(&doc, victim), hash_before);
    }

    /// Attribute mutation is observable and reversible.
    #[test]
    fn attribute_roundtrip(doc in arb_document(), value in "[a-z]{1,12}") {
        let mut doc = doc;
        let Some(element) = doc
            .descendants(doc.root())
            .find(|&n| doc.is_element(n))
        else {
            return Ok(());
        };
        doc.set_attribute(element, "data-test", &value).unwrap();
        prop_assert_eq!(doc.attribute(element, "data-test"), Some(value.as_str()));
        let hash_with = structural_hash(&doc, element);
        let removed = doc.remove_attribute(element, "data-test").unwrap();
        prop_assert!(removed);
        prop_assert_eq!(doc.attribute(element, "data-test"), None);
        prop_assert_ne!(structural_hash(&doc, element), hash_with);
    }

    /// `normalized_text` never contains leading/trailing or doubled
    /// whitespace.
    #[test]
    fn normalized_text_is_normalized(doc in arb_document()) {
        for node in all_nodes(&doc) {
            let text = doc.normalized_text(node);
            prop_assert_eq!(text.trim(), text.as_str());
            prop_assert!(!text.contains("  "), "doubled whitespace in {text:?}");
        }
    }

    /// Every element reachable by `elements_by_tag` / `elements_by_class` /
    /// `element_by_id` really carries the requested property.
    #[test]
    fn lookup_helpers_agree_with_node_payloads(doc in arb_document()) {
        for tag in ["div", "li", "a"] {
            for node in doc.elements_by_tag(tag) {
                prop_assert_eq!(doc.tag_name(node), Some(tag));
            }
        }
        for node in all_nodes(&doc) {
            if let Some(id) = doc.attribute(node, "id") {
                let found = doc.element_by_id(id);
                prop_assert_eq!(found, Some(node), "id {} not resolved to its node", id);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Order-index properties: the indexed document-order operations must agree
// with the structural (path-walking) reference implementations under random
// mutation sequences, and the epoch invalidation must never serve a stale
// index.
// ---------------------------------------------------------------------------

/// A random edit applied to a random live node (indices are taken modulo the
/// current live node / element counts, so every op is applicable to every
/// document).
#[derive(Debug, Clone)]
enum Edit {
    AppendNew(usize),
    PrependNew(usize),
    InsertBefore(usize),
    InsertAfter(usize),
    Detach(usize),
    RemoveSubtree(usize),
    Rename(usize),
    SetAttribute(usize),
    Wrap(usize),
    Unwrap(usize),
    CloneSubtree(usize, usize),
}

fn arb_edits() -> impl Strategy<Value = Vec<Edit>> {
    let edit = prop_oneof![
        any::<usize>().prop_map(Edit::AppendNew),
        any::<usize>().prop_map(Edit::PrependNew),
        any::<usize>().prop_map(Edit::InsertBefore),
        any::<usize>().prop_map(Edit::InsertAfter),
        any::<usize>().prop_map(Edit::Detach),
        any::<usize>().prop_map(Edit::RemoveSubtree),
        any::<usize>().prop_map(Edit::Rename),
        any::<usize>().prop_map(Edit::SetAttribute),
        any::<usize>().prop_map(Edit::Wrap),
        any::<usize>().prop_map(Edit::Unwrap),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Edit::CloneSubtree(a, b)),
    ];
    prop::collection::vec(edit, 1..12)
}

/// Picks a live non-root node by index (or `None` on an empty body).
fn pick(doc: &Document, i: usize) -> Option<NodeId> {
    let nodes: Vec<NodeId> = doc.descendants(doc.root()).collect();
    if nodes.len() <= 2 {
        return None; // keep html/body intact so edits stay applicable
    }
    Some(nodes[2 + i % (nodes.len() - 2)])
}

/// Applies one edit; returns whether the document was touched at all.
fn apply_edit(doc: &mut Document, edit: &Edit) -> bool {
    match edit {
        Edit::AppendNew(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            let fresh = doc.create_element("ins", vec![]);
            doc.append_child(target, fresh).is_ok()
        }
        Edit::PrependNew(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            let fresh = doc.create_element("ins", vec![]);
            doc.prepend_child(target, fresh).is_ok()
        }
        Edit::InsertBefore(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            let fresh = doc.create_element("ins", vec![]);
            doc.insert_before(target, fresh).is_ok()
        }
        Edit::InsertAfter(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            let fresh = doc.create_element("ins", vec![]);
            doc.insert_after(target, fresh).is_ok()
        }
        Edit::Detach(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.detach(target).is_ok()
        }
        Edit::RemoveSubtree(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.remove_subtree(target).is_ok()
        }
        Edit::Rename(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.is_element(target) && doc.rename_element(target, "ren").is_ok()
        }
        Edit::SetAttribute(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.is_element(target) && doc.set_attribute(target, "data-e", "1").is_ok()
        }
        Edit::Wrap(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.wrap_in_element(target, "wrap", vec![]).is_ok()
        }
        Edit::Unwrap(i) => {
            let Some(target) = pick(doc, *i) else {
                return false;
            };
            doc.is_element(target) && doc.unwrap_element(target).is_ok()
        }
        Edit::CloneSubtree(i, j) => {
            let (Some(src), Some(dst)) = (pick(doc, *i), pick(doc, *j)) else {
                return false;
            };
            doc.clone_subtree(src, dst).is_ok()
        }
    }
}

/// Reference `following` axis: structural walk, as implemented before the
/// order index existed.
fn following_reference(doc: &Document, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    for anc in std::iter::once(id).chain(doc.ancestors(id)) {
        for sib in doc.following_siblings(anc) {
            out.extend(doc.descendants_or_self(sib));
        }
    }
    // The pre-index implementation sorted by raw id, which only coincides
    // with document order on unmutated documents; sort structurally instead.
    out.sort_by(|&a, &b| doc.document_order_unindexed(a, b));
    out
}

/// Reference `preceding` axis: structural walk.
fn preceding_reference(doc: &Document, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    for anc in std::iter::once(id).chain(doc.ancestors(id)) {
        for sib in doc.preceding_siblings(anc) {
            out.extend(doc.descendants_or_self(sib));
        }
    }
    out.sort_by(|&a, &b| doc.document_order_unindexed(a, b));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every edit of a random mutation sequence, the indexed
    /// `document_order` / `sort_document_order` / `is_ancestor_of` / `depth`
    /// / `subtree_size` and the `following`/`preceding` range scans agree
    /// with the structural reference implementations on all live nodes.
    #[test]
    fn indexed_order_agrees_with_reference_under_mutations(
        doc in arb_document(),
        edits in arb_edits(),
    ) {
        let mut doc = doc;
        for edit in &edits {
            apply_edit(&mut doc, edit);

            let live = all_nodes(&doc);
            // document_order agrees with the path-based comparator.
            for (k, &a) in live.iter().enumerate() {
                let b = live[(k * 7 + 3) % live.len()];
                prop_assert_eq!(
                    doc.document_order(a, b),
                    doc.document_order_unindexed(a, b),
                    "order mismatch for {} vs {} after {:?}", a, b, edit
                );
            }
            // Sorting a reversed copy reproduces pre-order.
            let mut shuffled: Vec<NodeId> = live.iter().rev().copied().collect();
            doc.sort_document_order(&mut shuffled);
            prop_assert_eq!(&shuffled, &live);
            // Ancestor tests, depth and subtree size agree with walks.
            for (k, &n) in live.iter().enumerate() {
                let m = live[(k * 5 + 1) % live.len()];
                let walked = doc.ancestors(n).any(|a| a == m);
                prop_assert_eq!(doc.is_ancestor_of(m, n), walked);
                prop_assert_eq!(doc.depth(n), doc.ancestors(n).count());
                prop_assert_eq!(doc.subtree_size(n), doc.descendants_or_self(n).count());
            }
            // following / preceding range scans agree with the tree walks.
            for &n in live.iter().take(8) {
                prop_assert_eq!(doc.following(n), following_reference(&doc, n));
                prop_assert_eq!(doc.preceding(n), preceding_reference(&doc, n));
            }
            // Tag index agrees with a linear scan.
            for tag in ["div", "span", "ins", "ren", "wrap"] {
                let scan: Vec<NodeId> = doc
                    .descendants(doc.root())
                    .filter(|&n| doc.tag_name(n) == Some(tag))
                    .collect();
                prop_assert_eq!(doc.elements_by_tag(tag), scan);
            }
        }
    }

    /// Interning is unobservable: after every edit of a random mutation
    /// sequence, every symbol-based accessor agrees with its string-based
    /// counterpart, needles the document has never seen resolve to `None`,
    /// and a serialize → parse round trip (which builds a *fresh* interner
    /// with different numbering) is structurally identical — symbols never
    /// leak into equality.
    #[test]
    fn interning_is_observably_identical_under_mutations(
        doc in arb_document(),
        edits in arb_edits(),
    ) {
        let mut doc = doc;
        for edit in &edits {
            apply_edit(&mut doc, edit);

            for node in all_nodes(&doc) {
                // Tag symbols resolve to the tag string (and only elements
                // carry one).
                match doc.tag_name(node) {
                    Some(tag) => {
                        let sym = doc.tag_sym(node).expect("element has a tag symbol");
                        prop_assert_eq!(doc.resolve_sym(sym), tag);
                        prop_assert_eq!(doc.sym(tag), Some(sym));
                    }
                    None => prop_assert_eq!(doc.tag_sym(node), None),
                }
                // Attribute symbols are parallel to the attribute list and
                // resolve to the same strings.
                let attrs = doc.attributes(node);
                let syms = doc.attr_syms(node);
                prop_assert_eq!(attrs.len(), syms.len());
                for (a, &(name_sym, value_sym)) in attrs.iter().zip(syms) {
                    prop_assert_eq!(doc.resolve_sym(name_sym), a.name.as_str());
                    prop_assert_eq!(doc.resolve_sym(value_sym), a.value.as_str());
                }
                // Symbol-based lookups agree with the string-based ones.
                for name in ["id", "class", "data-e", "href"] {
                    let by_string = doc.attribute(node, name);
                    let by_sym = doc.sym(name).and_then(|s| doc.attribute_by_sym(node, s));
                    prop_assert_eq!(by_string, by_sym);
                    prop_assert_eq!(
                        doc.has_attribute(node, name),
                        doc.sym(name).is_some_and(|s| doc.has_attribute_sym(node, s))
                    );
                }
            }

            // A needle the document has never seen misses the interner —
            // the instant "no match" the evaluator relies on.
            prop_assert_eq!(doc.sym("never-present-needle"), None);
            prop_assert!(doc.elements_by_tag("never-present-needle").is_empty());

            // Copy the tree into a *fresh* document: its interner assigns
            // different numbers to the same strings, yet the copy is
            // structurally identical — equality and hashing are
            // string-based, symbols never leak into them.  (A serializer
            // round trip would also merge adjacent text nodes created by
            // unwrap edits, so the import is the precise cross-interner
            // probe.)
            if let Some(a) = doc.root_element() {
                let mut fresh = Document::new();
                let root = fresh.root();
                let b = fresh.import_subtree(&doc, a, root).unwrap();
                prop_assert_eq!(structural_hash(&doc, a), structural_hash(&fresh, b));
                prop_assert!(subtree_equal(&doc, a, &fresh, b));
            }
        }

        // Cross-document import re-interns through the arena allocator: the
        // copied subtree's symbols belong to the destination document.
        let other = parse_html(r#"<html><body><p class="imported">x</p></body></html>"#).unwrap();
        let src = other.elements_by_tag("p")[0];
        let body = doc.elements_by_tag("body")[0];
        let copied = doc.import_subtree(&other, src, body).unwrap();
        prop_assert_eq!(doc.attribute(copied, "class"), Some("imported"));
        let class_sym = doc.sym("class").expect("interned on import");
        prop_assert_eq!(doc.attribute_by_sym(copied, class_sym), Some("imported"));
        prop_assert_eq!(doc.tag_sym(copied).map(|s| doc.resolve_sym(s)), Some("p"));
    }

    /// Every mutating operation bumps the epoch, and a queried index always
    /// carries the current epoch — the invalidation can never serve a stale
    /// index.
    #[test]
    fn every_edit_bumps_the_epoch_and_indexes_are_never_stale(
        doc in arb_document(),
        edits in arb_edits(),
    ) {
        let mut doc = doc;
        // Force-build both indexes so that staleness would be observable.
        let _ = doc.order_index();
        let _ = doc.tag_index();
        for edit in &edits {
            let before = doc.order_epoch();
            let touched = apply_edit(&mut doc, edit);
            if touched {
                prop_assert!(
                    doc.order_epoch() > before,
                    "edit {:?} did not bump the epoch", edit
                );
            }
            prop_assert_eq!(doc.order_index().epoch(), doc.order_epoch());
            prop_assert_eq!(doc.tag_index().epoch(), doc.order_epoch());
        }
    }
}
