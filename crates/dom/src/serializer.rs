//! Serialization of documents back to HTML markup.

use crate::document::{Document, DOCUMENT_ROOT_TAG};
use crate::node::{NodeData, NodeId};
use crate::parser::VOID_ELEMENTS;

/// Options controlling HTML serialization.
#[derive(Debug, Clone)]
pub struct SerializeOptions {
    /// Pretty-print with indentation (default: false — compact output).
    pub pretty: bool,
    /// Indentation width when pretty-printing.
    pub indent: usize,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions {
            pretty: false,
            indent: 2,
        }
    }
}

/// Serializes the whole document to HTML using default options.
pub fn to_html(doc: &Document) -> String {
    to_html_with(doc, &SerializeOptions::default())
}

/// Serializes the whole document to HTML.
pub fn to_html_with(doc: &Document, options: &SerializeOptions) -> String {
    let mut out = String::new();
    for child in doc.children(doc.root()) {
        serialize_node(doc, child, options, 0, &mut out);
    }
    out
}

/// Serializes a single subtree to HTML.
pub fn subtree_to_html(doc: &Document, id: NodeId, options: &SerializeOptions) -> String {
    let mut out = String::new();
    serialize_node(doc, id, options, 0, &mut out);
    out
}

fn serialize_node(
    doc: &Document,
    id: NodeId,
    options: &SerializeOptions,
    depth: usize,
    out: &mut String,
) {
    match doc.data(id) {
        NodeData::Text(t) => {
            if options.pretty {
                indent(out, depth, options.indent);
            }
            out.push_str(&escape_text(t));
            if options.pretty {
                out.push('\n');
            }
        }
        NodeData::Element { tag, attributes } => {
            if tag == DOCUMENT_ROOT_TAG {
                for child in doc.children(id) {
                    serialize_node(doc, child, options, depth, out);
                }
                return;
            }
            if options.pretty {
                indent(out, depth, options.indent);
            }
            out.push('<');
            out.push_str(tag);
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                out.push_str(&escape_attr(&a.value));
                out.push('"');
            }
            let is_void = VOID_ELEMENTS.contains(&tag.as_str());
            if is_void {
                out.push('>');
                if options.pretty {
                    out.push('\n');
                }
                return;
            }
            out.push('>');
            let has_children = doc.first_child(id).is_some();
            if options.pretty && has_children {
                out.push('\n');
            }
            for child in doc.children(id) {
                serialize_node(doc, child, options, depth + 1, out);
            }
            if options.pretty && has_children {
                indent(out, depth, options.indent);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
            if options.pretty {
                out.push('\n');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize, width: usize) {
    for _ in 0..depth * width {
        out.push(' ');
    }
}

/// Escapes text node content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{el, text};
    use crate::parser::parse_html;

    #[test]
    fn serializes_compact_html() {
        let doc = el("div")
            .attr("id", "a")
            .child(el("span").text_child("x & y"))
            .child(el("img").attr("src", "p.png"))
            .into_document();
        let html = to_html(&doc);
        assert_eq!(
            html,
            r#"<div id="a"><span>x &amp; y</span><img src="p.png"></div>"#
        );
    }

    #[test]
    fn escapes_attributes() {
        let doc = el("a").attr("title", "say \"hi\" & <go>").into_document();
        let html = to_html(&doc);
        assert!(html.contains("say &quot;hi&quot; &amp; &lt;go>"));
    }

    #[test]
    fn roundtrip_parse_serialize_parse() {
        let original = r#"<html><head><title>T</title></head><body><div id="main" class="c"><ul><li>one</li><li>two</li></ul></div></body></html>"#;
        let doc = parse_html(original).unwrap();
        let html = to_html(&doc);
        let doc2 = parse_html(&html).unwrap();
        // Structural equivalence: same tags in the same order, same attributes.
        let tags1: Vec<_> = doc
            .descendants(doc.root())
            .filter_map(|n| doc.tag_name(n).map(String::from))
            .collect();
        let tags2: Vec<_> = doc2
            .descendants(doc2.root())
            .filter_map(|n| doc2.tag_name(n).map(String::from))
            .collect();
        assert_eq!(tags1, tags2);
        assert_eq!(to_html(&doc2), html);
    }

    #[test]
    fn pretty_printing_indents() {
        let doc = el("div").child(el("p").text_child("x")).into_document();
        let html = to_html_with(
            &doc,
            &SerializeOptions {
                pretty: true,
                indent: 2,
            },
        );
        assert!(html.contains("\n  <p>"));
    }

    #[test]
    fn subtree_serialization() {
        let doc = el("div")
            .child(el("span").attr("class", "x").text_child("inner"))
            .into_document();
        let span = doc.elements_by_tag("span")[0];
        let html = subtree_to_html(&doc, span, &SerializeOptions::default());
        assert_eq!(html, r#"<span class="x">inner</span>"#);
    }

    #[test]
    fn text_helper_escapes() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        let _ = text("x"); // silence unused import in non-test builds
    }
}
