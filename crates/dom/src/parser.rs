//! A small, tolerant HTML parser.
//!
//! The parser is intentionally forgiving — real-world archive snapshots (which
//! the paper's evaluation is built on) are frequently broken, and the
//! synthetic archive in `wi-webgen` emulates that by serving malformed
//! snapshots from time to time.  The parser therefore follows the usual
//! "tag soup" conventions:
//!
//! * unknown or unclosed elements are closed implicitly at end of input,
//! * void elements (`<img>`, `<br>`, …) never take children,
//! * stray end tags are ignored,
//! * `<li>`, `<p>`, `<td>`, `<tr>`, `<option>` auto-close a preceding sibling
//!   of the same kind,
//! * comments, doctypes, and processing instructions are skipped,
//! * `<script>` and `<style>` contents are treated as raw text.
//!
//! It is not a full HTML5 tree construction algorithm, but it handles the
//! documents produced by [`crate::serializer::to_html`] (round-trip) and the
//! kind of markup found on template-driven sites.

use crate::builder::DocumentBuilder;
use crate::document::Document;
use crate::error::{DomError, Result};

/// Options controlling HTML parsing.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Lower-case all tag and attribute names (default: true).
    pub lowercase_names: bool,
    /// If `true`, whitespace-only text nodes between elements are dropped
    /// (default: true).  Keeping them around only inflates positional indices
    /// without changing any of the paper's semantics.
    pub skip_whitespace_text: bool,
    /// Decode the basic named character entities (`&amp;` etc.) and numeric
    /// entities (default: true).
    pub decode_entities: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            lowercase_names: true,
            skip_whitespace_text: true,
            decode_entities: true,
        }
    }
}

/// Tags that never have children ("void elements" in HTML).
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Tags whose open tag implicitly closes a preceding unclosed element of the
/// same tag (a small subset of HTML's implied end tags).
const AUTO_CLOSE_SAME: &[&str] = &["li", "p", "td", "th", "tr", "option", "dt", "dd"];

/// Tags with raw-text content.
const RAW_TEXT: &[&str] = &["script", "style"];

/// Parses HTML text into a [`Document`] using default options.
pub fn parse_html(input: &str) -> Result<Document> {
    Parser::new(input, ParseOptions::default()).parse()
}

/// Parses HTML text with explicit [`ParseOptions`].
pub fn parse_html_with(input: &str, options: ParseOptions) -> Result<Document> {
    Parser::new(input, options).parse()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
    builder: DocumentBuilder,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            options,
            builder: DocumentBuilder::new(),
        }
    }

    fn parse(mut self) -> Result<Document> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.parse_markup()?;
            } else {
                self.parse_text();
            }
        }
        Ok(self.builder.finish_lenient())
    }

    fn error(&self, message: impl Into<String>) -> DomError {
        DomError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].len() >= prefix.len()
            && self.input[self.pos..self.pos + prefix.len()].eq_ignore_ascii_case(prefix)
    }

    fn parse_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        let decoded = if self.options.decode_entities {
            decode_entities(raw)
        } else {
            raw.to_string()
        };
        if self.options.skip_whitespace_text && decoded.trim().is_empty() {
            return;
        }
        self.builder.text(&decoded);
    }

    fn parse_markup(&mut self) -> Result<()> {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        match self.peek(1) {
            Some(b'!') => {
                if self.starts_with("<!--") {
                    self.skip_comment();
                } else {
                    self.skip_until(b'>');
                }
                Ok(())
            }
            Some(b'?') => {
                self.skip_until(b'>');
                Ok(())
            }
            Some(b'/') => {
                self.parse_end_tag();
                Ok(())
            }
            Some(c) if c.is_ascii_alphabetic() => self.parse_start_tag(),
            _ => {
                // A bare '<' in text; treat it literally.
                self.builder.text("<");
                self.pos += 1;
                Ok(())
            }
        }
    }

    fn skip_comment(&mut self) {
        // self.pos is at "<!--"
        if let Some(end) = self.input[self.pos..].find("-->") {
            self.pos += end + 3;
        } else {
            self.pos = self.bytes.len();
        }
    }

    fn skip_until(&mut self, byte: u8) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != byte {
            self.pos += 1;
        }
        if self.pos < self.bytes.len() {
            self.pos += 1;
        }
    }

    fn parse_end_tag(&mut self) {
        self.pos += 2; // consume "</"
        let name_start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'-')
        {
            self.pos += 1;
        }
        let mut name = self.input[name_start..self.pos].to_string();
        if self.options.lowercase_names {
            name.make_ascii_lowercase();
        }
        self.skip_until(b'>');
        // Ignore stray end tags for elements that are not open.
        if self.builder.has_open(&name) {
            self.builder.close_until(&name);
        }
    }

    fn parse_start_tag(&mut self) -> Result<()> {
        self.pos += 1; // consume '<'
        let name_start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'-')
        {
            self.pos += 1;
        }
        if self.pos == name_start {
            return Err(self.error("expected tag name after '<'"));
        }
        let mut name = self.input[name_start..self.pos].to_string();
        if self.options.lowercase_names {
            name.make_ascii_lowercase();
        }

        let mut attributes: Vec<(String, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.peek(0) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek(0) == Some(b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some((n, v)) = self.parse_attribute() {
                        attributes.push((n, v));
                    } else {
                        // Could not make progress: skip one byte to avoid an
                        // infinite loop on malformed input.
                        self.pos += 1;
                    }
                }
            }
        }

        // Implied end tags: <li> after <li>, <p> after <p>, etc.
        if AUTO_CLOSE_SAME.contains(&name.as_str()) && self.builder.has_open(&name) {
            // Only auto-close if the open element of the same name is the
            // innermost open element of that name at the same list level; the
            // simple heuristic of closing up to it is what tag-soup parsers do.
            self.builder.close_until(&name);
        }

        let attr_refs: Vec<(&str, &str)> = attributes
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let is_void = VOID_ELEMENTS.contains(&name.as_str());
        if is_void || self_closing {
            self.builder.void_element(&name, &attr_refs);
            return Ok(());
        }

        self.builder.open_element(&name, &attr_refs);

        if RAW_TEXT.contains(&name.as_str()) {
            self.parse_raw_text(&name);
        }
        Ok(())
    }

    fn parse_raw_text(&mut self, tag: &str) {
        let close = format!("</{tag}");
        let rest = &self.input[self.pos..];
        let end = rest.to_ascii_lowercase().find(&close).unwrap_or(rest.len());
        let content = &rest[..end];
        if !content.trim().is_empty() {
            self.builder.text(content);
        }
        self.pos += end;
        if self.pos < self.bytes.len() {
            // consume the end tag.
            self.skip_until(b'>');
        }
        self.builder.close_until(tag);
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn parse_attribute(&mut self) -> Option<(String, String)> {
        let name_start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() || b == b'=' || b == b'>' || b == b'/' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == name_start {
            return None;
        }
        let mut name = self.input[name_start..self.pos].to_string();
        if self.options.lowercase_names {
            name.make_ascii_lowercase();
        }
        self.skip_whitespace();
        if self.peek(0) != Some(b'=') {
            return Some((name, String::new()));
        }
        self.pos += 1; // consume '='
        self.skip_whitespace();
        let value = match self.peek(0) {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let v = self.input[start..self.pos].to_string();
                if self.pos < self.bytes.len() {
                    self.pos += 1; // closing quote
                }
                v
            }
            _ => {
                let start = self.pos;
                while self.pos < self.bytes.len() {
                    let b = self.bytes[self.pos];
                    if b.is_ascii_whitespace() || b == b'>' {
                        break;
                    }
                    self.pos += 1;
                }
                self.input[start..self.pos].to_string()
            }
        };
        let value = if self.options.decode_entities {
            decode_entities(&value)
        } else {
            value
        };
        Some((name, value))
    }
}

/// Decodes the most common HTML character entities.
///
/// Supports the five XML entities, `&nbsp;`, and decimal/hexadecimal numeric
/// character references.  Unknown entities are left untouched.
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let mut chars = input.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Find the terminating ';' within a small window.
        let rest = &input[i + 1..];
        let semi = rest.char_indices().take(12).find(|&(_, ch)| ch == ';');
        let Some((len, _)) = semi else {
            out.push('&');
            continue;
        };
        let entity = &rest[..len];
        let replacement: Option<String> = match entity {
            "amp" => Some("&".into()),
            "lt" => Some("<".into()),
            "gt" => Some(">".into()),
            "quot" => Some("\"".into()),
            "apos" => Some("'".into()),
            "nbsp" => Some(" ".into()),
            _ if entity.starts_with('#') => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else {
                    entity[1..].parse::<u32>().ok()
                };
                code.and_then(char::from_u32).map(|c| c.to_string())
            }
            _ => None,
        };
        match replacement {
            Some(r) => {
                out.push_str(&r);
                // Skip the entity body and the ';'.
                for _ in 0..=len {
                    chars.next();
                }
            }
            None => out.push('&'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse_html(
            r#"<html><head><title>T</title></head>
               <body><div id="main" class="content">
               <p>Hello <b>world</b></p></div></body></html>"#,
        )
        .unwrap();
        assert_eq!(doc.elements_by_tag("html").len(), 1);
        let div = doc.element_by_id("main").unwrap();
        assert_eq!(doc.attribute(div, "class"), Some("content"));
        assert_eq!(doc.normalized_text(div), "Hello world");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_html("<body><img src='a.png'><p>after</p></body>").unwrap();
        let img = doc.elements_by_tag("img")[0];
        assert_eq!(doc.children(img).count(), 0);
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.tag_name(doc.parent(p).unwrap()), Some("body"));
    }

    #[test]
    fn self_closing_syntax() {
        let doc = parse_html("<div><br/><span/>text</div>").unwrap();
        assert_eq!(doc.elements_by_tag("br").len(), 1);
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(doc.children(span).count(), 0);
    }

    #[test]
    fn unclosed_elements_close_at_eof() {
        let doc = parse_html("<html><body><div><p>unclosed").unwrap();
        assert_eq!(doc.elements_by_tag("p").len(), 1);
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.normalized_text(p), "unclosed");
    }

    #[test]
    fn stray_end_tags_are_ignored() {
        let doc = parse_html("<div></span><p>x</p></div>").unwrap();
        assert_eq!(doc.elements_by_tag("p").len(), 1);
        assert_eq!(doc.elements_by_tag("span").len(), 0);
    }

    #[test]
    fn li_auto_close() {
        let doc = parse_html("<ul><li>one<li>two<li>three</ul>").unwrap();
        let ul = doc.elements_by_tag("ul")[0];
        let lis: Vec<_> = doc.element_children(ul).collect();
        assert_eq!(lis.len(), 3);
        assert_eq!(doc.normalized_text(lis[1]), "two");
        // none of the li are nested inside each other
        for &li in &lis {
            assert_eq!(doc.parent(li), Some(ul));
        }
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let doc =
            parse_html("<!DOCTYPE html><!-- a comment --><html><body>x</body></html>").unwrap();
        assert_eq!(doc.elements_by_tag("html").len(), 1);
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.normalized_text(body), "x");
    }

    #[test]
    fn script_content_is_raw_text() {
        let doc = parse_html(
            "<body><script>if (a < b) { document.write('<div>'); }</script><p>y</p></body>",
        )
        .unwrap();
        // The '<div>' inside the script must not create an element.
        assert_eq!(doc.elements_by_tag("div").len(), 0);
        assert_eq!(doc.elements_by_tag("p").len(), 1);
        let script = doc.elements_by_tag("script")[0];
        assert!(doc.text_value(script).contains("document.write"));
    }

    #[test]
    fn attributes_quoted_unquoted_and_bare() {
        let doc = parse_html(r#"<input type=text name="q" disabled value='go'>"#).unwrap();
        let input = doc.elements_by_tag("input")[0];
        assert_eq!(doc.attribute(input, "type"), Some("text"));
        assert_eq!(doc.attribute(input, "name"), Some("q"));
        assert_eq!(doc.attribute(input, "value"), Some("go"));
        assert_eq!(doc.attribute(input, "disabled"), Some(""));
    }

    #[test]
    fn entities_are_decoded() {
        let doc = parse_html("<p title=\"a &amp; b\">x &lt; y &#65; &#x42; &nbsp;z &unknown;</p>")
            .unwrap();
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.attribute(p, "title"), Some("a & b"));
        let t = doc.text_value(p);
        assert!(t.contains("x < y A B"));
        assert!(t.contains("&unknown;"));
    }

    #[test]
    fn uppercase_names_are_lowered() {
        let doc = parse_html("<DIV CLASS='X'><SPAN>t</SPAN></DIV>").unwrap();
        assert_eq!(doc.elements_by_tag("div").len(), 1);
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.attribute(div, "class"), Some("X"));
    }

    #[test]
    fn whitespace_text_skipped_by_default_kept_on_request() {
        let html = "<div>\n  <p>a</p>\n  </div>";
        let doc = parse_html(html).unwrap();
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.children(div).count(), 1);

        let opts = ParseOptions {
            skip_whitespace_text: false,
            ..Default::default()
        };
        let doc2 = parse_html_with(html, opts).unwrap();
        let div2 = doc2.elements_by_tag("div")[0];
        assert_eq!(doc2.children(div2).count(), 3);
    }

    #[test]
    fn empty_and_text_only_inputs() {
        let doc = parse_html("").unwrap();
        assert!(doc.is_empty());
        let doc = parse_html("just text, no tags").unwrap();
        assert_eq!(doc.normalized_text(doc.root()), "just text, no tags");
    }

    #[test]
    fn bare_less_than_in_text() {
        let doc = parse_html("<p>1 < 2</p>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.normalized_text(p), "1 < 2");
    }

    #[test]
    fn decode_entities_unit() {
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("no entities"), "no entities");
        assert_eq!(decode_entities("&#77;&#x4d;"), "MM");
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn table_auto_close() {
        let doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>").unwrap();
        assert_eq!(doc.elements_by_tag("tr").len(), 2);
        assert_eq!(doc.elements_by_tag("td").len(), 3);
    }
}
