//! Lazily built attribute census index.
//!
//! # Why
//!
//! The maintenance layer interrogates a snapshot's attributes in two ways,
//! both O(document) as naive walks:
//!
//! * the *carrier census* — how many elements carry `name="value"` — is
//!   probed per anchor on every verification and every last-known-good
//!   capture, and
//! * the *value census* — the set of every attribute value on the page — is
//!   materialised (with one `String` allocation per distinct value) on every
//!   healthy capture, i.e. once per healthy epoch.
//!
//! A 300-node snapshot carries ~150 attributes with ~100 distinct values;
//! rebuilding the `BTreeSet<String>` census dominates the capture cost and
//! dwarfs the actual verification work.  The [`AttrIndex`] folds both
//! censuses into one symbol-driven pass per document: carrier counts become
//! one integer-keyed hash probe, and the value census is built once and
//! shared behind an [`Arc`], so every capture of the same document clones a
//! refcount instead of re-walking the tree.
//!
//! # Invalidation contract
//!
//! Identical to the order/tag indexes (see [`crate::order`]): built on first
//! use, cached behind a `OnceLock`, dropped by `Document::invalidate_indexes`
//! on every mutation.  The recorded [`epoch`](AttrIndex::epoch) proves
//! freshness.  Symbols come from the document's own interner and never
//! outlive it (see [`crate::intern`]).

use crate::document::Document;
use crate::intern::Sym;
use crate::order::OrderIndex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Attribute censuses of a [`Document`], keyed by interned symbols.
///
/// Built lazily by [`Document::attr_index`]; see the
/// [module documentation](self) for the invalidation contract.
#[derive(Debug, Clone)]
pub struct AttrIndex {
    epoch: u64,
    /// `(name, value) → carriers`: the number of in-tree nodes (including
    /// the synthetic root) whose *first* attribute named `name` — mirroring
    /// [`Document::attribute`] shadowing — has value `value`.
    carriers: HashMap<(Sym, Sym), u32>,
    /// Every distinct attribute value in the document, sorted.  Shared so
    /// that captures are refcount bumps, not set rebuilds.
    values: Arc<BTreeSet<String>>,
}

impl AttrIndex {
    pub(crate) fn build(doc: &Document, order: &OrderIndex) -> AttrIndex {
        let mut carriers: HashMap<(Sym, Sym), u32> = HashMap::new();
        let mut values = BTreeSet::new();
        // Interning dedupes, so tracking seen value *symbols* dodges both the
        // set probe and the `String` allocation for every repeated value
        // (class names and shared hrefs repeat heavily).
        let mut seen = vec![false; doc.interner().len()];
        for &id in order.nodes_in_order() {
            let attrs = doc.attr_syms(id);
            for (i, &(name, value)) in attrs.iter().enumerate() {
                if !seen[value.index()] {
                    seen[value.index()] = true;
                    values.insert(doc.resolve_sym(value).to_string());
                }
                // Only the first attribute of a given name is visible through
                // `Document::attribute`; shadowed duplicates carry nothing.
                if attrs[..i].iter().all(|&(n, _)| n != name) {
                    *carriers.entry((name, value)).or_insert(0) += 1;
                }
            }
        }
        AttrIndex {
            epoch: order.epoch(),
            carriers,
            values: Arc::new(values),
        }
    }

    /// The document epoch this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of in-tree nodes whose visible attribute `name` equals
    /// `value`, root included.  Symbols must come from this document's
    /// interner (string entry points live on [`Document`]).
    pub fn carrier_count_syms(&self, name: Sym, value: Sym) -> usize {
        self.carriers
            .get(&(name, value))
            .map(|&c| c as usize)
            .unwrap_or(0)
    }

    /// The shared value census: every distinct attribute value, sorted.
    pub fn values(&self) -> &Arc<BTreeSet<String>> {
        &self.values
    }

    /// Number of distinct `(name, value)` carrier keys in the document.
    pub fn carrier_key_count(&self) -> usize {
        self.carriers.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::el;
    use crate::node::Attribute;
    use crate::Document;

    fn attr(name: &str, value: &str) -> Attribute {
        Attribute {
            name: name.to_string(),
            value: value.to_string(),
        }
    }

    fn sample() -> Document {
        el("html")
            .child(
                el("body")
                    .child(
                        el("div")
                            .attr("class", "row")
                            .child(el("span").attr("class", "cell").text_child("a")),
                    )
                    .child(el("div").attr("class", "row").attr("id", "x")),
            )
            .into_document()
    }

    #[test]
    fn carrier_counts_match_linear_scan() {
        let doc = sample();
        let scan = |name: &str, value: &str| {
            doc.descendants_or_self(doc.root())
                .filter(|&n| doc.attribute(n, name) == Some(value))
                .count()
        };
        for (name, value) in [
            ("class", "row"),
            ("class", "cell"),
            ("id", "x"),
            ("class", "absent"),
            ("absent", "row"),
        ] {
            assert_eq!(
                doc.carrier_count(name, value),
                scan(name, value),
                "{name}={value}"
            );
        }
    }

    #[test]
    fn value_census_matches_walked_set() {
        let doc = sample();
        let mut expected = std::collections::BTreeSet::new();
        for n in doc.descendants_or_self(doc.root()) {
            for a in doc.attributes(n) {
                expected.insert(a.value.clone());
            }
        }
        assert_eq!(**doc.attribute_value_census(), expected);
        // Repeated calls share the same allocation.
        assert!(std::sync::Arc::ptr_eq(
            doc.attribute_value_census(),
            doc.attribute_value_census()
        ));
    }

    #[test]
    fn shadowed_duplicate_names_follow_first_wins() {
        let mut doc = Document::new();
        let e = doc.create_element("div", vec![attr("class", "first"), attr("class", "second")]);
        doc.append_child(doc.root(), e).unwrap();
        // `Document::attribute` sees only the first value …
        assert_eq!(doc.carrier_count("class", "first"), 1);
        assert_eq!(doc.carrier_count("class", "second"), 0);
        // … but the value census records every value present in the markup.
        assert!(doc.attribute_value_census().contains("first"));
        assert!(doc.attribute_value_census().contains("second"));
    }

    #[test]
    fn index_invalidates_on_mutation() {
        let mut doc = sample();
        let before = doc.attr_index().epoch();
        assert_eq!(doc.carrier_count("id", "x"), 1);
        let div = doc.elements_by_tag("div")[1];
        doc.set_attribute(div, "id", "y").unwrap();
        assert!(doc.attr_index().epoch() > before);
        assert_eq!(doc.carrier_count("id", "x"), 0);
        assert_eq!(doc.carrier_count("id", "y"), 1);
        assert!(doc.attribute_value_census().contains("y"));
    }
}
