//! # wi-dom — DOM tree substrate for wrapper induction
//!
//! This crate provides the document model on which every other crate of the
//! workspace operates.  It is a deliberately small, self-contained re-creation
//! of the parts of the HTML/XML data model that the SIGMOD 2016 paper
//! *Robust and Noise Resistant Wrapper Induction* relies on:
//!
//! * an **arena-based tree** of element and text nodes with attributes
//!   ([`Document`], [`NodeId`]),
//! * O(1) structural navigation (parent, first/last child, previous/next
//!   sibling) and iterator-based **axes** (ancestors, descendants, siblings,
//!   following/preceding) used by the XPath evaluator,
//! * a lazily built **document-order index** ([`order`]) — pre/post-order
//!   numbering with epoch-based invalidation — that makes document-order
//!   comparison, ancestor tests and the `following`/`preceding` axes O(1)
//!   per node after one O(n) build; **read the [`order`] module docs before
//!   adding mutation operations**,
//! * a per-document **string interner** ([`intern`]) — tag names, attribute
//!   names and attribute values resolve to dense [`Sym`] handles so the
//!   query evaluator's inner loops are integer compares; append-only, never
//!   invalidated (see the [`intern`] module docs for the ownership
//!   contract),
//! * the `text-value` / `normalize-space` semantics of XPath 1.0,
//! * **structural subtree equality and hashing** (node-id free), which is the
//!   basis of the paper's robustness definition ("there exists a bijection π
//!   between q(D) and q(D') with D/v = D'/π(v)"),
//! * a tolerant **HTML parser** and a **serializer** so documents can round
//!   trip through markup,
//! * in-place **mutation** primitives (insert, remove, rename, attribute
//!   edits) used by the page-evolution simulator in `wi-webgen`.
//!
//! The crate has no dependency on the rest of the workspace and can be used on
//! its own as a tiny DOM library.
//!
//! ## Example
//!
//! ```
//! use wi_dom::parse_html;
//!
//! let doc = parse_html(r#"<html><body>
//!     <div id="main"><span class="name">Martin Scorsese</span></div>
//! </body></html>"#).unwrap();
//!
//! let span = doc
//!     .descendants(doc.root())
//!     .find(|&n| doc.tag_name(n) == Some("span"))
//!     .unwrap();
//! assert_eq!(doc.attribute(span, "class"), Some("name"));
//! assert_eq!(doc.normalized_text(span), "Martin Scorsese");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attrs;
pub mod builder;
pub mod document;
pub mod error;
pub mod fx;
pub mod hash;
pub mod intern;
pub mod iter;
pub mod mutation;
pub mod node;
pub mod order;
pub mod parser;
pub mod serializer;

pub use attrs::AttrIndex;
pub use builder::{el, text, DocumentBuilder, TreeSpec};
pub use document::Document;
pub use error::DomError;
pub use fx::{FxHasher, FxMap, FxSet};
pub use hash::{structural_hash, subtree_equal, HashIndex};
pub use intern::{Interner, Sym};
pub use node::{Attribute, NodeData, NodeId, NodeKind};
pub use order::{OrderIndex, TagIndex};
pub use parser::{parse_html, parse_html_with, ParseOptions};
pub use serializer::{to_html, SerializeOptions};
