//! A fast, non-cryptographic hasher (the classic `FxHash` multiply-xor
//! scheme used by rustc) for the workspace's internal memo tables.
//!
//! The structural-hash index recombines per-subtree hashes for every node
//! of every snapshot, the XPath trie hashes a `Step` — strings included —
//! on every memo probe, and induction's bookkeeping hashes rendered
//! expressions and node ids millions of times per run; the default SipHash
//! costs more than the probe itself, and collisions only cost a
//! comparison, so DoS resistance buys nothing here.  Never use this for
//! attacker-controlled keys in a service boundary.
//!
//! The scheme lives in `wi-dom` (the workspace's dependency root) so the
//! hash index, the evaluator and the maintenance caches all share one
//! implementation; `wi_xpath::fx` re-exports it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash state.
#[derive(Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxMap<String, u32> = FxMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxSet<u64> = FxSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
