//! Document construction APIs.
//!
//! Two styles are provided:
//!
//! * [`TreeSpec`] — a declarative, nested specification built with the [`el`]
//!   and [`text`] helpers; handy in tests and in the synthetic page templates
//!   of `wi-webgen`.
//! * [`DocumentBuilder`] — an imperative open/close builder used by the HTML
//!   parser and by code that generates documents on the fly.

use crate::document::Document;
use crate::error::{DomError, Result};
use crate::node::{Attribute, NodeId};

/// Declarative specification of a subtree: either an element with attributes
/// and children, or a text node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeSpec {
    /// An element with a tag name, attributes and child specifications.
    Element {
        /// Tag name.
        tag: String,
        /// Attributes in order.
        attributes: Vec<Attribute>,
        /// Child subtrees in order.
        children: Vec<TreeSpec>,
    },
    /// A text node.
    Text(
        /// Character data.
        String,
    ),
}

/// Creates an element specification with the given tag name.
pub fn el(tag: impl Into<String>) -> TreeSpec {
    TreeSpec::Element {
        tag: tag.into(),
        attributes: Vec::new(),
        children: Vec::new(),
    }
}

/// Creates a text node specification.
pub fn text(content: impl Into<String>) -> TreeSpec {
    TreeSpec::Text(content.into())
}

impl TreeSpec {
    /// Adds an attribute (builder style); panics on text nodes.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        match &mut self {
            TreeSpec::Element { attributes, .. } => {
                attributes.push(Attribute::new(name, value));
            }
            TreeSpec::Text(_) => panic!("cannot set an attribute on a text node"),
        }
        self
    }

    /// Adds a child subtree (builder style); panics on text nodes.
    pub fn child(mut self, child: TreeSpec) -> Self {
        match &mut self {
            TreeSpec::Element { children, .. } => children.push(child),
            TreeSpec::Text(_) => panic!("cannot add a child to a text node"),
        }
        self
    }

    /// Adds several children at once (builder style).
    pub fn children(mut self, new_children: impl IntoIterator<Item = TreeSpec>) -> Self {
        match &mut self {
            TreeSpec::Element { children, .. } => children.extend(new_children),
            TreeSpec::Text(_) => panic!("cannot add children to a text node"),
        }
        self
    }

    /// Shorthand for adding a single text child.
    pub fn text_child(self, content: impl Into<String>) -> Self {
        self.child(text(content))
    }

    /// Returns the tag name for element specs.
    pub fn tag(&self) -> Option<&str> {
        match self {
            TreeSpec::Element { tag, .. } => Some(tag),
            TreeSpec::Text(_) => None,
        }
    }

    /// Number of nodes in this specification (elements and text nodes).
    pub fn node_count(&self) -> usize {
        match self {
            TreeSpec::Element { children, .. } => {
                1 + children.iter().map(TreeSpec::node_count).sum::<usize>()
            }
            TreeSpec::Text(_) => 1,
        }
    }

    /// Materialises the specification as a [`Document`], with this spec as the
    /// single child of the synthetic document root.
    pub fn into_document(self) -> Document {
        let mut doc = Document::new();
        let root = doc.root();
        build_into(&mut doc, root, &self);
        doc
    }

    /// Materialises the specification under an existing parent node of `doc`.
    ///
    /// Returns the id of the created top node of the subtree.
    pub fn build_under(&self, doc: &mut Document, parent: NodeId) -> NodeId {
        build_into(doc, parent, self)
    }
}

fn build_into(doc: &mut Document, parent: NodeId, spec: &TreeSpec) -> NodeId {
    match spec {
        TreeSpec::Element {
            tag,
            attributes,
            children,
        } => {
            let id = doc.create_element(tag.clone(), attributes.clone());
            doc.append_child(parent, id)
                .expect("append to live parent cannot fail");
            for c in children {
                build_into(doc, id, c);
            }
            id
        }
        TreeSpec::Text(t) => {
            let id = doc.create_text(t.clone());
            doc.append_child(parent, id)
                .expect("append to live parent cannot fail");
            id
        }
    }
}

/// Imperative document builder with an explicit open/close element stack.
///
/// ```
/// use wi_dom::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// b.open_element("html", &[]);
/// b.open_element("body", &[("class", "page")]);
/// b.text("hello");
/// b.close_element().unwrap();
/// b.close_element().unwrap();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.elements_by_tag("body").len(), 1);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates a builder positioned at the document root.
    pub fn new() -> Self {
        let doc = Document::new();
        let root = doc.root();
        DocumentBuilder {
            doc,
            stack: vec![root],
        }
    }

    /// The node new children are currently appended to.
    pub fn current(&self) -> NodeId {
        *self.stack.last().expect("stack always holds the root")
    }

    /// Current depth of open elements (0 = at document root).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Opens a new element as child of the current node and descends into it.
    pub fn open_element(&mut self, tag: &str, attributes: &[(&str, &str)]) -> NodeId {
        let attrs = attributes
            .iter()
            .map(|(n, v)| Attribute::new(*n, *v))
            .collect();
        let id = self.doc.create_element(tag, attrs);
        let parent = self.current();
        self.doc
            .append_child(parent, id)
            .expect("append to live parent cannot fail");
        self.stack.push(id);
        id
    }

    /// Opens an element with already-constructed attributes.
    pub fn open_element_with(&mut self, tag: &str, attributes: Vec<Attribute>) -> NodeId {
        let id = self.doc.create_element(tag, attributes);
        let parent = self.current();
        self.doc
            .append_child(parent, id)
            .expect("append to live parent cannot fail");
        self.stack.push(id);
        id
    }

    /// Appends a self-contained (void) element without descending into it.
    pub fn void_element(&mut self, tag: &str, attributes: &[(&str, &str)]) -> NodeId {
        let id = self.open_element(tag, attributes);
        self.stack.pop();
        id
    }

    /// Appends a text node to the current element.
    pub fn text(&mut self, content: &str) -> NodeId {
        let id = self.doc.create_text(content);
        let parent = self.current();
        self.doc
            .append_child(parent, id)
            .expect("append to live parent cannot fail");
        id
    }

    /// Closes the most recently opened element.
    pub fn close_element(&mut self) -> Result<()> {
        if self.stack.len() <= 1 {
            return Err(DomError::BuilderUnderflow);
        }
        self.stack.pop();
        Ok(())
    }

    /// Closes open elements until (and including) the first one with the given
    /// tag name; returns `false` if no such element is open.
    pub fn close_until(&mut self, tag: &str) -> bool {
        let pos = self.stack[1..]
            .iter()
            .rposition(|&id| self.doc.tag_name(id) == Some(tag));
        match pos {
            Some(p) => {
                self.stack.truncate(p + 1);
                true
            }
            None => false,
        }
    }

    /// Returns `true` if an element with the given tag is currently open.
    pub fn has_open(&self, tag: &str) -> bool {
        self.stack[1..]
            .iter()
            .any(|&id| self.doc.tag_name(id) == Some(tag))
    }

    /// Finishes the build, requiring all elements to be closed.
    pub fn finish(self) -> Result<Document> {
        if self.stack.len() != 1 {
            return Err(DomError::BuilderUnclosed(self.stack.len() - 1));
        }
        Ok(self.doc)
    }

    /// Finishes the build, implicitly closing any elements left open (the
    /// behaviour of a tolerant HTML parser at end of input).
    pub fn finish_lenient(mut self) -> Document {
        self.stack.truncate(1);
        self.doc
    }
}

/// Builds an `<html><head/><body>…</body></html>` page around body children.
///
/// Convenience used heavily by the synthetic site templates.
pub fn page(title: &str, body_children: Vec<TreeSpec>) -> Document {
    el("html")
        .child(el("head").child(el("title").child(text(title))))
        .child(el("body").children(body_children))
        .into_document()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treespec_builds_expected_tree() {
        let doc = el("div")
            .attr("id", "a")
            .child(el("span").text_child("x"))
            .child(text("tail"))
            .into_document();
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.attribute(div, "id"), Some("a"));
        assert_eq!(doc.children(div).count(), 2);
        assert_eq!(doc.text_value(div), "xtail");
    }

    #[test]
    fn treespec_node_count() {
        let spec = el("a").child(el("b").text_child("t")).child(el("c"));
        assert_eq!(spec.node_count(), 4);
        assert_eq!(spec.tag(), Some("a"));
        assert_eq!(text("x").node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "attribute on a text node")]
    fn attr_on_text_panics() {
        let _ = text("x").attr("id", "y");
    }

    #[test]
    fn builder_nesting_and_finish() {
        let mut b = DocumentBuilder::new();
        b.open_element("html", &[]);
        b.open_element("body", &[]);
        assert_eq!(b.depth(), 2);
        b.void_element("img", &[("src", "a.png")]);
        b.text("hi");
        b.close_element().unwrap();
        b.close_element().unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(doc.elements_by_tag("img").len(), 1);
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.normalized_text(body), "hi");
    }

    #[test]
    fn builder_underflow_and_unclosed() {
        let mut b = DocumentBuilder::new();
        assert_eq!(b.close_element(), Err(DomError::BuilderUnderflow));
        b.open_element("div", &[]);
        let err = b.finish().unwrap_err();
        assert_eq!(err, DomError::BuilderUnclosed(1));
    }

    #[test]
    fn builder_finish_lenient_closes_open_elements() {
        let mut b = DocumentBuilder::new();
        b.open_element("html", &[]);
        b.open_element("body", &[]);
        b.open_element("div", &[]);
        let doc = b.finish_lenient();
        assert_eq!(doc.elements_by_tag("div").len(), 1);
    }

    #[test]
    fn builder_close_until() {
        let mut b = DocumentBuilder::new();
        b.open_element("html", &[]);
        b.open_element("body", &[]);
        b.open_element("ul", &[]);
        b.open_element("li", &[]);
        assert!(b.has_open("ul"));
        assert!(b.close_until("ul"));
        assert_eq!(b.depth(), 2);
        assert!(!b.close_until("table"));
    }

    #[test]
    fn page_helper() {
        let doc = page("Hello", vec![el("div").text_child("content")]);
        assert_eq!(doc.elements_by_tag("title").len(), 1);
        let title = doc.elements_by_tag("title")[0];
        assert_eq!(doc.normalized_text(title), "Hello");
        assert_eq!(doc.elements_by_tag("body").len(), 1);
    }

    #[test]
    fn build_under_existing_document() {
        let mut doc = el("html").child(el("body")).into_document();
        let body = doc.elements_by_tag("body")[0];
        let added = el("div").attr("class", "late").build_under(&mut doc, body);
        assert_eq!(doc.parent(added), Some(body));
        assert_eq!(doc.elements_by_class("late").len(), 1);
    }
}
