//! Per-document string interning.
//!
//! # Why
//!
//! The evaluator's inner loops compare tag names, attribute names and
//! attribute values millions of times per induction run (`descendant::div`,
//! `[@class="x"]`, …).  Comparing heap `String`s makes every one of those a
//! length check plus a memcmp; the [`Interner`] replaces them with `u32`
//! symbol compares.  Every tag name, attribute name and attribute value of a
//! [`Document`](crate::Document) is interned exactly once; the arena nodes
//! carry the symbols alongside the owning strings, and the query evaluator
//! resolves its needles (`"div"`, `"class"`, `"x"`) to symbols once per step
//! — a needle that is *absent* from the interner cannot match any node, so
//! the lookup miss is an instant "no match".
//!
//! # Ownership and invalidation contract
//!
//! Unlike the order/tag indexes (see [`crate::order`]), the interner is
//! **append-only and never invalidated**: a [`Sym`] handed out once stays
//! valid for the lifetime of its document (and of clones of that document —
//! `Document::clone` clones the interner, so symbols keep resolving to the
//! same strings in the clone).  Mutations only ever *add* strings; renaming
//! an element or rewriting an attribute interns the new value and leaves the
//! old symbol resolvable (queries may still carry it).  The epoch counter
//! therefore does **not** apply to symbols.
//!
//! The one hard rule: **symbols are only meaningful relative to the document
//! (family) that produced them.**  Two documents intern independently, so
//! the same string maps to different symbols in each; transferring content
//! between documents must go through the strings, which is exactly what
//! [`Document::import_subtree`](crate::Document::import_subtree) does — the
//! arena allocator re-interns every payload it admits, so there is no way to
//! construct a live node whose symbols belong to a foreign interner.
//!
//! Symbols are deliberately kept out of the public equality semantics:
//! [`crate::NodeData`] and [`crate::Attribute`] compare by their strings, so
//! structural equality across documents (e.g. [`crate::subtree_equal`]) is
//! unaffected by interner numbering.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned string: a dense `u32` handle into a document's [`Interner`].
///
/// Symbols are cheap to copy, hash and compare; equal symbols of the same
/// document always denote equal strings, and — because interning dedupes —
/// equal strings of the same document always map to equal symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// Sentinel for "no symbol assigned" (text nodes' tag slot, payloads not
    /// yet admitted by an arena).  Never returned by [`Interner::intern`].
    pub(crate) const UNSET: Sym = Sym(u32::MAX);

    /// The raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A string interner: bidirectional map between strings and dense [`Sym`]s.
///
/// See the [module documentation](self) for the ownership contract.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a string, returning its (new or existing) symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Looks a string up without interning it.  `None` means the string has
    /// never been seen by this document — no node can match it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner (or its clones).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// All interned strings, indexed by [`Sym::index`].  Lets the hash
    /// index precompute one content hash per symbol in a single pass.
    pub(crate) fn strings(&self) -> &[String] {
        &self.strings
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_resolves() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("div");
        let b = i.intern("span");
        let a2 = i.intern("div");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "div");
        assert_eq!(i.resolve(b), "span");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("div"), None);
        let a = i.intern("div");
        assert_eq!(i.get("div"), Some(a));
        assert_eq!(i.len(), 1);
        assert_eq!(a.index(), 0);
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_first_use() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["a", "b", "c", "b", "a"]
            .iter()
            .map(|s| i.intern(s))
            .collect();
        assert_eq!(syms[0].index(), 0);
        assert_eq!(syms[1].index(), 1);
        assert_eq!(syms[2].index(), 2);
        assert_eq!(syms[3], syms[1]);
        assert_eq!(syms[4], syms[0]);
    }
}
