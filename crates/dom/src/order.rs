//! Lazily built document-order and tag indexes.
//!
//! # Why
//!
//! Wrapper induction evaluates thousands of candidate XPath queries per page,
//! and every step of every evaluation sorts its node set into document order.
//! The structural comparator (rebuilding two root paths per comparison) makes
//! one sort O(n log n · depth) *with two heap allocations per comparison*.
//! The [`OrderIndex`] replaces that with a single O(n) pre/post-order
//! numbering pass, after which
//!
//! * [`Document::document_order`](crate::Document::document_order) is one
//!   array lookup per node,
//! * [`Document::is_ancestor_of`](crate::Document::is_ancestor_of) is the
//!   classic interval containment test `pre[a] < pre[n] && post[n] < post[a]`,
//! * the `following` / `preceding` axes become contiguous range scans over
//!   the pre-order sequence instead of tree walks.
//!
//! The [`TagIndex`] additionally maps each tag name to its elements in
//! document order, so `descendant::tag` steps binary-search a pre-order range
//! instead of walking every subtree node.
//!
//! # Invalidation contract
//!
//! Both indexes are built on demand (first use after a structural change) and
//! cached in the [`Document`] behind `OnceLock`s.  **Every mutating operation
//! must call `Document::invalidate_indexes`**, which bumps the document's
//! epoch counter and drops the cached indexes; they are rebuilt lazily on the
//! next ordered query.  All mutation primitives in `mutation.rs` (and the
//! arena allocator itself) already do this — if you add a new mutation
//! operation, route it through the existing primitives or call
//! `invalidate_indexes` yourself, otherwise ordered queries will silently use
//! stale numbering.  The epoch is observable via
//! [`Document::order_epoch`](crate::Document::order_epoch) and recorded in
//! each built index ([`OrderIndex::epoch`]), which the property tests use to
//! prove that a stale index is never served.
//!
//! Nodes that are not reachable from the document root (freshly created or
//! detached nodes) are not part of the numbering; all index queries return
//! `None` for them and the `Document` methods fall back to the structural
//! walk.

use crate::document::Document;
use crate::intern::Sym;
use crate::node::NodeId;
use std::collections::HashMap;

/// Sentinel pre/post number for arena slots not reachable from the root.
const NOT_IN_TREE: u32 = u32::MAX;

/// Per-arena-slot numbering computed by one DFS pass.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Pre-order (document-order) number, 0 for the root.
    pre: u32,
    /// Post-order number (assigned when the DFS leaves the node).
    post: u32,
    /// Depth below the synthetic root (root itself has depth 0).
    depth: u32,
    /// Number of nodes in the subtree rooted here, including the node.
    size: u32,
}

impl Slot {
    const DETACHED: Slot = Slot {
        pre: NOT_IN_TREE,
        post: NOT_IN_TREE,
        depth: 0,
        size: 0,
    };
}

/// Pre/post-order numbering of all live nodes of a [`Document`].
///
/// Built in O(arena size) by [`Document::order_index`]; see the
/// [module documentation](self) for the invalidation contract.
#[derive(Debug, Clone)]
pub struct OrderIndex {
    epoch: u64,
    slots: Vec<Slot>,
    /// All nodes reachable from the root, in document (pre-)order.
    pre_order: Vec<NodeId>,
}

impl OrderIndex {
    /// Numbers every node reachable from the root with one iterative DFS.
    pub(crate) fn build(doc: &Document, epoch: u64) -> OrderIndex {
        let mut slots = vec![Slot::DETACHED; doc.arena_len()];
        let mut pre_order = Vec::with_capacity(doc.arena_len());
        let mut pre = 0u32;
        let mut post = 0u32;
        // Event stack: `(node, entered)`.  Children are pushed in reverse so
        // they pop in document order; no recursion, so arbitrarily deep
        // documents cannot overflow the call stack.
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), false)];
        while let Some((id, entered)) = stack.pop() {
            let i = id.index();
            if entered {
                slots[i].post = post;
                post += 1;
                slots[i].size = pre - slots[i].pre;
                continue;
            }
            slots[i].pre = pre;
            slots[i].depth = doc
                .parent(id)
                .map(|p| slots[p.index()].depth + 1)
                .unwrap_or(0);
            pre_order.push(id);
            pre += 1;
            stack.push((id, true));
            let mut child = doc.last_child(id);
            while let Some(c) = child {
                stack.push((c, false));
                child = doc.prev_sibling(c);
            }
        }
        OrderIndex {
            epoch,
            slots,
            pre_order,
        }
    }

    /// The document epoch this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes covered by the index (all nodes reachable from the
    /// root at build time).
    pub fn len(&self) -> usize {
        self.pre_order.len()
    }

    /// Returns `true` if the index covers no nodes (never the case for a
    /// well-formed document, which always has a root).
    pub fn is_empty(&self) -> bool {
        self.pre_order.is_empty()
    }

    fn slot(&self, id: NodeId) -> Option<&Slot> {
        self.slots.get(id.index()).filter(|s| s.pre != NOT_IN_TREE)
    }

    /// The document-order position of `id` (0 = root), or `None` if the node
    /// was not reachable from the root when the index was built.
    pub fn position(&self, id: NodeId) -> Option<u32> {
        self.slot(id).map(|s| s.pre)
    }

    /// The depth of `id` below the root, or `None` if not in the tree.
    pub fn depth(&self, id: NodeId) -> Option<u32> {
        self.slot(id).map(|s| s.depth)
    }

    /// The subtree size of `id` (including `id`), or `None` if not in the
    /// tree.
    pub fn subtree_size(&self, id: NodeId) -> Option<u32> {
        self.slot(id).map(|s| s.size)
    }

    /// All indexed nodes in document order.
    pub fn nodes_in_order(&self) -> &[NodeId] {
        &self.pre_order
    }

    /// O(1) proper-ancestor test via interval containment, or `None` when
    /// either node is outside the tree.
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> Option<bool> {
        let a = self.slot(ancestor)?;
        let n = self.slot(node)?;
        Some(a.pre < n.pre && n.post < a.post)
    }

    /// The pre-order positions occupied by the subtree of `id` as a range
    /// into [`nodes_in_order`](Self::nodes_in_order) (the node itself is at
    /// `range.start`).
    pub fn subtree_range(&self, id: NodeId) -> Option<std::ops::Range<usize>> {
        let s = self.slot(id)?;
        let start = s.pre as usize;
        Some(start..start + s.size as usize)
    }

    /// Post-order number of `id`, used by the `preceding` range scan to skip
    /// ancestors in O(1) per candidate.
    pub(crate) fn post(&self, id: NodeId) -> Option<u32> {
        self.slot(id).map(|s| s.post)
    }
}

/// Tag-name → elements (in document order) lookup for a [`Document`].
///
/// Keyed by interned tag [`Sym`]s (see [`crate::intern`]), so building it
/// allocates no strings and a lookup by symbol is one integer-keyed hash
/// probe.  Built lazily from the pre-order sequence of the [`OrderIndex`];
/// shares the same epoch-based invalidation contract (see the
/// [module documentation](self)).  Symbols themselves survive mutations —
/// only the node lists are rebuilt.
#[derive(Debug, Clone)]
pub struct TagIndex {
    epoch: u64,
    by_tag: HashMap<Sym, Vec<NodeId>>,
}

impl TagIndex {
    pub(crate) fn build(doc: &Document, order: &OrderIndex) -> TagIndex {
        let mut by_tag: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        // Skip the synthetic root: `elements_by_tag` has never reported it.
        for &id in order.nodes_in_order().iter().skip(1) {
            if let Some(sym) = doc.tag_sym(id) {
                by_tag.entry(sym).or_default().push(id);
            }
        }
        TagIndex {
            epoch: order.epoch(),
            by_tag,
        }
    }

    /// The document epoch this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All elements with the given interned tag, in document order.
    ///
    /// The symbol must come from the document this index was built for
    /// (see `wi_dom::intern` — symbols are per document family).  String
    /// lookups go through
    /// [`Document::elements_by_tag_slice`](crate::Document::elements_by_tag_slice),
    /// which guarantees that pairing; `TagIndex` deliberately offers no
    /// `&str` entry point that could be fed a foreign document's interner.
    pub fn nodes_sym(&self, tag: Sym) -> &[NodeId] {
        self.by_tag.get(&tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct tag names in the document.
    pub fn tag_count(&self) -> usize {
        self.by_tag.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::el;
    use crate::Document;

    fn sample() -> Document {
        el("html")
            .child(
                el("body")
                    .child(el("div").child(el("span").text_child("a")))
                    .child(el("div").text_child("b")),
            )
            .into_document()
    }

    #[test]
    fn preorder_matches_descendants_iterator() {
        let doc = sample();
        let idx = doc.order_index();
        let walked: Vec<_> = doc.descendants_or_self(doc.root()).collect();
        assert_eq!(idx.nodes_in_order(), &walked[..]);
        for (i, &n) in walked.iter().enumerate() {
            assert_eq!(idx.position(n), Some(i as u32));
        }
    }

    #[test]
    fn interval_containment_is_proper_ancestorship() {
        let doc = sample();
        let idx = doc.order_index();
        let body = doc.elements_by_tag("body")[0];
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(idx.is_ancestor_of(body, span), Some(true));
        assert_eq!(idx.is_ancestor_of(span, body), Some(false));
        assert_eq!(idx.is_ancestor_of(span, span), Some(false));
        assert_eq!(idx.is_ancestor_of(doc.root(), span), Some(true));
    }

    #[test]
    fn depths_and_sizes() {
        let doc = sample();
        let idx = doc.order_index();
        assert_eq!(idx.depth(doc.root()), Some(0));
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(idx.depth(span), Some(4));
        assert_eq!(idx.subtree_size(span), Some(2)); // span + text
        assert_eq!(idx.subtree_size(doc.root()), Some(doc.len() as u32));
    }

    #[test]
    fn detached_nodes_are_not_indexed() {
        let mut doc = sample();
        let div = doc.elements_by_tag("div")[0];
        doc.detach(div).unwrap();
        let idx = doc.order_index();
        assert_eq!(idx.position(div), None);
        assert_eq!(idx.is_ancestor_of(doc.root(), div), None);
        let fresh = doc.create_element("p", vec![]);
        assert_eq!(doc.order_index().position(fresh), None);
    }

    #[test]
    fn tag_index_matches_linear_scan() {
        let doc = sample();
        let tags = doc.tag_index();
        assert_eq!(
            doc.elements_by_tag_slice("div"),
            &doc.elements_by_tag("div")[..]
        );
        assert_eq!(
            doc.elements_by_tag_slice("span"),
            &doc.elements_by_tag("span")[..]
        );
        assert!(doc.elements_by_tag_slice("table").is_empty());
        assert!(doc
            .elements_by_tag_slice(crate::document::DOCUMENT_ROOT_TAG)
            .is_empty());
        assert!(tags.tag_count() >= 4);
        // Symbol-keyed lookup agrees with the string path.
        let div_sym = doc.sym("div").unwrap();
        assert_eq!(tags.nodes_sym(div_sym), doc.elements_by_tag_slice("div"));
        assert_eq!(
            doc.elements_by_tag_sym(div_sym),
            &doc.elements_by_tag("div")[..]
        );
    }
}
