//! Node-id-free structural equality and hashing of subtrees.
//!
//! The paper defines robustness of a wrapper `q` between two document versions
//! `D` and `D'` via a bijection π between `q(D)` and `q(D')` such that
//! `D/v = D'/π(v)` where `D/v` is the *abstract, nodeId-free* subtree rooted
//! at `v`.  This module provides exactly that notion of equality, plus a
//! structural hash so sets of result subtrees can be compared as multisets in
//! `O(n log n)`.
//!
//! # The hash index
//!
//! Subtree hashes are served by a lazily built per-document [`HashIndex`]:
//! one bottom-up pass computes the hash of **every** subtree (each node's
//! hash recombines its children's already-computed hashes), so after the
//! first build a [`structural_hash`] call is a single array lookup.  The
//! index participates in the same epoch contract as the order/tag indexes
//! (see [`crate::order`]): any mutation drops it, and the next hash query
//! rebuilds it.
//!
//! Hashing goes through [`crate::fx`] (FxHash) and the interner: every
//! interned string is hashed once per index build, and per-node hashing
//! recombines those 64-bit words instead of re-hashing strings.  Symbols
//! are document-local, so the per-symbol table hashes the *string
//! contents* — equal subtrees of different documents (different interner
//! numberings) still hash equal, which the robustness check relies on.
//! Detached nodes (no pre-order position) fall back to a recursive walk
//! built from the same combine functions, so attached and detached copies
//! of one structure hash identically.

use crate::document::Document;
use crate::fx::FxHasher;
use crate::node::{NodeData, NodeId};
use crate::order::OrderIndex;
use std::hash::Hasher;

/// Hash of one string's contents (length-prefixed: `FxHasher::write`
/// zero-pads its trailing chunk, so without the prefix `"a"` and `"a\0"`
/// would collide structurally).
#[inline]
fn str_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(s.len());
    h.write(s.as_bytes());
    h.finish()
}

/// Combine function for a text node.
#[inline]
fn text_hash(content: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(1);
    h.write_u64(content);
    h.finish()
}

/// Combine function for an element node: tag, attribute pairs (order
/// matters), then child subtree hashes (order matters).  Both the indexed
/// build and the detached-node fallback must go through this function so
/// the two paths agree bit-for-bit.
fn element_hash<A, C>(tag: u64, attrs: A, children: C) -> u64
where
    A: Iterator<Item = (u64, u64)>,
    C: Iterator<Item = u64>,
{
    let mut h = FxHasher::default();
    h.write_u8(2);
    h.write_u64(tag);
    let mut attr_count = 0usize;
    for (name, value) in attrs {
        h.write_u64(name);
        h.write_u64(value);
        attr_count += 1;
    }
    h.write_usize(attr_count);
    let mut child_count = 0usize;
    for child in children {
        h.write_u64(child);
        child_count += 1;
    }
    h.write_usize(child_count);
    h.finish()
}

/// Per-document structural-hash index: the hash of every subtree, by
/// pre-order position.
///
/// Built bottom-up in one pass over the reverse pre-order (children are
/// numbered after their parent, so iterating positions high-to-low visits
/// every child before the element that recombines it).  See the
/// [module docs](self) for the cross-document and epoch contracts.
#[derive(Debug, Clone)]
pub struct HashIndex {
    /// The document epoch this index was built at.
    epoch: u64,
    /// Subtree hash by pre-order position.
    hashes: Vec<u64>,
    /// Number of element nodes in the tree (including the synthetic root).
    elements: usize,
}

impl HashIndex {
    /// Builds the index for `doc` over its (already built) order index.
    pub fn build(doc: &Document, order: &OrderIndex, epoch: u64) -> HashIndex {
        // One content hash per interned string; symbols index this table.
        let sym_hashes: Vec<u64> = doc
            .interner()
            .strings()
            .iter()
            .map(|s| str_hash(s))
            .collect();
        let nodes = order.nodes_in_order();
        let mut hashes = vec![0u64; nodes.len()];
        let mut elements = 0usize;
        for (pos, &id) in nodes.iter().enumerate().rev() {
            hashes[pos] = match doc.data(id) {
                NodeData::Text(t) => text_hash(str_hash(t)),
                NodeData::Element { .. } => {
                    elements += 1;
                    let tag = doc
                        .tag_sym(id)
                        .map(|s| sym_hashes[s.index()])
                        .unwrap_or_default();
                    element_hash(
                        tag,
                        doc.attr_syms(id)
                            .iter()
                            .map(|&(n, v)| (sym_hashes[n.index()], sym_hashes[v.index()])),
                        // Children are numbered after `pos` — already done.
                        doc.children(id)
                            .filter_map(|c| order.position(c).map(|p| hashes[p as usize])),
                    )
                }
            };
        }
        HashIndex {
            epoch,
            hashes,
            elements,
        }
    }

    /// The document epoch this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The subtree hash of the node at pre-order position `pos`.
    pub fn hash_at(&self, pos: usize) -> u64 {
        self.hashes[pos]
    }

    /// Number of element nodes in the tree, including the synthetic root.
    pub fn element_count(&self) -> usize {
        self.elements
    }
}

/// The recursive fallback for nodes outside the tree (detached subtrees
/// have no pre-order position).  Hashes string payloads directly — by
/// construction `str_hash(interner.resolve(sym))` equals the per-symbol
/// table entry, so this agrees with the indexed build.
pub(crate) fn hash_detached(doc: &Document, id: NodeId) -> u64 {
    match doc.data(id) {
        NodeData::Text(t) => text_hash(str_hash(t)),
        NodeData::Element { tag, attributes } => element_hash(
            str_hash(tag),
            attributes
                .iter()
                .map(|a| (str_hash(&a.name), str_hash(&a.value))),
            doc.children(id).map(|c| hash_detached(doc, c)),
        ),
    }
}

/// Computes a structural hash of the subtree rooted at `id`.
///
/// Two subtrees that are structurally equal (same tags, attributes with the
/// same names/values in the same order, same text, same child order) hash to
/// the same value regardless of which document or arena slot they live in.
///
/// Served by the per-document [`HashIndex`]: O(1) per call for nodes in the
/// tree once the index is built (detached nodes hash recursively).
pub fn structural_hash(doc: &Document, id: NodeId) -> u64 {
    doc.subtree_hash(id)
}

/// Structural (node-id free) equality of two subtrees, possibly from
/// different documents.
pub fn subtree_equal(doc_a: &Document, a: NodeId, doc_b: &Document, b: NodeId) -> bool {
    match (doc_a.data(a), doc_b.data(b)) {
        (NodeData::Text(ta), NodeData::Text(tb)) => ta == tb,
        (
            NodeData::Element {
                tag: tag_a,
                attributes: attrs_a,
            },
            NodeData::Element {
                tag: tag_b,
                attributes: attrs_b,
            },
        ) => {
            if tag_a != tag_b || attrs_a != attrs_b {
                return false;
            }
            let mut ca = doc_a.children(a);
            let mut cb = doc_b.children(b);
            loop {
                match (ca.next(), cb.next()) {
                    (Some(x), Some(y)) => {
                        if !subtree_equal(doc_a, x, doc_b, y) {
                            return false;
                        }
                    }
                    (None, None) => return true,
                    _ => return false,
                }
            }
        }
        _ => false,
    }
}

/// Checks whether a bijection π exists between `nodes_a` (in `doc_a`) and
/// `nodes_b` (in `doc_b`) such that corresponding subtrees are structurally
/// equal — i.e. the two result sets are equal as multisets of abstract
/// subtrees.  This is the paper's robustness condition for a query across two
/// page versions.
pub fn result_sets_equivalent(
    doc_a: &Document,
    nodes_a: &[NodeId],
    doc_b: &Document,
    nodes_b: &[NodeId],
) -> bool {
    if nodes_a.len() != nodes_b.len() {
        return false;
    }
    let mut hashes_a: Vec<u64> = nodes_a.iter().map(|&n| structural_hash(doc_a, n)).collect();
    let mut hashes_b: Vec<u64> = nodes_b.iter().map(|&n| structural_hash(doc_b, n)).collect();
    hashes_a.sort_unstable();
    hashes_b.sort_unstable();
    if hashes_a != hashes_b {
        return false;
    }
    // Hash collisions are astronomically unlikely, but verify greedily with
    // real structural equality to keep the function exact.
    let mut used = vec![false; nodes_b.len()];
    for &a in nodes_a {
        let mut matched = false;
        for (j, &b) in nodes_b.iter().enumerate() {
            if !used[j] && subtree_equal(doc_a, a, doc_b, b) {
                used[j] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

/// A compact structural fingerprint of an entire document: its root hash plus
/// element count.  Used by the archive simulator to detect "no change"
/// snapshots cheaply and by the maintenance layer's cross-version caches as
/// the content identity of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocumentFingerprint {
    /// Structural hash of the document root.
    pub hash: u64,
    /// Number of element nodes.
    pub elements: usize,
}

/// Computes the [`DocumentFingerprint`] of a document.  O(1) once the hash
/// index is built.
pub fn fingerprint(doc: &Document) -> DocumentFingerprint {
    DocumentFingerprint {
        hash: structural_hash(doc, doc.root()),
        elements: doc.element_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::el;

    fn tree_a() -> Document {
        el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("world"))
            .into_document()
    }

    #[test]
    fn identical_trees_hash_equal() {
        let a = tree_a();
        let b = tree_a();
        let ra = a.elements_by_tag("div")[0];
        let rb = b.elements_by_tag("div")[0];
        assert_eq!(structural_hash(&a, ra), structural_hash(&b, rb));
        assert!(subtree_equal(&a, ra, &b, rb));
    }

    #[test]
    fn different_text_changes_hash() {
        let a = tree_a();
        let b = el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("mars"))
            .into_document();
        let ra = a.elements_by_tag("div")[0];
        let rb = b.elements_by_tag("div")[0];
        assert_ne!(structural_hash(&a, ra), structural_hash(&b, rb));
        assert!(!subtree_equal(&a, ra, &b, rb));
    }

    #[test]
    fn attribute_order_matters_value_matters() {
        let a = el("div").attr("a", "1").attr("b", "2").into_document();
        let b = el("div").attr("b", "2").attr("a", "1").into_document();
        let c = el("div").attr("a", "1").attr("b", "3").into_document();
        let (ra, rb, rc) = (
            a.elements_by_tag("div")[0],
            b.elements_by_tag("div")[0],
            c.elements_by_tag("div")[0],
        );
        assert!(!subtree_equal(&a, ra, &b, rb));
        assert!(!subtree_equal(&a, ra, &c, rc));
        assert_ne!(structural_hash(&a, ra), structural_hash(&b, rb));
        assert_ne!(structural_hash(&a, ra), structural_hash(&c, rc));
    }

    #[test]
    fn child_order_matters() {
        let a = el("ul")
            .child(el("li").text_child("1"))
            .child(el("li").text_child("2"))
            .into_document();
        let b = el("ul")
            .child(el("li").text_child("2"))
            .child(el("li").text_child("1"))
            .into_document();
        let ra = a.elements_by_tag("ul")[0];
        let rb = b.elements_by_tag("ul")[0];
        assert!(!subtree_equal(&a, ra, &b, rb));
        assert_ne!(structural_hash(&a, ra), structural_hash(&b, rb));
    }

    #[test]
    fn element_vs_text_not_equal() {
        let a = el("div").text_child("x").into_document();
        let div = a.elements_by_tag("div")[0];
        let t = a.children(div).next().unwrap();
        assert!(!subtree_equal(&a, div, &a, t));
        assert_ne!(structural_hash(&a, div), structural_hash(&a, t));
    }

    #[test]
    fn result_set_equivalence_is_order_independent() {
        let a = tree_a();
        let b = tree_a();
        let sa = a.elements_by_tag("span");
        let sb_rev: Vec<_> = b.elements_by_tag("span").into_iter().rev().collect();
        assert!(result_sets_equivalent(&a, &sa, &b, &sb_rev));
    }

    #[test]
    fn result_set_equivalence_detects_mismatch() {
        let a = tree_a();
        let b = el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("changed"))
            .into_document();
        let sa = a.elements_by_tag("span");
        let sb = b.elements_by_tag("span");
        assert!(!result_sets_equivalent(&a, &sa, &b, &sb));
        // size mismatch
        assert!(!result_sets_equivalent(&a, &sa, &b, &sb[..1]));
    }

    #[test]
    fn duplicate_subtrees_need_matching_multiplicity() {
        let a = el("ul")
            .child(el("li").text_child("x"))
            .child(el("li").text_child("x"))
            .into_document();
        let b = el("ul")
            .child(el("li").text_child("x"))
            .child(el("li").text_child("y"))
            .into_document();
        let la = a.elements_by_tag("li");
        let lb = b.elements_by_tag("li");
        assert!(!result_sets_equivalent(&a, &la, &b, &lb));
    }

    #[test]
    fn fingerprint_changes_with_structure() {
        let a = tree_a();
        let mut b = tree_a();
        let f1 = fingerprint(&a);
        assert_eq!(f1, fingerprint(&b));
        let span = b.elements_by_tag("span")[0];
        b.set_attribute(span, "class", "new").unwrap();
        assert_ne!(f1, fingerprint(&b));
    }

    #[test]
    fn detached_subtree_hashes_like_attached_copy() {
        // The recursive fallback and the indexed bottom-up build must agree
        // bit-for-bit: build the same structure attached in one document and
        // detached in another.
        let attached = el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .into_document();
        let ra = attached.elements_by_tag("div")[0];

        let mut other = Document::new();
        let d = other.create_element(
            "div",
            vec![crate::node::Attribute {
                name: "class".into(),
                value: "x".into(),
            }],
        );
        let s = other.create_element("span", vec![]);
        let t = other.create_text("hello");
        other.append_child(s, t).unwrap();
        other.append_child(d, s).unwrap();
        // `d` stays detached (never appended to the root).
        assert_eq!(
            other.order_index().position(d),
            None,
            "the copy is detached"
        );
        assert_eq!(structural_hash(&attached, ra), structural_hash(&other, d));
    }

    #[test]
    fn equal_subtrees_hash_equal_across_interner_numberings() {
        // Property behind the cross-version caches: equal subtrees of
        // documents with *different* interner numberings hash equal, because
        // the per-symbol table hashes string contents.  Skew document B's
        // interner by interning unrelated strings first.
        let a = Document::parse(r#"<div class="x"><span id="s">hello</span><b>world</b></div>"#)
            .unwrap();
        let b = Document::parse(
            r#"<p data-k="v">skew the symbol table</p>
               <div class="x"><span id="s">hello</span><b>world</b></div>"#,
        )
        .unwrap();
        let da = a.elements_by_tag("div")[0];
        let db = b.elements_by_tag("div")[0];
        assert_ne!(
            a.tag_sym(da),
            b.tag_sym(db),
            "interner numberings actually differ"
        );
        assert!(subtree_equal(&a, da, &b, db));
        assert_eq!(structural_hash(&a, da), structural_hash(&b, db));
        // And sibling-level: the span subtrees agree too.
        let sa = a.elements_by_tag("span")[0];
        let sb = b.elements_by_tag("span")[0];
        assert_eq!(structural_hash(&a, sa), structural_hash(&b, sb));
    }

    #[test]
    fn hash_index_rebuilds_after_mutation() {
        let mut doc = tree_a();
        let div = doc.elements_by_tag("div")[0];
        let before = doc.subtree_hash(div);
        let epoch_before = doc.hash_index().epoch();
        doc.set_attribute(div, "class", "y").unwrap();
        let after = doc.subtree_hash(div);
        assert_ne!(before, after, "mutation changes the subtree hash");
        assert!(doc.hash_index().epoch() > epoch_before);
        // Reverting the edit restores the original hash (pure function of
        // structure, not of epochs).
        doc.set_attribute(div, "class", "x").unwrap();
        assert_eq!(doc.subtree_hash(div), before);
    }
}
