//! Node-id-free structural equality and hashing of subtrees.
//!
//! The paper defines robustness of a wrapper `q` between two document versions
//! `D` and `D'` via a bijection π between `q(D)` and `q(D')` such that
//! `D/v = D'/π(v)` where `D/v` is the *abstract, nodeId-free* subtree rooted
//! at `v`.  This module provides exactly that notion of equality, plus a
//! structural hash so sets of result subtrees can be compared as multisets in
//! `O(n log n)`.

use crate::document::Document;
use crate::node::{NodeData, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Computes a structural hash of the subtree rooted at `id`.
///
/// Two subtrees that are structurally equal (same tags, attributes with the
/// same names/values in the same order, same text, same child order) hash to
/// the same value regardless of which document or arena slot they live in.
pub fn structural_hash(doc: &Document, id: NodeId) -> u64 {
    let mut hasher = DefaultHasher::new();
    hash_node(doc, id, &mut hasher);
    hasher.finish()
}

fn hash_node(doc: &Document, id: NodeId, hasher: &mut DefaultHasher) {
    match doc.data(id) {
        NodeData::Text(t) => {
            1u8.hash(hasher);
            t.hash(hasher);
        }
        NodeData::Element { tag, attributes } => {
            2u8.hash(hasher);
            tag.hash(hasher);
            attributes.len().hash(hasher);
            for a in attributes {
                a.name.hash(hasher);
                a.value.hash(hasher);
            }
            let children: Vec<NodeId> = doc.children(id).collect();
            children.len().hash(hasher);
            for c in children {
                hash_node(doc, c, hasher);
            }
        }
    }
}

/// Structural (node-id free) equality of two subtrees, possibly from
/// different documents.
pub fn subtree_equal(doc_a: &Document, a: NodeId, doc_b: &Document, b: NodeId) -> bool {
    match (doc_a.data(a), doc_b.data(b)) {
        (NodeData::Text(ta), NodeData::Text(tb)) => ta == tb,
        (
            NodeData::Element {
                tag: tag_a,
                attributes: attrs_a,
            },
            NodeData::Element {
                tag: tag_b,
                attributes: attrs_b,
            },
        ) => {
            if tag_a != tag_b || attrs_a != attrs_b {
                return false;
            }
            let ca: Vec<NodeId> = doc_a.children(a).collect();
            let cb: Vec<NodeId> = doc_b.children(b).collect();
            if ca.len() != cb.len() {
                return false;
            }
            ca.iter()
                .zip(cb.iter())
                .all(|(&x, &y)| subtree_equal(doc_a, x, doc_b, y))
        }
        _ => false,
    }
}

/// Checks whether a bijection π exists between `nodes_a` (in `doc_a`) and
/// `nodes_b` (in `doc_b`) such that corresponding subtrees are structurally
/// equal — i.e. the two result sets are equal as multisets of abstract
/// subtrees.  This is the paper's robustness condition for a query across two
/// page versions.
pub fn result_sets_equivalent(
    doc_a: &Document,
    nodes_a: &[NodeId],
    doc_b: &Document,
    nodes_b: &[NodeId],
) -> bool {
    if nodes_a.len() != nodes_b.len() {
        return false;
    }
    let mut hashes_a: Vec<u64> = nodes_a.iter().map(|&n| structural_hash(doc_a, n)).collect();
    let mut hashes_b: Vec<u64> = nodes_b.iter().map(|&n| structural_hash(doc_b, n)).collect();
    hashes_a.sort_unstable();
    hashes_b.sort_unstable();
    if hashes_a != hashes_b {
        return false;
    }
    // Hash collisions are astronomically unlikely, but verify greedily with
    // real structural equality to keep the function exact.
    let mut used = vec![false; nodes_b.len()];
    for &a in nodes_a {
        let mut matched = false;
        for (j, &b) in nodes_b.iter().enumerate() {
            if !used[j] && subtree_equal(doc_a, a, doc_b, b) {
                used[j] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

/// A compact structural fingerprint of an entire document: its root hash plus
/// element count.  Used by the archive simulator to detect "no change"
/// snapshots cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocumentFingerprint {
    /// Structural hash of the document root.
    pub hash: u64,
    /// Number of element nodes.
    pub elements: usize,
}

/// Computes the [`DocumentFingerprint`] of a document.
pub fn fingerprint(doc: &Document) -> DocumentFingerprint {
    DocumentFingerprint {
        hash: structural_hash(doc, doc.root()),
        elements: doc.element_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::el;

    fn tree_a() -> Document {
        el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("world"))
            .into_document()
    }

    #[test]
    fn identical_trees_hash_equal() {
        let a = tree_a();
        let b = tree_a();
        let ra = a.elements_by_tag("div")[0];
        let rb = b.elements_by_tag("div")[0];
        assert_eq!(structural_hash(&a, ra), structural_hash(&b, rb));
        assert!(subtree_equal(&a, ra, &b, rb));
    }

    #[test]
    fn different_text_changes_hash() {
        let a = tree_a();
        let b = el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("mars"))
            .into_document();
        let ra = a.elements_by_tag("div")[0];
        let rb = b.elements_by_tag("div")[0];
        assert_ne!(structural_hash(&a, ra), structural_hash(&b, rb));
        assert!(!subtree_equal(&a, ra, &b, rb));
    }

    #[test]
    fn attribute_order_matters_value_matters() {
        let a = el("div").attr("a", "1").attr("b", "2").into_document();
        let b = el("div").attr("b", "2").attr("a", "1").into_document();
        let c = el("div").attr("a", "1").attr("b", "3").into_document();
        let (ra, rb, rc) = (
            a.elements_by_tag("div")[0],
            b.elements_by_tag("div")[0],
            c.elements_by_tag("div")[0],
        );
        assert!(!subtree_equal(&a, ra, &b, rb));
        assert!(!subtree_equal(&a, ra, &c, rc));
    }

    #[test]
    fn child_order_matters() {
        let a = el("ul")
            .child(el("li").text_child("1"))
            .child(el("li").text_child("2"))
            .into_document();
        let b = el("ul")
            .child(el("li").text_child("2"))
            .child(el("li").text_child("1"))
            .into_document();
        let ra = a.elements_by_tag("ul")[0];
        let rb = b.elements_by_tag("ul")[0];
        assert!(!subtree_equal(&a, ra, &b, rb));
    }

    #[test]
    fn element_vs_text_not_equal() {
        let a = el("div").text_child("x").into_document();
        let div = a.elements_by_tag("div")[0];
        let t = a.children(div).next().unwrap();
        assert!(!subtree_equal(&a, div, &a, t));
    }

    #[test]
    fn result_set_equivalence_is_order_independent() {
        let a = tree_a();
        let b = tree_a();
        let sa = a.elements_by_tag("span");
        let sb_rev: Vec<_> = b.elements_by_tag("span").into_iter().rev().collect();
        assert!(result_sets_equivalent(&a, &sa, &b, &sb_rev));
    }

    #[test]
    fn result_set_equivalence_detects_mismatch() {
        let a = tree_a();
        let b = el("div")
            .attr("class", "x")
            .child(el("span").text_child("hello"))
            .child(el("span").text_child("changed"))
            .into_document();
        let sa = a.elements_by_tag("span");
        let sb = b.elements_by_tag("span");
        assert!(!result_sets_equivalent(&a, &sa, &b, &sb));
        // size mismatch
        assert!(!result_sets_equivalent(&a, &sa, &b, &sb[..1]));
    }

    #[test]
    fn duplicate_subtrees_need_matching_multiplicity() {
        let a = el("ul")
            .child(el("li").text_child("x"))
            .child(el("li").text_child("x"))
            .into_document();
        let b = el("ul")
            .child(el("li").text_child("x"))
            .child(el("li").text_child("y"))
            .into_document();
        let la = a.elements_by_tag("li");
        let lb = b.elements_by_tag("li");
        assert!(!result_sets_equivalent(&a, &la, &b, &lb));
    }

    #[test]
    fn fingerprint_changes_with_structure() {
        let a = tree_a();
        let mut b = tree_a();
        let f1 = fingerprint(&a);
        assert_eq!(f1, fingerprint(&b));
        let span = b.elements_by_tag("span")[0];
        b.set_attribute(span, "class", "new").unwrap();
        assert_ne!(f1, fingerprint(&b));
    }
}
