//! The arena-based [`Document`] type and its navigation API.

use crate::attrs::AttrIndex;
use crate::error::{DomError, Result};
use crate::hash::HashIndex;
use crate::intern::{Interner, Sym};
use crate::iter::{
    Ancestors, Children, Descendants, DescendantsOrSelf, FollowingSiblings, PrecedingSiblings,
};
use crate::node::{Attribute, Node, NodeData, NodeId, NodeKind};
use crate::order::{OrderIndex, TagIndex};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// An HTML/XML document: a tree of element and text nodes stored in an arena.
///
/// The root of every document is a synthetic *document root* element with the
/// reserved tag name `#document`.  It mirrors XPath's root node `/`: it is the
/// parent of the top-level element(s) and is the context node wrappers are
/// evaluated from.
///
/// Node ids remain stable across mutations; removed nodes are only detached,
/// never reused.
///
/// Ordered queries (`document_order`, `is_ancestor_of`, `sort_document_order`,
/// the `following`/`preceding` axes and the tag lookups) are served by lazily
/// built indexes; see [`crate::order`] for the invalidation contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    root: NodeId,
    /// Bumped by every mutation; cached indexes are valid only while their
    /// recorded epoch equals this counter.
    epoch: u64,
    /// Per-document string interner for tag names, attribute names and
    /// attribute values.  Append-only — never invalidated; see
    /// [`crate::intern`] for the ownership contract.
    interner: Interner,
    /// Lazily built pre/post-order numbering (see [`crate::order`]).
    order: OnceLock<OrderIndex>,
    /// Lazily built tag-name → elements lookup (see [`crate::order`]).
    tags: OnceLock<TagIndex>,
    /// Lazily built per-subtree structural hashes (see [`crate::hash`]).
    hashes: OnceLock<HashIndex>,
    /// Lazily built attribute censuses (see [`crate::attrs`]).
    attrs: OnceLock<AttrIndex>,
}

/// Reserved tag name of the synthetic document root.
pub const DOCUMENT_ROOT_TAG: &str = "#document";

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the synthetic root node.
    pub fn new() -> Self {
        let mut interner = Interner::new();
        let mut root_node = Node::new(NodeData::Element {
            tag: DOCUMENT_ROOT_TAG.to_string(),
            attributes: Vec::new(),
        });
        root_node.tag_sym = interner.intern(DOCUMENT_ROOT_TAG);
        Document {
            nodes: vec![root_node],
            root: NodeId(0),
            epoch: 0,
            interner,
            order: OnceLock::new(),
            tags: OnceLock::new(),
            hashes: OnceLock::new(),
            attrs: OnceLock::new(),
        }
    }

    // ------------------------------------------------------------------
    // Order / tag indexes (see the `order` module for the contract).
    // ------------------------------------------------------------------

    /// The document's mutation epoch.  Every mutating operation increments
    /// it; a cached [`OrderIndex`]/[`TagIndex`] is valid iff its recorded
    /// epoch equals this value.
    pub fn order_epoch(&self) -> u64 {
        self.epoch
    }

    /// The document-order index, built on first use after a mutation.
    pub fn order_index(&self) -> &OrderIndex {
        self.order
            .get_or_init(|| OrderIndex::build(self, self.epoch))
    }

    /// The tag-name index, built on first use after a mutation.
    pub fn tag_index(&self) -> &TagIndex {
        self.tags
            .get_or_init(|| TagIndex::build(self, self.order_index()))
    }

    /// The structural-hash index, built on first use after a mutation.
    pub fn hash_index(&self) -> &HashIndex {
        self.hashes
            .get_or_init(|| HashIndex::build(self, self.order_index(), self.epoch))
    }

    /// The structural hash of the subtree rooted at `id` — O(1) via the hash
    /// index for nodes in the tree; detached nodes hash recursively.  Same
    /// value as [`crate::structural_hash`].
    pub fn subtree_hash(&self, id: NodeId) -> u64 {
        match self.order_index().position(id) {
            Some(pos) => self.hash_index().hash_at(pos as usize),
            None => crate::hash::hash_detached(self, id),
        }
    }

    /// The structural hash of the whole document (the root's subtree hash).
    /// This is the content identity the maintenance layer's cross-version
    /// caches key on.
    pub fn content_hash(&self) -> u64 {
        self.subtree_hash(self.root)
    }

    /// The attribute-census index, built on first use after a mutation.
    pub fn attr_index(&self) -> &AttrIndex {
        self.attrs
            .get_or_init(|| AttrIndex::build(self, self.order_index()))
    }

    /// Number of in-tree nodes whose visible attribute `name` equals
    /// `value` (the synthetic root included, should it ever carry
    /// attributes).  O(1) via the attribute index after its one-time build;
    /// needles absent from the interner can match nothing and return 0
    /// without touching the index.
    pub fn carrier_count(&self, name: &str, value: &str) -> usize {
        match (self.sym(name), self.sym(value)) {
            (Some(n), Some(v)) => self.attr_index().carrier_count_syms(n, v),
            _ => 0,
        }
    }

    /// The shared census of every distinct attribute value in the document,
    /// sorted.  Callers clone the `Arc`, not the set.
    pub fn attribute_value_census(&self) -> &std::sync::Arc<std::collections::BTreeSet<String>> {
        self.attr_index().values()
    }

    /// Drops the cached indexes and bumps the epoch.  Called by every
    /// mutation primitive; call it from any new mutation operation that does
    /// not go through the existing ones.
    pub(crate) fn invalidate_indexes(&mut self) {
        self.epoch += 1;
        self.order.take();
        self.tags.take();
        self.hashes.take();
        self.attrs.take();
    }

    /// Parses HTML text into a document with default [`crate::ParseOptions`].
    ///
    /// Convenience constructor equivalent to [`crate::parse_html`]; callers
    /// no longer need to thread a [`crate::DocumentBuilder`] (or reach for
    /// the free function) to get from markup to a `Document`.
    pub fn parse(html: &str) -> Result<Document> {
        crate::parser::parse_html(html)
    }

    /// Parses HTML text with explicit [`crate::ParseOptions`].
    pub fn parse_with(html: &str, options: crate::parser::ParseOptions) -> Result<Document> {
        crate::parser::parse_html_with(html, options)
    }

    /// Returns the synthetic document root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns the first element child of the document root (`<html>` for a
    /// typical page), if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.root)
            .find(|&c| self.kind(c) == NodeKind::Element)
    }

    /// Number of live (non-detached) nodes, including the synthetic root.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.detached).count()
    }

    /// Returns `true` if the document contains only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Total number of arena slots ever allocated (live + detached).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if `id` refers to a live node of this document.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .map(|n| !n.detached)
            .unwrap_or(false)
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Checks that `id` is a valid, live node of this document.
    pub fn check(&self, id: NodeId) -> Result<()> {
        if self.contains(id) {
            Ok(())
        } else {
            Err(DomError::InvalidNodeId(id.0))
        }
    }

    // ------------------------------------------------------------------
    // Node creation (used by builder, parser, and mutation).
    // ------------------------------------------------------------------

    pub(crate) fn alloc(&mut self, data: NodeData) -> NodeId {
        // Growing the arena does not reorder live nodes, but the index arrays
        // are sized to the arena, so allocation participates in the same
        // epoch contract as the structural mutations.
        self.invalidate_indexes();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(data));
        // Admission re-interns the payload from its strings, so imported
        // subtrees can never smuggle a foreign document's symbols in.
        self.sync_syms(id);
        id
    }

    /// Re-derives the interned symbols of a node from its string payload.
    ///
    /// Called by [`alloc`](Self::alloc) and by every payload-mutating
    /// operation (`rename_element`, `set_attribute`, `remove_attribute`);
    /// any new operation that rewrites `NodeData` strings must call it too,
    /// or symbol-based lookups will silently miss the node.
    pub(crate) fn sync_syms(&mut self, id: NodeId) {
        // Split borrow: the arena slot and the interner are disjoint fields.
        let Document {
            nodes, interner, ..
        } = self;
        let node = &mut nodes[id.index()];
        match &node.data {
            NodeData::Element { tag, attributes } => {
                node.tag_sym = interner.intern(tag);
                node.attr_syms.clear();
                node.attr_syms.extend(
                    attributes
                        .iter()
                        .map(|a| (interner.intern(&a.name), interner.intern(&a.value))),
                );
            }
            NodeData::Text(_) => {
                node.tag_sym = Sym::UNSET;
                node.attr_syms.clear();
            }
        }
    }

    /// Creates a new, detached element node owned by this document.
    pub fn create_element(&mut self, tag: impl Into<String>, attributes: Vec<Attribute>) -> NodeId {
        self.alloc(NodeData::Element {
            tag: tag.into(),
            attributes,
        })
    }

    /// Creates a new, detached text node owned by this document.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeData::Text(text.into()))
    }

    // ------------------------------------------------------------------
    // Payload accessors.
    // ------------------------------------------------------------------

    /// Returns the payload of a node.
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.node(id).data
    }

    /// Returns the kind (element or text) of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.node(id).data.kind()
    }

    /// Returns `true` if the node is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        self.kind(id) == NodeKind::Element
    }

    /// Returns `true` if the node is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        self.kind(id) == NodeKind::Text
    }

    /// Returns the tag name of an element node (`None` for text nodes).
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        self.node(id).data.tag()
    }

    /// Returns the character data of a text node (`None` for elements).
    pub fn text_content(&self, id: NodeId) -> Option<&str> {
        self.node(id).data.text()
    }

    /// Returns the attributes of an element (empty for text nodes).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        self.node(id).data.attributes()
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.node(id).data.attribute(name)
    }

    /// Returns `true` if the element carries the given attribute.
    pub fn has_attribute(&self, id: NodeId, name: &str) -> bool {
        self.attribute(id, name).is_some()
    }

    // ------------------------------------------------------------------
    // Symbol-based accessors (see `crate::intern` for the contract).
    // ------------------------------------------------------------------

    /// The document's string interner (read access; interning happens through
    /// the arena allocator and the mutation primitives).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Looks up the symbol of a string **without interning it**.  `None`
    /// means the string occurs nowhere in this document's tags, attribute
    /// names or attribute values — a query needle resolving to `None` can
    /// match nothing.
    pub fn sym(&self, s: &str) -> Option<Sym> {
        self.interner.get(s)
    }

    /// Resolves a symbol of this document back to its string.
    pub fn resolve_sym(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The interned tag name of an element (`None` for text nodes).
    pub fn tag_sym(&self, id: NodeId) -> Option<Sym> {
        let node = self.node(id);
        (node.tag_sym != Sym::UNSET).then_some(node.tag_sym)
    }

    /// The interned `(name, value)` pairs of an element's attributes, in
    /// insertion order (empty for text nodes).
    pub fn attr_syms(&self, id: NodeId) -> &[(Sym, Sym)] {
        &self.node(id).attr_syms
    }

    /// The interned value of the attribute with interned name `name`, if the
    /// element carries it.
    pub fn attribute_value_sym(&self, id: NodeId, name: Sym) -> Option<Sym> {
        self.node(id)
            .attr_syms
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Attribute lookup by interned name, resolving the value string.
    pub fn attribute_by_sym(&self, id: NodeId, name: Sym) -> Option<&str> {
        self.attribute_value_sym(id, name)
            .map(|v| self.interner.resolve(v))
    }

    /// Returns `true` if the element carries an attribute with interned name
    /// `name`.
    pub fn has_attribute_sym(&self, id: NodeId, name: Sym) -> bool {
        self.node(id).attr_syms.iter().any(|&(n, _)| n == name)
    }

    // ------------------------------------------------------------------
    // Structural navigation.
    // ------------------------------------------------------------------

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// First child of a node.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).first_child
    }

    /// Last child of a node.
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).last_child
    }

    /// Next sibling of a node.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).next_sibling
    }

    /// Previous sibling of a node.
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).prev_sibling
    }

    /// Iterator over the children of a node, in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children::new(self, id)
    }

    /// Iterator over the element children of a node, in document order.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(move |&c| self.is_element(c))
    }

    /// Iterator over the proper descendants of a node in document (pre-)order.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// Iterator over the node itself followed by its descendants.
    pub fn descendants_or_self(&self, id: NodeId) -> DescendantsOrSelf<'_> {
        DescendantsOrSelf::new(self, id)
    }

    /// Iterator over the proper ancestors of a node, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// Iterator over the node itself followed by its ancestors.
    pub fn ancestors_or_self(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(id).chain(self.ancestors(id))
    }

    /// Iterator over following siblings in document order.
    pub fn following_siblings(&self, id: NodeId) -> FollowingSiblings<'_> {
        FollowingSiblings::new(self, id)
    }

    /// Iterator over preceding siblings in reverse document order.
    pub fn preceding_siblings(&self, id: NodeId) -> PrecedingSiblings<'_> {
        PrecedingSiblings::new(self, id)
    }

    /// All siblings of a node (both directions), excluding the node itself,
    /// in document order.
    pub fn siblings(&self, id: NodeId) -> Vec<NodeId> {
        let mut before: Vec<NodeId> = self.preceding_siblings(id).collect();
        before.reverse();
        before.extend(self.following_siblings(id));
        before
    }

    /// Nodes strictly after `id` in document order that are not descendants
    /// of `id` (the XPath `following` axis), returned in document order.
    ///
    /// With the order index this is a contiguous range scan: everything
    /// pre-numbered after `id`'s subtree follows `id`.
    pub fn following(&self, id: NodeId) -> Vec<NodeId> {
        let index = self.order_index();
        match index.subtree_range(id) {
            Some(range) => index.nodes_in_order()[range.end..].to_vec(),
            None => {
                // Detached node: fall back to the structural walk.  Sort
                // structurally too — inside a detached subtree, raw id order
                // need not coincide with document order.
                let mut out = Vec::new();
                for anc in self.ancestors_or_self(id) {
                    for sib in self.following_siblings(anc) {
                        out.extend(self.descendants_or_self(sib));
                    }
                }
                out.sort_by(|&a, &b| self.document_order_unindexed(a, b));
                out
            }
        }
    }

    /// Nodes strictly before `id` in document order that are not ancestors of
    /// `id` (the XPath `preceding` axis), returned in document order.
    ///
    /// With the order index this scans the pre-order prefix before `id` and
    /// drops ancestors with an O(1) post-number test per candidate.
    pub fn preceding(&self, id: NodeId) -> Vec<NodeId> {
        let index = self.order_index();
        match (index.subtree_range(id), index.post(id)) {
            (Some(range), Some(post)) => index.nodes_in_order()[..range.start]
                .iter()
                .copied()
                // Ancestors are the prefix nodes whose interval contains
                // `id`, i.e. those with a larger post number.
                .filter(|&n| index.post(n).is_some_and(|p| p < post))
                .collect(),
            _ => {
                let mut out = Vec::new();
                for anc in self.ancestors_or_self(id) {
                    for sib in self.preceding_siblings(anc) {
                        out.extend(self.descendants_or_self(sib));
                    }
                }
                out.sort_by(|&a, &b| self.document_order_unindexed(a, b));
                out
            }
        }
    }

    /// Returns `true` if `ancestor` is a proper ancestor of `node`.
    ///
    /// O(1) via the order index once built; nodes outside the tree (freshly
    /// created or detached) fall back to walking the parent chain.
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> bool {
        match self.order_index().is_ancestor_of(ancestor, node) {
            Some(answer) => answer,
            None => self.is_ancestor_walking(ancestor, node),
        }
    }

    /// Ancestor test by walking the parent chain, without touching (or
    /// building) the order index.  Mutation primitives use this for their
    /// cycle checks so that a burst of edits never pays an index rebuild per
    /// edit.
    pub(crate) fn is_ancestor_walking(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.ancestors(node).any(|a| a == ancestor)
    }

    /// Depth of a node: the root has depth 0.  O(1) via the order index for
    /// nodes in the tree.
    pub fn depth(&self, id: NodeId) -> usize {
        match self.order_index().depth(id) {
            Some(d) => d as usize,
            None => self.ancestors(id).count(),
        }
    }

    /// 1-based position of the node among *all* children of its parent
    /// (element and text nodes alike); the root has position 1.
    pub fn child_position(&self, id: NodeId) -> usize {
        let Some(parent) = self.parent(id) else {
            return 1;
        };
        self.children(parent)
            .position(|c| c == id)
            .map(|p| p + 1)
            .unwrap_or(1)
    }

    /// 1-based position of the node among the children of its parent that
    /// share its node test (same tag for elements, text nodes counted
    /// together).  This is the index used by canonical paths.
    pub fn sibling_index(&self, id: NodeId) -> usize {
        let Some(parent) = self.parent(id) else {
            return 1;
        };
        // Interned tags make the per-sibling comparison one integer compare;
        // text nodes all carry the UNSET sentinel, which preserves "text
        // nodes are counted together" (elements always have a real symbol).
        let id_sym = self.node(id).tag_sym;
        let mut index = 0;
        for c in self.children(parent) {
            let same = self.node(c).tag_sym == id_sym;
            if same {
                index += 1;
            }
            if c == id {
                return index;
            }
        }
        1
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    /// O(1) via the order index for nodes in the tree.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        match self.order_index().subtree_size(id) {
            Some(s) => s as usize,
            None => self.descendants_or_self(id).count(),
        }
    }

    /// The least common ancestor of a non-empty set of nodes.
    ///
    /// Returns `None` if `nodes` is empty.  For a single node the node itself
    /// is returned.
    pub fn least_common_ancestor(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut iter = nodes.iter();
        let first = *iter.next()?;
        let mut path: Vec<NodeId> = self.ancestors_or_self(first).collect();
        path.reverse(); // root .. node
        for &n in iter {
            let mut other: Vec<NodeId> = self.ancestors_or_self(n).collect();
            other.reverse();
            let common = path
                .iter()
                .zip(other.iter())
                .take_while(|(a, b)| a == b)
                .count();
            path.truncate(common);
            if path.is_empty() {
                return None;
            }
        }
        path.last().copied()
    }

    /// Compares two nodes by document order (pre-order of the tree).
    ///
    /// O(1) per comparison via the order index: one array lookup per node.
    /// Nodes outside the tree (detached) sort after all tree nodes; two
    /// detached nodes are compared structurally (their order within the
    /// detached subtree), as the pre-index comparator did.
    pub fn document_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let index = self.order_index();
        match (index.position(a), index.position(b)) {
            (Some(pa), Some(pb)) => pa.cmp(&pb),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => self.document_order_unindexed(a, b),
        }
    }

    /// The pre-index comparator: compares two nodes by rebuilding both root
    /// paths (two allocations, O(depth) time per comparison).
    ///
    /// Kept as the reference implementation for the order-index property
    /// tests and the `order_index` benchmark; production code should use
    /// [`document_order`](Self::document_order).
    pub fn document_order_unindexed(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let path_a = self.path_from_root(a);
        let path_b = self.path_from_root(b);
        path_a.cmp(&path_b)
    }

    /// Sorts and deduplicates a vector of nodes into document order.
    ///
    /// When every node is in the tree (the overwhelmingly common case) the
    /// order index is fetched once and each comparison is one array lookup —
    /// no allocation inside the sort.  A set containing detached nodes falls
    /// back to the structural comparator so their relative order stays
    /// correct.
    pub fn sort_document_order(&self, nodes: &mut Vec<NodeId>) {
        if nodes.len() <= 1 {
            return;
        }
        let index = self.order_index();
        if nodes.iter().all(|&n| index.position(n).is_some()) {
            nodes.sort_unstable_by_key(|&n| index.position(n).unwrap_or(u32::MAX));
        } else {
            nodes.sort_by(|&a, &b| self.document_order(a, b));
        }
        nodes.dedup();
    }

    fn path_from_root(&self, id: NodeId) -> Vec<usize> {
        let mut path: Vec<usize> = self
            .ancestors_or_self(id)
            .map(|n| self.child_position(n))
            .collect();
        path.reverse();
        path
    }

    // ------------------------------------------------------------------
    // Text values.
    // ------------------------------------------------------------------

    /// The XPath string-value of a node: for text nodes their character data,
    /// for elements the concatenation of all descendant text nodes in
    /// document order.
    pub fn text_value(&self, id: NodeId) -> String {
        match self.data(id) {
            NodeData::Text(t) => t.clone(),
            NodeData::Element { .. } => {
                let mut out = String::new();
                for d in self.descendants(id) {
                    if let NodeData::Text(t) = self.data(d) {
                        out.push_str(t);
                    }
                }
                out
            }
        }
    }

    /// `normalize-space(.)` applied to the node's string-value: leading and
    /// trailing whitespace removed and internal whitespace runs collapsed to
    /// single spaces.
    pub fn normalized_text(&self, id: NodeId) -> String {
        normalize_space(&self.text_value(id))
    }

    /// The set of whitespace-separated words occurring in the document's
    /// entire text value and in all attribute values.  Used to check the
    /// *plausibility* of dsXPath string constants.
    pub fn vocabulary(&self) -> std::collections::BTreeSet<String> {
        let mut words = std::collections::BTreeSet::new();
        for id in self.descendants_or_self(self.root) {
            match self.data(id) {
                NodeData::Text(t) => {
                    for w in t.split_whitespace() {
                        words.insert(w.to_string());
                    }
                }
                NodeData::Element { attributes, .. } => {
                    for a in attributes {
                        for w in a.value.split_whitespace() {
                            words.insert(w.to_string());
                        }
                        words.insert(a.value.clone());
                    }
                }
            }
        }
        words
    }

    /// Returns `true` if `needle` occurs as a substring of the document's
    /// text value or of any attribute value.  This is the paper's
    /// plausibility condition for string constants.
    pub fn contains_string(&self, needle: &str) -> bool {
        if needle.is_empty() {
            return true;
        }
        for id in self.descendants_or_self(self.root) {
            match self.data(id) {
                NodeData::Text(t) => {
                    if t.contains(needle) {
                        return true;
                    }
                }
                NodeData::Element { attributes, .. } => {
                    if attributes.iter().any(|a| a.value.contains(needle)) {
                        return true;
                    }
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Convenience queries used across the workspace.
    // ------------------------------------------------------------------

    /// All live element nodes with the given tag name, in document order.
    /// Served by the tag index: no tree walk after the first lookup.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.elements_by_tag_slice(tag).to_vec()
    }

    /// [`elements_by_tag`](Self::elements_by_tag) as a slice into the tag
    /// index, resolving the tag name through *this* document's interner (an
    /// unknown name is the empty slice).  This is the only string entry
    /// point to the tag index — it guarantees the interner and the index
    /// belong to the same document.
    pub fn elements_by_tag_slice(&self, tag: &str) -> &[NodeId] {
        match self.sym(tag) {
            Some(sym) => self.tag_index().nodes_sym(sym),
            None => &[],
        }
    }

    /// [`elements_by_tag`](Self::elements_by_tag) by interned tag name, as a
    /// slice into the tag index.
    pub fn elements_by_tag_sym(&self, tag: Sym) -> &[NodeId] {
        self.tag_index().nodes_sym(tag)
    }

    /// The elements with the given tag inside the subtree of `context`
    /// (excluding `context` itself), in document order, as a slice into the
    /// tag index.
    ///
    /// This is the fast path for `descendant::tag` steps: two binary
    /// searches over the tag's pre-ordered node list select exactly the
    /// subtree range, skipping non-matching subtrees entirely.  Returns
    /// `None` when `context` is not in the tree (detached), in which case
    /// callers should walk [`descendants`](Self::descendants).
    pub fn descendants_by_tag_slice(&self, context: NodeId, tag: &str) -> Option<&[NodeId]> {
        let index = self.order_index();
        let range = index.subtree_range(context)?;
        // An unknown needle matches nothing — the interner miss is the
        // instant answer (the subtree range was still needed to tell a
        // detached context apart).
        let list = match self.sym(tag) {
            Some(sym) => self.tag_index().nodes_sym(sym),
            None => return Some(&[]),
        };
        // Every indexed tag node has a position; compare by pre number.
        let pos = |n: NodeId| index.position(n).unwrap_or(u32::MAX) as usize;
        let lo = list.partition_point(|&n| pos(n) <= range.start);
        let hi = list.partition_point(|&n| pos(n) < range.end);
        Some(&list[lo..hi])
    }

    /// The elements with the given tag inside the subtree of `context`
    /// (excluding `context` itself), in document order.  Works for detached
    /// contexts too, via a subtree walk.
    pub fn descendants_by_tag(&self, context: NodeId, tag: &str) -> Vec<NodeId> {
        match self.descendants_by_tag_slice(context, tag) {
            Some(slice) => slice.to_vec(),
            None => self
                .descendants(context)
                .filter(|&n| self.tag_name(n) == Some(tag))
                .collect(),
        }
    }

    /// First element with a matching `id` attribute, if any.
    pub fn element_by_id(&self, id_value: &str) -> Option<NodeId> {
        self.descendants(self.root)
            .find(|&n| self.attribute(n, "id") == Some(id_value))
    }

    /// All live element nodes whose `class` attribute contains the given
    /// class (whitespace separated), in document order.
    pub fn elements_by_class(&self, class: &str) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&n| {
                self.attribute(n, "class")
                    .map(|c| c.split_whitespace().any(|w| w == class))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Total number of element nodes in the document.  O(1) via the hash
    /// index (which counts elements during its bottom-up build).
    pub fn element_count(&self) -> usize {
        self.hash_index().element_count()
    }
}

/// XPath `normalize-space` on an arbitrary string.
pub fn normalize_space(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut first = true;
    for w in s.split_whitespace() {
        if !first {
            out.push(' ');
        }
        out.push_str(w);
        first = false;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{el, text};

    fn sample() -> Document {
        // <html><body><div id="main"><h4>Director:</h4>
        //   <a href="x"><span itemprop="name">Martin Scorsese</span></a>
        // </div><div class="other">noise</div></body></html>
        el("html")
            .child(
                el("body")
                    .child(
                        el("div")
                            .attr("id", "main")
                            .child(el("h4").child(text("Director:")))
                            .child(
                                el("a").attr("href", "x").child(
                                    el("span")
                                        .attr("itemprop", "name")
                                        .child(text("Martin Scorsese")),
                                ),
                            ),
                    )
                    .child(el("div").attr("class", "other").child(text("noise"))),
            )
            .into_document()
    }

    #[test]
    fn root_and_root_element() {
        let doc = sample();
        assert_eq!(doc.tag_name(doc.root()), Some(DOCUMENT_ROOT_TAG));
        let html = doc.root_element().unwrap();
        assert_eq!(doc.tag_name(html), Some("html"));
        assert_eq!(doc.parent(html), Some(doc.root()));
        assert_eq!(doc.parent(doc.root()), None);
    }

    #[test]
    fn navigation_links_are_consistent() {
        let doc = sample();
        let body = doc.elements_by_tag("body")[0];
        let divs = doc.elements_by_tag("div");
        assert_eq!(divs.len(), 2);
        assert_eq!(doc.first_child(body), Some(divs[0]));
        assert_eq!(doc.last_child(body), Some(divs[1]));
        assert_eq!(doc.next_sibling(divs[0]), Some(divs[1]));
        assert_eq!(doc.prev_sibling(divs[1]), Some(divs[0]));
        assert_eq!(doc.parent(divs[0]), Some(body));
        assert_eq!(doc.children(body).count(), 2);
    }

    #[test]
    fn descendants_in_document_order() {
        let doc = sample();
        let tags: Vec<_> = doc
            .descendants(doc.root())
            .filter_map(|n| doc.tag_name(n).map(|s| s.to_string()))
            .collect();
        assert_eq!(tags, vec!["html", "body", "div", "h4", "a", "span", "div"]);
    }

    #[test]
    fn ancestors_nearest_first() {
        let doc = sample();
        let span = doc.elements_by_tag("span")[0];
        let tags: Vec<_> = doc
            .ancestors(span)
            .filter_map(|n| doc.tag_name(n).map(|s| s.to_string()))
            .collect();
        assert_eq!(tags, vec!["a", "div", "body", "html", DOCUMENT_ROOT_TAG]);
    }

    #[test]
    fn text_value_concatenates_descendant_text() {
        let doc = sample();
        let main = doc.element_by_id("main").unwrap();
        assert_eq!(doc.text_value(main), "Director:Martin Scorsese");
        assert_eq!(doc.normalized_text(main), "Director:Martin Scorsese");
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(doc.normalized_text(span), "Martin Scorsese");
    }

    #[test]
    fn normalize_space_behaviour() {
        assert_eq!(normalize_space("  a  b\t\nc "), "a b c");
        assert_eq!(normalize_space(""), "");
        assert_eq!(normalize_space("   "), "");
    }

    #[test]
    fn sibling_index_counts_same_test_only() {
        let doc = sample();
        let divs = doc.elements_by_tag("div");
        assert_eq!(doc.sibling_index(divs[0]), 1);
        assert_eq!(doc.sibling_index(divs[1]), 2);
        let h4 = doc.elements_by_tag("h4")[0];
        assert_eq!(doc.sibling_index(h4), 1);
        let a = doc.elements_by_tag("a")[0];
        // `a` is the second child of the main div but the first `a`.
        assert_eq!(doc.child_position(a), 2);
        assert_eq!(doc.sibling_index(a), 1);
    }

    #[test]
    fn lca_of_nodes() {
        let doc = sample();
        let span = doc.elements_by_tag("span")[0];
        let h4 = doc.elements_by_tag("h4")[0];
        let main = doc.element_by_id("main").unwrap();
        assert_eq!(doc.least_common_ancestor(&[span, h4]), Some(main));
        assert_eq!(doc.least_common_ancestor(&[span]), Some(span));
        assert_eq!(doc.least_common_ancestor(&[]), None);
        let other = doc.elements_by_class("other")[0];
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.least_common_ancestor(&[span, other]), Some(body));
    }

    #[test]
    fn following_and_preceding_axes() {
        let doc = sample();
        let h4 = doc.elements_by_tag("h4")[0];
        let following = doc.following(h4);
        // The a, span, their text, the second div and its text follow h4.
        assert!(following.contains(&doc.elements_by_tag("a")[0]));
        assert!(following.contains(&doc.elements_by_tag("span")[0]));
        assert!(following.contains(&doc.elements_by_class("other")[0]));
        assert!(!following.contains(&doc.elements_by_tag("body")[0]));

        let other = doc.elements_by_class("other")[0];
        let preceding = doc.preceding(other);
        assert!(preceding.contains(&h4));
        assert!(preceding.contains(&doc.element_by_id("main").unwrap()));
        assert!(!preceding.contains(&doc.elements_by_tag("body")[0]));
    }

    #[test]
    fn document_order_comparison() {
        let doc = sample();
        let h4 = doc.elements_by_tag("h4")[0];
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(doc.document_order(h4, span), std::cmp::Ordering::Less);
        assert_eq!(doc.document_order(span, h4), std::cmp::Ordering::Greater);
        assert_eq!(doc.document_order(h4, h4), std::cmp::Ordering::Equal);
        let mut v = vec![span, h4, span];
        doc.sort_document_order(&mut v);
        assert_eq!(v, vec![h4, span]);
    }

    #[test]
    fn detached_subtree_order_is_structural_not_id_based() {
        // Inside a detached subtree, children attached in reverse allocation
        // order must still compare structurally (the (None, None) fallback),
        // not by raw node id.
        let mut doc = sample();
        let d = doc.create_element("div", vec![]);
        let first_alloc = doc.create_element("span", vec![]);
        let second_alloc = doc.create_element("span", vec![]);
        doc.append_child(d, second_alloc).unwrap();
        doc.append_child(d, first_alloc).unwrap();
        assert!(second_alloc > first_alloc);

        assert_eq!(
            doc.document_order(second_alloc, first_alloc),
            std::cmp::Ordering::Less
        );
        let mut v = vec![first_alloc, second_alloc];
        doc.sort_document_order(&mut v);
        assert_eq!(v, vec![second_alloc, first_alloc]);
        // The walking fallbacks of following/preceding sort structurally too.
        assert_eq!(doc.following(second_alloc), vec![first_alloc]);
        assert_eq!(doc.preceding(first_alloc), vec![second_alloc]);
    }

    #[test]
    fn vocabulary_and_plausibility() {
        let doc = sample();
        assert!(doc.contains_string("Martin"));
        assert!(doc.contains_string("Director:"));
        assert!(doc.contains_string("main"));
        assert!(!doc.contains_string("not-present-anywhere"));
        let vocab = doc.vocabulary();
        assert!(vocab.contains("Martin"));
        assert!(vocab.contains("name"));
    }

    #[test]
    fn counts_and_depth() {
        let doc = sample();
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(span), 5);
        assert_eq!(doc.element_count(), 8); // root + 7 elements
        assert!(doc.len() > 8); // plus text nodes
        assert!(!doc.is_empty());
        assert!(Document::new().is_empty());
    }
}
