//! Error types for the DOM crate.

use std::fmt;

/// Errors raised while building, parsing or mutating documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomError {
    /// The HTML/XML input could not be parsed.
    Parse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// A node id referred to a node that does not exist in this document.
    InvalidNodeId(u32),
    /// The requested operation is only valid on element nodes.
    NotAnElement(u32),
    /// The requested operation would detach or destroy the document root.
    CannotModifyRoot,
    /// A mutation would create a cycle (e.g. moving a node under one of its
    /// own descendants).
    WouldCreateCycle,
    /// The builder was asked to close an element but no element is open.
    BuilderUnderflow,
    /// The builder finished while elements were still open.
    BuilderUnclosed(usize),
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DomError::InvalidNodeId(id) => write!(f, "invalid node id {id}"),
            DomError::NotAnElement(id) => write!(f, "node {id} is not an element"),
            DomError::CannotModifyRoot => write!(f, "the document root cannot be modified"),
            DomError::WouldCreateCycle => {
                write!(f, "mutation would create a cycle in the tree")
            }
            DomError::BuilderUnderflow => {
                write!(f, "close_element called with no element open")
            }
            DomError::BuilderUnclosed(n) => {
                write!(f, "builder finished with {n} unclosed element(s)")
            }
        }
    }
}

impl std::error::Error for DomError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DomError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DomError::Parse {
            offset: 12,
            message: "unexpected '<'".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("unexpected"));
        assert!(DomError::InvalidNodeId(3).to_string().contains('3'));
        assert!(DomError::BuilderUnclosed(2).to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DomError>();
    }
}
