//! In-place mutation of documents.
//!
//! The page-evolution simulator (`wi-webgen`) models web sites changing over
//! time: divs are inserted or removed on the canonical path, class names are
//! renamed, whole regions are re-arranged.  These operations are implemented
//! here as safe structural edits on the arena.  Detached nodes stay in the
//! arena (ids are never reused) but are excluded from all navigation.

use crate::document::Document;
use crate::error::{DomError, Result};
use crate::node::{Attribute, NodeData, NodeId};

impl Document {
    /// Appends `child` as the last child of `parent`.
    ///
    /// `child` must be detached (freshly created or previously removed).
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.insert_child_at_end(parent, child)
    }

    /// Inserts `child` as the first child of `parent`.
    pub fn prepend_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check(parent)?;
        self.check_attachable(parent, child)?;
        self.invalidate_indexes();
        let old_first = self.node(parent).first_child;
        {
            let c = self.node_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = None;
            c.next_sibling = old_first;
            c.detached = false;
        }
        if let Some(f) = old_first {
            self.node_mut(f).prev_sibling = Some(child);
        } else {
            self.node_mut(parent).last_child = Some(child);
        }
        self.node_mut(parent).first_child = Some(child);
        Ok(())
    }

    fn insert_child_at_end(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check(parent)?;
        self.check_attachable(parent, child)?;
        self.invalidate_indexes();
        let old_last = self.node(parent).last_child;
        {
            let c = self.node_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = old_last;
            c.next_sibling = None;
            c.detached = false;
        }
        if let Some(l) = old_last {
            self.node_mut(l).next_sibling = Some(child);
        } else {
            self.node_mut(parent).first_child = Some(child);
        }
        self.node_mut(parent).last_child = Some(child);
        Ok(())
    }

    /// Inserts `node` immediately before `reference` (they become siblings).
    pub fn insert_before(&mut self, reference: NodeId, node: NodeId) -> Result<()> {
        self.check(reference)?;
        let parent = self.parent(reference).ok_or(DomError::CannotModifyRoot)?;
        self.check_attachable(parent, node)?;
        self.invalidate_indexes();
        let prev = self.node(reference).prev_sibling;
        {
            let n = self.node_mut(node);
            n.parent = Some(parent);
            n.prev_sibling = prev;
            n.next_sibling = Some(reference);
            n.detached = false;
        }
        self.node_mut(reference).prev_sibling = Some(node);
        match prev {
            Some(p) => self.node_mut(p).next_sibling = Some(node),
            None => self.node_mut(parent).first_child = Some(node),
        }
        Ok(())
    }

    /// Inserts `node` immediately after `reference` (they become siblings).
    pub fn insert_after(&mut self, reference: NodeId, node: NodeId) -> Result<()> {
        self.check(reference)?;
        let parent = self.parent(reference).ok_or(DomError::CannotModifyRoot)?;
        self.check_attachable(parent, node)?;
        self.invalidate_indexes();
        let next = self.node(reference).next_sibling;
        {
            let n = self.node_mut(node);
            n.parent = Some(parent);
            n.prev_sibling = Some(reference);
            n.next_sibling = next;
            n.detached = false;
        }
        self.node_mut(reference).next_sibling = Some(node);
        match next {
            Some(nx) => self.node_mut(nx).prev_sibling = Some(node),
            None => self.node_mut(parent).last_child = Some(node),
        }
        Ok(())
    }

    fn check_attachable(&self, parent: NodeId, node: NodeId) -> Result<()> {
        if node.index() >= self.nodes.len() {
            return Err(DomError::InvalidNodeId(node.index() as u32));
        }
        if node == self.root() {
            return Err(DomError::CannotModifyRoot);
        }
        // Attaching a node that is an ancestor of the parent would create a
        // cycle.
        if parent == node || self.is_ancestor_walking(node, parent) {
            return Err(DomError::WouldCreateCycle);
        }
        Ok(())
    }

    /// Detaches a node (and its whole subtree) from the tree.
    ///
    /// The subtree stays allocated and can be re-attached later with one of
    /// the insertion methods.
    pub fn detach(&mut self, id: NodeId) -> Result<()> {
        self.check(id)?;
        if id == self.root() {
            return Err(DomError::CannotModifyRoot);
        }
        self.invalidate_indexes();
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = prev {
            self.node_mut(p).next_sibling = next;
        } else if let Some(par) = parent {
            self.node_mut(par).first_child = next;
        }
        if let Some(nx) = next {
            self.node_mut(nx).prev_sibling = prev;
        } else if let Some(par) = parent {
            self.node_mut(par).last_child = prev;
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
        Ok(())
    }

    /// Removes a node and its subtree permanently: the nodes are detached and
    /// marked as dead so they no longer appear in any traversal.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<()> {
        self.detach(id)?;
        self.invalidate_indexes();
        let ids: Vec<NodeId> = self.descendants_or_self(id).collect();
        for d in ids {
            self.node_mut(d).detached = true;
        }
        Ok(())
    }

    /// Renames an element node.
    pub fn rename_element(&mut self, id: NodeId, new_tag: impl Into<String>) -> Result<()> {
        self.check(id)?;
        self.invalidate_indexes();
        match &mut self.node_mut(id).data {
            NodeData::Element { tag, .. } => {
                *tag = new_tag.into();
            }
            NodeData::Text(_) => return Err(DomError::NotAnElement(id.index() as u32)),
        }
        self.sync_syms(id);
        Ok(())
    }

    /// Sets (or replaces) an attribute on an element node.
    pub fn set_attribute(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<()> {
        self.check(id)?;
        self.invalidate_indexes();
        let name = name.into();
        let value = value.into();
        match &mut self.node_mut(id).data {
            NodeData::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attributes.push(Attribute::new(name, value));
                }
            }
            NodeData::Text(_) => return Err(DomError::NotAnElement(id.index() as u32)),
        }
        self.sync_syms(id);
        Ok(())
    }

    /// Removes an attribute from an element node; returns whether it existed.
    pub fn remove_attribute(&mut self, id: NodeId, name: &str) -> Result<bool> {
        self.check(id)?;
        self.invalidate_indexes();
        let existed = match &mut self.node_mut(id).data {
            NodeData::Element { attributes, .. } => {
                let before = attributes.len();
                attributes.retain(|a| a.name != name);
                attributes.len() != before
            }
            NodeData::Text(_) => return Err(DomError::NotAnElement(id.index() as u32)),
        };
        self.sync_syms(id);
        Ok(existed)
    }

    /// Replaces the character data of a text node.
    pub fn set_text(&mut self, id: NodeId, content: impl Into<String>) -> Result<()> {
        self.check(id)?;
        self.invalidate_indexes();
        match &mut self.node_mut(id).data {
            NodeData::Text(t) => {
                *t = content.into();
                Ok(())
            }
            NodeData::Element { .. } => Err(DomError::NotAnElement(id.index() as u32)),
        }
    }

    /// Wraps `id` in a freshly created element with the given tag and
    /// attributes: the new element takes `id`'s place and `id` becomes its
    /// only child.  Returns the id of the wrapper element.
    pub fn wrap_in_element(
        &mut self,
        id: NodeId,
        tag: impl Into<String>,
        attributes: Vec<Attribute>,
    ) -> Result<NodeId> {
        self.check(id)?;
        if id == self.root() {
            return Err(DomError::CannotModifyRoot);
        }
        let wrapper = self.create_element(tag, attributes);
        self.insert_before(id, wrapper)?;
        self.detach(id)?;
        self.append_child(wrapper, id)?;
        Ok(wrapper)
    }

    /// Removes an element but keeps its children, splicing them into the
    /// position the element occupied (the inverse of [`wrap_in_element`]).
    ///
    /// [`wrap_in_element`]: Document::wrap_in_element
    pub fn unwrap_element(&mut self, id: NodeId) -> Result<()> {
        self.check(id)?;
        if id == self.root() {
            return Err(DomError::CannotModifyRoot);
        }
        let children: Vec<NodeId> = self.children(id).collect();
        let mut reference = id;
        for c in children {
            self.detach(c)?;
            self.insert_after(reference, c)?;
            reference = c;
        }
        self.remove_subtree(id)?;
        Ok(())
    }

    /// Deep-copies the subtree rooted at `src` of `source` into this document
    /// under `parent`, returning the id of the copied root.
    pub fn import_subtree(
        &mut self,
        source: &Document,
        src: NodeId,
        parent: NodeId,
    ) -> Result<NodeId> {
        self.check(parent)?;
        source.check(src)?;
        let data = source.data(src).clone();
        let new_id = self.alloc(data);
        self.append_child(parent, new_id)?;
        let children: Vec<NodeId> = source.children(src).collect();
        for c in children {
            self.import_subtree(source, c, new_id)?;
        }
        Ok(new_id)
    }

    /// Deep-copies the subtree rooted at `src` *within this document*,
    /// appending the copy under `parent`.
    ///
    /// The copy reflects the subtree as it was *before* the call, so cloning
    /// under `src` itself (or any node inside the cloned subtree) is well
    /// defined and terminates.
    pub fn clone_subtree(&mut self, src: NodeId, parent: NodeId) -> Result<NodeId> {
        self.check(src)?;
        self.check(parent)?;
        let snapshot = self.snapshot_subtree(src);
        self.build_snapshot(&snapshot, parent)
    }

    fn snapshot_subtree(&self, id: NodeId) -> SubtreeSnapshot {
        SubtreeSnapshot {
            data: self.data(id).clone(),
            children: self
                .children(id)
                .map(|c| self.snapshot_subtree(c))
                .collect(),
        }
    }

    fn build_snapshot(&mut self, snapshot: &SubtreeSnapshot, parent: NodeId) -> Result<NodeId> {
        let id = self.alloc(snapshot.data.clone());
        self.append_child(parent, id)?;
        for child in &snapshot.children {
            self.build_snapshot(child, id)?;
        }
        Ok(id)
    }
}

/// An owned copy of a subtree's payloads, taken before a clone mutates the
/// tree.
struct SubtreeSnapshot {
    data: NodeData,
    children: Vec<SubtreeSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::el;

    fn base() -> Document {
        el("html")
            .child(
                el("body")
                    .child(el("div").attr("id", "a").text_child("A"))
                    .child(el("div").attr("id", "b").text_child("B")),
            )
            .into_document()
    }

    #[test]
    fn insert_before_and_after() {
        let mut doc = base();
        let b = doc.element_by_id("b").unwrap();
        let new1 = doc.create_element("div", vec![Attribute::new("id", "x")]);
        doc.insert_before(b, new1).unwrap();
        let new2 = doc.create_element("div", vec![Attribute::new("id", "y")]);
        doc.insert_after(b, new2).unwrap();
        let body = doc.elements_by_tag("body")[0];
        let ids: Vec<_> = doc
            .children(body)
            .filter_map(|c| doc.attribute(c, "id").map(String::from))
            .collect();
        assert_eq!(ids, vec!["a", "x", "b", "y"]);
    }

    #[test]
    fn prepend_and_append() {
        let mut doc = base();
        let body = doc.elements_by_tag("body")[0];
        let first = doc.create_element("nav", vec![]);
        doc.prepend_child(body, first).unwrap();
        let last = doc.create_element("footer", vec![]);
        doc.append_child(body, last).unwrap();
        let tags: Vec<_> = doc
            .children(body)
            .filter_map(|c| doc.tag_name(c).map(String::from))
            .collect();
        assert_eq!(tags, vec!["nav", "div", "div", "footer"]);
        assert_eq!(doc.first_child(body), Some(first));
        assert_eq!(doc.last_child(body), Some(last));
    }

    #[test]
    fn remove_subtree_hides_nodes() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        let before = doc.len();
        doc.remove_subtree(a).unwrap();
        assert!(doc.len() < before);
        assert!(!doc.contains(a));
        assert!(doc.element_by_id("a").is_none());
        assert!(doc.element_by_id("b").is_some());
        // Remaining sibling links are consistent.
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.children(body).count(), 1);
    }

    #[test]
    fn detach_and_reattach() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        let b = doc.element_by_id("b").unwrap();
        doc.detach(a).unwrap();
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.children(body).count(), 1);
        doc.insert_after(b, a).unwrap();
        let ids: Vec<_> = doc
            .children(body)
            .filter_map(|c| doc.attribute(c, "id").map(String::from))
            .collect();
        assert_eq!(ids, vec!["b", "a"]);
    }

    #[test]
    fn attribute_mutations() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        doc.set_attribute(a, "class", "primary").unwrap();
        assert_eq!(doc.attribute(a, "class"), Some("primary"));
        doc.set_attribute(a, "class", "secondary").unwrap();
        assert_eq!(doc.attribute(a, "class"), Some("secondary"));
        assert!(doc.remove_attribute(a, "class").unwrap());
        assert!(!doc.remove_attribute(a, "class").unwrap());
        let t = doc.children(a).next().unwrap();
        assert!(doc.set_attribute(t, "x", "y").is_err());
    }

    #[test]
    fn rename_and_set_text() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        doc.rename_element(a, "section").unwrap();
        assert_eq!(doc.tag_name(a), Some("section"));
        let t = doc.children(a).next().unwrap();
        doc.set_text(t, "New text").unwrap();
        assert_eq!(doc.normalized_text(a), "New text");
        assert!(doc.rename_element(t, "div").is_err());
        assert!(doc.set_text(a, "x").is_err());
    }

    #[test]
    fn wrap_and_unwrap() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        let wrapper = doc
            .wrap_in_element(a, "section", vec![Attribute::new("class", "wrap")])
            .unwrap();
        assert_eq!(doc.parent(a), Some(wrapper));
        assert_eq!(doc.tag_name(doc.parent(wrapper).unwrap()), Some("body"));
        // Position preserved: wrapper is first child of body.
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(doc.first_child(body), Some(wrapper));

        doc.unwrap_element(wrapper).unwrap();
        assert_eq!(doc.parent(a), Some(body));
        assert_eq!(doc.first_child(body), Some(a));
        assert!(!doc.contains(wrapper));
    }

    #[test]
    fn cycle_and_root_protection() {
        let mut doc = base();
        let body = doc.elements_by_tag("body")[0];
        let html = doc.elements_by_tag("html")[0];
        assert_eq!(
            doc.append_child(body, html),
            Err(DomError::WouldCreateCycle)
        );
        assert_eq!(doc.detach(doc.root()), Err(DomError::CannotModifyRoot));
        let root = doc.root();
        assert_eq!(
            doc.append_child(body, root),
            Err(DomError::CannotModifyRoot)
        );
    }

    #[test]
    fn import_subtree_between_documents() {
        let src = el("div")
            .attr("class", "ad")
            .child(el("img").attr("src", "banner.png"))
            .into_document();
        let src_div = src.elements_by_tag("div")[0];
        let mut dst = base();
        let body = dst.elements_by_tag("body")[0];
        let copied = dst.import_subtree(&src, src_div, body).unwrap();
        assert_eq!(dst.attribute(copied, "class"), Some("ad"));
        assert_eq!(dst.elements_by_tag("img").len(), 1);
        // Source untouched.
        assert_eq!(src.elements_by_tag("img").len(), 1);
    }

    #[test]
    fn clone_subtree_within_document() {
        let mut doc = base();
        let a = doc.element_by_id("a").unwrap();
        let body = doc.elements_by_tag("body")[0];
        let copy = doc.clone_subtree(a, body).unwrap();
        assert_ne!(copy, a);
        assert_eq!(doc.elements_by_tag("div").len(), 3);
        assert_eq!(doc.normalized_text(copy), "A");
    }

    #[test]
    fn clone_subtree_under_itself_terminates() {
        // Cloning a node under itself copies the subtree as it was before the
        // call (one new child, no runaway recursion).
        let mut doc = base();
        let body = doc.elements_by_tag("body")[0];
        let divs_before = doc.elements_by_tag("div").len();
        let copy = doc.clone_subtree(body, body).unwrap();
        assert_eq!(doc.parent(copy), Some(body));
        assert_eq!(doc.tag_name(copy), Some("body"));
        assert_eq!(doc.elements_by_tag("div").len(), divs_before * 2);
    }

    #[test]
    fn every_mutation_op_bumps_the_epoch() {
        // The order/tag indexes are only correct if *every* mutating
        // operation invalidates them; enumerate the full mutation surface.
        let mut doc = base();
        let mut last = doc.order_epoch();
        let expect_bump = |doc: &Document, op: &str, last: &mut u64| {
            assert!(doc.order_epoch() > *last, "{op} did not bump the epoch");
            *last = doc.order_epoch();
        };

        let a = doc.element_by_id("a").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let body = doc.elements_by_tag("body")[0];

        let fresh = doc.create_element("div", vec![]);
        expect_bump(&doc, "create_element", &mut last);
        doc.append_child(body, fresh).unwrap();
        expect_bump(&doc, "append_child", &mut last);
        let fresh2 = doc.create_text("t");
        expect_bump(&doc, "create_text", &mut last);
        doc.prepend_child(fresh, fresh2).unwrap();
        expect_bump(&doc, "prepend_child", &mut last);
        let n1 = doc.create_element("p", vec![]);
        last = doc.order_epoch();
        doc.insert_before(b, n1).unwrap();
        expect_bump(&doc, "insert_before", &mut last);
        let n2 = doc.create_element("p", vec![]);
        last = doc.order_epoch();
        doc.insert_after(b, n2).unwrap();
        expect_bump(&doc, "insert_after", &mut last);
        doc.detach(n1).unwrap();
        expect_bump(&doc, "detach", &mut last);
        doc.remove_subtree(n2).unwrap();
        expect_bump(&doc, "remove_subtree", &mut last);
        doc.rename_element(a, "section").unwrap();
        expect_bump(&doc, "rename_element", &mut last);
        doc.set_attribute(a, "k", "v").unwrap();
        expect_bump(&doc, "set_attribute", &mut last);
        doc.remove_attribute(a, "k").unwrap();
        expect_bump(&doc, "remove_attribute", &mut last);
        let t = doc.children(a).next().unwrap();
        doc.set_text(t, "x").unwrap();
        expect_bump(&doc, "set_text", &mut last);
        doc.wrap_in_element(a, "div", vec![]).unwrap();
        expect_bump(&doc, "wrap_in_element", &mut last);
        doc.unwrap_element(doc.parent(a).unwrap()).unwrap();
        expect_bump(&doc, "unwrap_element", &mut last);
        doc.clone_subtree(a, body).unwrap();
        expect_bump(&doc, "clone_subtree", &mut last);
        let other = base();
        let src = other.element_by_id("a").unwrap();
        doc.import_subtree(&other, src, body).unwrap();
        expect_bump(&doc, "import_subtree", &mut last);

        // And a queried index always matches the current epoch.
        assert_eq!(doc.order_index().epoch(), doc.order_epoch());
        assert_eq!(doc.tag_index().epoch(), doc.order_epoch());
    }

    #[test]
    fn clone_subtree_under_a_descendant_copies_the_old_state() {
        let mut doc = base();
        let body = doc.elements_by_tag("body")[0];
        let a = doc.element_by_id("a").unwrap();
        let nodes_in_body = doc.descendants_or_self(body).count();
        let copy = doc.clone_subtree(body, a).unwrap();
        assert_eq!(doc.parent(copy), Some(a));
        // The copy contains exactly the pre-clone body subtree.
        assert_eq!(doc.descendants_or_self(copy).count(), nodes_in_body);
    }
}
