//! Axis iterators over [`Document`] trees.
//!
//! Each iterator is a thin cursor over the parent/child/sibling links stored
//! in the arena; no allocation is performed while iterating (except for the
//! `following`/`preceding` helpers on [`Document`] which materialise their
//! result).

use crate::document::Document;
use crate::node::NodeId;

/// Iterator over the children of a node in document order.
#[derive(Debug, Clone)]
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Children<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        Children {
            doc,
            next: doc.first_child(of),
        }
    }
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.next_sibling(current);
        Some(current)
    }
}

/// Iterator over the proper ancestors of a node, nearest first, ending at the
/// document root.
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        Ancestors {
            doc,
            next: doc.parent(of),
        }
    }
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.parent(current);
        Some(current)
    }
}

/// Iterator over the following siblings of a node in document order.
#[derive(Debug, Clone)]
pub struct FollowingSiblings<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> FollowingSiblings<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        FollowingSiblings {
            doc,
            next: doc.next_sibling(of),
        }
    }
}

impl<'a> Iterator for FollowingSiblings<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.next_sibling(current);
        Some(current)
    }
}

/// Iterator over the preceding siblings of a node, in **reverse** document
/// order (nearest sibling first), matching XPath's preceding-sibling axis
/// orientation.
#[derive(Debug, Clone)]
pub struct PrecedingSiblings<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> PrecedingSiblings<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        PrecedingSiblings {
            doc,
            next: doc.prev_sibling(of),
        }
    }
}

impl<'a> Iterator for PrecedingSiblings<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.prev_sibling(current);
        Some(current)
    }
}

/// Depth-first pre-order iterator over the proper descendants of a node.
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    doc: &'a Document,
    origin: NodeId,
    next: Option<NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        Descendants {
            doc,
            origin: of,
            next: doc.first_child(of),
        }
    }

    fn advance(&self, from: NodeId) -> Option<NodeId> {
        // Pre-order: first child, else next sibling, else climb until a next
        // sibling exists, stopping at the origin.
        if let Some(c) = self.doc.first_child(from) {
            return Some(c);
        }
        let mut current = from;
        loop {
            if current == self.origin {
                return None;
            }
            if let Some(s) = self.doc.next_sibling(current) {
                return Some(s);
            }
            current = self.doc.parent(current)?;
        }
    }
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.advance(current);
        Some(current)
    }
}

/// Pre-order iterator yielding a node followed by its descendants.
#[derive(Debug, Clone)]
pub struct DescendantsOrSelf<'a> {
    first: Option<NodeId>,
    rest: Descendants<'a>,
}

impl<'a> DescendantsOrSelf<'a> {
    pub(crate) fn new(doc: &'a Document, of: NodeId) -> Self {
        DescendantsOrSelf {
            first: Some(of),
            rest: Descendants::new(doc, of),
        }
    }
}

impl<'a> Iterator for DescendantsOrSelf<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if let Some(f) = self.first.take() {
            return Some(f);
        }
        self.rest.next()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{el, text};
    use crate::Document;

    fn doc() -> Document {
        el("html")
            .child(
                el("body")
                    .child(el("ul").child(el("li").child(text("a"))).child(el("li")))
                    .child(el("p").child(text("x"))),
            )
            .into_document()
    }

    #[test]
    fn children_iterates_in_order() {
        let d = doc();
        let body = d.elements_by_tag("body")[0];
        let tags: Vec<_> = d
            .children(body)
            .filter_map(|n| d.tag_name(n).map(String::from))
            .collect();
        assert_eq!(tags, vec!["ul", "p"]);
    }

    #[test]
    fn descendants_preorder() {
        let d = doc();
        let body = d.elements_by_tag("body")[0];
        let names: Vec<_> = d
            .descendants(body)
            .map(|n| {
                d.tag_name(n)
                    .map(String::from)
                    .unwrap_or_else(|| format!("text:{}", d.text_content(n).unwrap()))
            })
            .collect();
        assert_eq!(names, vec!["ul", "li", "text:a", "li", "p", "text:x"]);
    }

    #[test]
    fn descendants_or_self_includes_origin() {
        let d = doc();
        let ul = d.elements_by_tag("ul")[0];
        let all: Vec<_> = d.descendants_or_self(ul).collect();
        assert_eq!(all[0], ul);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn descendants_of_leaf_is_empty() {
        let d = doc();
        let lis = d.elements_by_tag("li");
        assert_eq!(d.descendants(lis[1]).count(), 0);
    }

    #[test]
    fn sibling_iterators() {
        let d = doc();
        let lis = d.elements_by_tag("li");
        assert_eq!(
            d.following_siblings(lis[0]).collect::<Vec<_>>(),
            vec![lis[1]]
        );
        assert_eq!(
            d.preceding_siblings(lis[1]).collect::<Vec<_>>(),
            vec![lis[0]]
        );
        assert!(d.following_siblings(lis[1]).next().is_none());
        assert!(d.preceding_siblings(lis[0]).next().is_none());
    }

    #[test]
    fn ancestors_terminate_at_root() {
        let d = doc();
        let li = d.elements_by_tag("li")[0];
        let chain: Vec<_> = d.ancestors(li).collect();
        assert_eq!(*chain.last().unwrap(), d.root());
        assert_eq!(chain.len(), 4); // ul, body, html, #document
    }

    #[test]
    fn preceding_siblings_reverse_document_order() {
        let d = el("r")
            .child(el("a"))
            .child(el("b"))
            .child(el("c"))
            .into_document();
        let c = d.elements_by_tag("c")[0];
        let tags: Vec<_> = d
            .preceding_siblings(c)
            .filter_map(|n| d.tag_name(n).map(String::from))
            .collect();
        assert_eq!(tags, vec!["b", "a"]);
    }
}
