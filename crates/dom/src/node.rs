//! Node identifiers and node payloads.
//!
//! A [`Document`](crate::Document) stores all nodes in a single arena
//! (`Vec<NodeData>`).  Nodes are referred to by [`NodeId`], a thin wrapper
//! around the arena index.  Two kinds of nodes exist in the tree proper:
//! element nodes and text nodes.  Attributes are not tree nodes; they are
//! stored inline on their owning element (mirroring how the paper treats the
//! `attribute` axis as a terminal step).

use crate::intern::Sym;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`Document`](crate::Document) arena.
///
/// `NodeId`s are only meaningful relative to the document that produced them.
/// They are cheap to copy and hash, and are ordered by document (pre-)order of
/// creation, which coincides with document order for parsed and built
/// documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw arena index of this node id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a node id from a raw index.
    ///
    /// This is intended for serialization round-trips and testing; a raw id is
    /// only valid for the document it originated from.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A single attribute of an element node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (lower-cased by the parser, kept verbatim by builders).
    pub name: String,
    /// Attribute value (entity-decoded by the parser).
    pub value: String,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// The kind of a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element node such as `<div class="x">`.
    Element,
    /// A text node.
    Text,
}

/// The payload of a node: either an element (tag name plus attributes) or a
/// text node (character data).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeData {
    /// Element payload.
    Element {
        /// Tag name, e.g. `div`.
        tag: String,
        /// Attributes in insertion order.
        attributes: Vec<Attribute>,
    },
    /// Text payload.
    Text(
        /// The character data of the node.
        String,
    ),
}

impl NodeData {
    /// Returns the kind of this payload.
    pub fn kind(&self) -> NodeKind {
        match self {
            NodeData::Element { .. } => NodeKind::Element,
            NodeData::Text(_) => NodeKind::Text,
        }
    }

    /// Returns the tag name if this is an element.
    pub fn tag(&self) -> Option<&str> {
        match self {
            NodeData::Element { tag, .. } => Some(tag),
            NodeData::Text(_) => None,
        }
    }

    /// Returns the text content if this is a text node.
    pub fn text(&self) -> Option<&str> {
        match self {
            NodeData::Text(t) => Some(t),
            NodeData::Element { .. } => None,
        }
    }

    /// Returns the attributes if this is an element (empty slice for text).
    pub fn attributes(&self) -> &[Attribute] {
        match self {
            NodeData::Element { attributes, .. } => attributes,
            NodeData::Text(_) => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes()
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }
}

/// Internal arena slot: payload plus structural links.
///
/// The sibling/child links implement a classic first-child/next-sibling tree
/// with additional `prev_sibling` and `last_child` pointers so that all four
/// sibling-related axes are O(1) per step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Node {
    pub(crate) data: NodeData,
    /// Interned tag name ([`Sym::UNSET`] for text nodes).  Kept in sync with
    /// `data` by `Document::sync_syms`, which the arena allocator and every
    /// payload-mutating operation call; see [`crate::intern`].
    pub(crate) tag_sym: Sym,
    /// Interned `(name, value)` of each attribute, parallel to
    /// `data.attributes()`.  Same sync contract as `tag_sym`.
    pub(crate) attr_syms: Vec<(Sym, Sym)>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    /// True once the node has been detached by a mutation; detached nodes are
    /// skipped by iterators that walk the arena directly.
    pub(crate) detached: bool,
}

impl Node {
    pub(crate) fn new(data: NodeData) -> Self {
        Node {
            data,
            tag_sym: Sym::UNSET,
            attr_syms: Vec::new(),
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            detached: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn node_data_accessors() {
        let el = NodeData::Element {
            tag: "div".into(),
            attributes: vec![Attribute::new("id", "main"), Attribute::new("class", "x")],
        };
        assert_eq!(el.kind(), NodeKind::Element);
        assert_eq!(el.tag(), Some("div"));
        assert_eq!(el.text(), None);
        assert_eq!(el.attribute("id"), Some("main"));
        assert_eq!(el.attribute("class"), Some("x"));
        assert_eq!(el.attribute("missing"), None);
        assert_eq!(el.attributes().len(), 2);

        let txt = NodeData::Text("hello".into());
        assert_eq!(txt.kind(), NodeKind::Text);
        assert_eq!(txt.tag(), None);
        assert_eq!(txt.text(), Some("hello"));
        assert!(txt.attributes().is_empty());
        assert_eq!(txt.attribute("id"), None);
    }

    #[test]
    fn node_ids_are_ordered() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
