//! # wi-bench — benchmark support crate
//!
//! The Criterion benchmark targets live under `benches/`; one target per
//! table / figure of the paper (see DESIGN.md for the index), plus
//! micro-benchmarks of the substrates and ablations of the design choices.
//! This library only re-exports the pieces the benches share.

#![deny(missing_docs)]

pub use wi_eval::Scale;

/// The scale used by the Criterion benches: tiny, so a full `cargo bench`
/// terminates in minutes while still exercising every experiment end-to-end
/// (the full-scale numbers are produced by `run_experiments`, not by the
/// benches).
pub fn bench_scale() -> Scale {
    Scale::tiny()
}
