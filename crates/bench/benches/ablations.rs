//! Ablation benches for the design choices DESIGN.md calls out:
//! the decay factor δ, the no-predicate penalty, sideways checks, and the
//! best-K bound.  Each bench measures the induction cost under the variant;
//! the quality impact is reported by `run_experiments params`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wi_induction::config::TextPolicy;
use wi_induction::{InductionConfig, Sample, WrapperInducer};
use wi_scoring::ScoringParams;
use wi_webgen::date::Day;
use wi_webgen::site::PageKind;
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

fn task() -> WrapperTask {
    WrapperTask::new(
        wi_webgen::site::Site::new(Vertical::Travel, 21),
        0,
        PageKind::Detail,
        TargetRole::ListTitles,
    )
}

fn run_with_config(c: &mut Criterion, name: &str, config: InductionConfig) {
    let task = task();
    c.bench_function(name, |b| {
        b.iter_batched(
            || task.page_with_targets(Day(0)),
            |(doc, targets)| {
                let inducer = WrapperInducer::new(config.clone());
                let sample = Sample::from_root(&doc, &targets);
                inducer.induce(&[sample])
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_decay_variants(c: &mut Criterion) {
    for decay in [0.5, 2.5, 5.0] {
        let config = InductionConfig::default()
            .with_k(5)
            .with_params(ScoringParams::paper_defaults().with_decay(decay));
        run_with_config(c, &format!("ablation_decay_{decay}"), config);
    }
}

fn bench_no_predicate_penalty(c: &mut Criterion) {
    let config = InductionConfig::default()
        .with_k(5)
        .with_params(ScoringParams::paper_defaults().with_no_predicate_penalty(0.0));
    run_with_config(c, "ablation_no_predicate_penalty_off", config);
}

fn bench_uniform_scores(c: &mut Criterion) {
    let config = InductionConfig::default()
        .with_k(5)
        .with_params(ScoringParams::uniform());
    run_with_config(c, "ablation_uniform_scores", config);
}

fn bench_sideways_disabled(c: &mut Criterion) {
    let config = InductionConfig::default().with_k(5).with_sideways(false);
    run_with_config(c, "ablation_sideways_disabled", config);
}

fn bench_k_sweep(c: &mut Criterion) {
    for k in [1usize, 5, 10, 20] {
        let config = InductionConfig::default().with_k(k);
        run_with_config(c, &format!("ablation_best_k_{k}"), config);
    }
}

fn bench_text_policy(c: &mut Criterion) {
    let config = InductionConfig::default()
        .with_k(5)
        .with_text_policy(TextPolicy::Deny);
    run_with_config(c, "ablation_text_predicates_denied", config);
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_decay_variants, bench_no_predicate_penalty, bench_uniform_scores,
              bench_sideways_disabled, bench_k_sweep, bench_text_policy
}
criterion_main!(ablations);
