//! Micro-benchmarks of the substrates: HTML parsing, XPath evaluation,
//! scoring, canonical paths and single-sample induction.  These are the
//! components whose cost dominates the experiment harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wi_dom::{parse_html, to_html};
use wi_induction::{Sample, WrapperInducer};
use wi_scoring::{score_query, ScoringParams};
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_xpath::{canonical_path, evaluate, parse_query};

fn sample_page_html() -> String {
    let site = Site::new(Vertical::Movies, 7);
    let doc = site.render(0, Day(0), PageKind::Detail);
    to_html(&doc)
}

fn bench_parse_html(c: &mut Criterion) {
    let html = sample_page_html();
    c.bench_function("dom_parse_html_page", |b| {
        b.iter(|| parse_html(&html).unwrap())
    });
}

fn bench_xpath_evaluate(c: &mut Criterion) {
    let html = sample_page_html();
    let doc = parse_html(&html).unwrap();
    let q = parse_query(
        r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
    )
    .unwrap();
    c.bench_function("xpath_evaluate_two_steps", |b| {
        b.iter(|| evaluate(&q, &doc, doc.root()))
    });
}

fn bench_canonical_path(c: &mut Criterion) {
    let html = sample_page_html();
    let doc = parse_html(&html).unwrap();
    let span = doc
        .descendants(doc.root())
        .filter(|&n| doc.tag_name(n) == Some("span"))
        .last()
        .unwrap();
    c.bench_function("xpath_canonical_path", |b| {
        b.iter(|| canonical_path(&doc, span))
    });
}

fn bench_scoring(c: &mut Criterion) {
    let params = ScoringParams::paper_defaults();
    let q = parse_query(
        r#"descendant::div[@class="contentSmLeft"]/descendant::img[contains(@class,"adv")][1]"#,
    )
    .unwrap();
    c.bench_function("scoring_score_query", |b| {
        b.iter(|| score_query(&q, &params))
    });
}

fn bench_page_generation(c: &mut Criterion) {
    let site = Site::new(Vertical::News, 3);
    c.bench_function("webgen_render_page", |b| {
        b.iter(|| site.render(0, Day(400), PageKind::Detail))
    });
}

fn bench_single_induction(c: &mut Criterion) {
    let site = Site::new(Vertical::Movies, 11);
    let task = wi_webgen::tasks::WrapperTask::new(
        site,
        0,
        PageKind::Detail,
        wi_webgen::tasks::TargetRole::PrimaryValue,
    );
    c.bench_function("induction_single_node", |b| {
        b.iter_batched(
            || task.page_with_targets(Day(0)),
            |(doc, targets)| {
                let inducer = WrapperInducer::with_k(5);
                let sample = Sample::from_root(&doc, &targets);
                inducer.induce(&[sample])
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_multi_induction(c: &mut Criterion) {
    let site = Site::new(Vertical::News, 12);
    let task = wi_webgen::tasks::WrapperTask::new(
        site,
        0,
        PageKind::Detail,
        wi_webgen::tasks::TargetRole::ListTitles,
    );
    c.bench_function("induction_multi_node", |b| {
        b.iter_batched(
            || task.page_with_targets(Day(0)),
            |(doc, targets)| {
                let inducer = WrapperInducer::with_k(5);
                let sample = Sample::from_root(&doc, &targets);
                inducer.induce(&[sample])
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_batch_extraction(c: &mut Criterion) {
    use wi_induction::Extractor;
    let site = Site::new(Vertical::Movies, 11);
    let task = wi_webgen::tasks::WrapperTask::new(
        site.clone(),
        0,
        PageKind::Detail,
        wi_webgen::tasks::TargetRole::PrimaryValue,
    );
    let (doc, targets) = task.page_with_targets(Day(0));
    let wrapper = WrapperInducer::with_k(5)
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds");
    let docs: Vec<_> = (0..64)
        .map(|step| site.render(0, Day(step * 30), PageKind::Detail))
        .collect();
    c.bench_function("extract_batch_parallel_64_docs", |b| {
        b.iter(|| wrapper.extract_batch(&docs))
    });
    c.bench_function("extract_batch_sequential_64_docs", |b| {
        b.iter(|| wrapper.extract_batch_sequential(&docs))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_parse_html, bench_xpath_evaluate, bench_canonical_path,
              bench_scoring, bench_page_generation, bench_single_induction,
              bench_multi_induction, bench_batch_extraction
}
criterion_main!(micro);
