//! Criterion benches that regenerate every table and figure of the paper's
//! evaluation (at the reduced "quick" scale so a full `cargo bench` run
//! terminates in reasonable time).  The printed Criterion measurement is the
//! wall-clock cost of regenerating the table/figure; the actual numbers of
//! the reproduction are produced by `run_experiments` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use wi_bench::bench_scale;
use wi_eval::experiments;

fn bench_sota_dalvi(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("sota_dalvi_success_ratio", |b| {
        b.iter(|| experiments::sota_dalvi::run(&scale))
    });
}

fn bench_sota_weir(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("sota_weir_comparison", |b| {
        b.iter(|| experiments::sota_weir::run(&scale))
    });
}

fn bench_table1(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table1_single_node_examples", |b| {
        b.iter(|| experiments::table1::run(&scale, 3))
    });
}

fn bench_table2(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table2_multi_node_examples", |b| {
        b.iter(|| experiments::table2::run(&scale, 3))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig3_robustness_single", |b| {
        b.iter(|| experiments::fig3::run(&scale))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig4_robustness_multi", |b| {
        b.iter(|| experiments::fig4::run(&scale))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig5_characteristics_single", |b| {
        b.iter(|| experiments::fig5::run(&scale))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig6_characteristics_multi", |b| {
        b.iter(|| experiments::fig6::run(&scale))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.negative_noise_samples = 6;
    scale.positive_noise_samples = 4;
    c.bench_function("fig7_noise_resistance", |b| {
        b.iter(|| experiments::fig7::run(&scale))
    });
}

fn bench_noise_real(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("noise_real_ner", |b| {
        b.iter(|| experiments::noise_real::run(&scale))
    });
}

fn bench_change_rate(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.single_tasks = 4;
    scale.multi_tasks = 4;
    c.bench_function("change_rate_c_changes", |b| {
        b.iter(|| experiments::change_rate::run(&scale))
    });
}

fn bench_timing(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.single_tasks = 4;
    scale.multi_tasks = 4;
    c.bench_function("timing_induction_latency", |b| {
        b.iter(|| experiments::timing::run(&scale))
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_sota_dalvi, bench_sota_weir, bench_table1, bench_table2,
              bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7,
              bench_noise_real, bench_change_rate, bench_timing
}
criterion_main!(paper);
