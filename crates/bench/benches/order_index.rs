//! Micro-benchmarks of the document-order index against the structural
//! (path-rebuilding) reference implementations it replaced.
//!
//! The headline numbers — indexed vs. unindexed `sort_document_order` on a
//! ≥1k-node webgen page — are also measured with a plain wall-clock loop and
//! recorded in `BENCH_order_index.json` at the workspace root, so the
//! speedup claimed in the README stays reproducible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use wi_dom::{Document, NodeId};
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_xpath::{evaluate, parse_query};

/// A webgen detail page grown to at least `min_nodes` live nodes by
/// importing copies of its own body content (keeps realistic tag/depth
/// distribution while hitting the target size).
fn webgen_page(min_nodes: usize) -> Document {
    let site = Site::new(Vertical::Movies, 7);
    let mut doc = site.render(0, Day(0), PageKind::Detail);
    let donor = site.render(1, Day(0), PageKind::Detail);
    let donor_body = donor.elements_by_tag("body")[0];
    while doc.len() < min_nodes {
        let body = doc.elements_by_tag("body")[0];
        doc.import_subtree(&donor, donor_body, body).unwrap();
    }
    doc
}

/// Deterministic Fisher–Yates (the workspace has no real `rand`).
fn shuffled(nodes: &[NodeId], seed: u64) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    let mut state = seed | 1;
    for i in (1..v.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

fn all_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants_or_self(doc.root()).collect()
}

fn sort_unindexed(doc: &Document, nodes: &mut Vec<NodeId>) {
    nodes.sort_by(|&a, &b| doc.document_order_unindexed(a, b));
    nodes.dedup();
}

fn bench_sort_document_order(c: &mut Criterion) {
    let doc = webgen_page(1000);
    let input = shuffled(&all_nodes(&doc), 42);
    let _ = doc.order_index(); // build outside the timed region
    c.bench_function("order_sort_indexed_1k_nodes", |b| {
        b.iter(|| {
            let mut v = input.clone();
            doc.sort_document_order(&mut v);
            v
        })
    });
    c.bench_function("order_sort_unindexed_1k_nodes", |b| {
        b.iter(|| {
            let mut v = input.clone();
            sort_unindexed(&doc, &mut v);
            v
        })
    });
}

fn bench_ancestor_tests(c: &mut Criterion) {
    let doc = webgen_page(1000);
    let nodes = all_nodes(&doc);
    let pairs: Vec<(NodeId, NodeId)> = (0..nodes.len())
        .map(|i| (nodes[i], nodes[(i * 17 + 11) % nodes.len()]))
        .collect();
    let _ = doc.order_index();
    c.bench_function("is_ancestor_indexed_1k_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(a, n)| doc.is_ancestor_of(a, n))
                .count()
        })
    });
    c.bench_function("is_ancestor_walking_1k_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(a, n)| doc.ancestors(n).any(|x| x == a))
                .count()
        })
    });
}

fn bench_following_axis(c: &mut Criterion) {
    let doc = webgen_page(1000);
    let nodes = all_nodes(&doc);
    let probes: Vec<NodeId> = nodes.iter().copied().step_by(37).collect();
    let _ = doc.order_index();
    c.bench_function("following_axis_range_scan", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&n| doc.following(n).len())
                .sum::<usize>()
        })
    });
}

fn bench_descendant_tag_step(c: &mut Criterion) {
    let doc = webgen_page(1000);
    let q = parse_query("descendant::span").unwrap();
    let _ = doc.tag_index();
    c.bench_function("eval_descendant_span_tag_index", |b| {
        b.iter(|| evaluate(&q, &doc, doc.root()))
    });
    c.bench_function("walk_descendant_span_no_index", |b| {
        b.iter(|| {
            doc.descendants(doc.root())
                .filter(|&n| doc.tag_name(n) == Some("span"))
                .collect::<Vec<_>>()
        })
    });
}

/// Times a routine over `iters` runs and returns mean seconds per run.
fn time_per_iter<T>(iters: u32, mut routine: impl FnMut() -> T) -> f64 {
    black_box(routine()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the headline indexed-vs-unindexed sort and writes
/// `BENCH_order_index.json` at the workspace root.
fn record_json(_c: &mut Criterion) {
    let doc = webgen_page(1000);
    let nodes = all_nodes(&doc);
    let input = shuffled(&nodes, 42);
    let _ = doc.order_index();
    let iters = 200;
    let indexed = time_per_iter(iters, || {
        let mut v = input.clone();
        doc.sort_document_order(&mut v);
        v
    });
    let unindexed = time_per_iter(20, || {
        let mut v = input.clone();
        sort_unindexed(&doc, &mut v);
        v
    });
    let build = time_per_iter(iters, || {
        let mut d = doc.clone();
        // Cloning keeps the cached index; force a rebuild through a no-op
        // structural edit to measure the build cost itself.
        let extra = d.create_element("i", vec![]);
        let body = d.elements_by_tag("body")[0];
        d.append_child(body, extra).unwrap();
        d.order_index().len()
    });
    let speedup = unindexed / indexed;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"page_nodes\": {},\n  \"machine_cores\": {},\n  \"sort_indexed_us\": {:.2},\n  \"sort_unindexed_us\": {:.2},\n  \"speedup\": {:.1},\n  \"index_build_plus_mutation_us\": {:.2},\n  \"iters_indexed\": {},\n  \"iters_unindexed\": 20\n}}\n",
        nodes.len(),
        cores,
        indexed * 1e6,
        unindexed * 1e6,
        speedup,
        build * 1e6,
        iters,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_order_index.json");
    std::fs::write(path, &json).expect("write BENCH_order_index.json");
    println!("bench order_index_speedup                        {speedup:>10.1} x  (recorded in BENCH_order_index.json)");
    assert!(
        speedup >= 5.0,
        "order index must be at least 5x faster than the path-based sort, got {speedup:.1}x"
    );
}

criterion_group! {
    name = order_index;
    config = Criterion::default().sample_size(50);
    targets = bench_sort_document_order, bench_ancestor_tests,
              bench_following_axis, bench_descendant_tag_step, record_json
}
criterion_main!(order_index);
