//! End-to-end induction throughput: the shared-prefix (trie) engine over the
//! symbol-interned DOM versus the retained naive reference path, on the
//! standard webgen robustness dataset.
//!
//! The headline numbers — tasks/second through `induce` for both engines and
//! their ratio — are also measured with a plain wall-clock loop and recorded
//! in `BENCH_induction.json` at the workspace root (with the machine's core
//! count, per the perf-record policy), so the induction perf trajectory stays
//! reproducible.  The equivalence of the two engines' *results* is pinned by
//! `wi-induction/tests/induction_equivalence.rs`; this bench only measures
//! speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use wi_dom::{Document, NodeId};
use wi_induction::{induce, induce_reference, InductionConfig, Sample};
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::date::Day;

/// The standard webgen robustness workload: single- and multi-node wrapper
/// tasks, one annotated sample page each (the induction input of the paper's
/// Figures 3/4 runs).
fn build_workload() -> Vec<(Document, Vec<NodeId>)> {
    single_node_tasks(8)
        .into_iter()
        .chain(multi_node_tasks(8))
        .filter_map(|task| {
            let (doc, targets) = task.page_with_targets(Day(0));
            // Pre-build the lazy order/tag indexes: extraction workloads pay
            // them once per page anyway (recorded in BENCH_order_index.json);
            // this bench measures induction on top of them.
            let _ = doc.order_index();
            let _ = doc.tag_index();
            (!targets.is_empty()).then_some((doc, targets))
        })
        .collect()
}

fn run_all(
    pages: &[(Document, Vec<NodeId>)],
    config: &InductionConfig,
    engine: fn(&[Sample<'_>], &InductionConfig) -> Vec<wi_scoring::QueryInstance>,
) -> usize {
    let mut produced = 0;
    for (doc, targets) in pages {
        let sample = Sample::from_root(doc, targets);
        produced += engine(&[sample], config).len();
    }
    produced
}

fn bench_induction(c: &mut Criterion) {
    let pages = build_workload();
    let config = InductionConfig::default();

    c.bench_function("induce_trie_16_tasks", |b| {
        b.iter(|| black_box(run_all(black_box(&pages), &config, induce)))
    });
    c.bench_function("induce_naive_16_tasks", |b| {
        b.iter(|| black_box(run_all(black_box(&pages), &config, induce_reference)))
    });
}

/// Wall-clock tasks/second for both engines, recorded into
/// BENCH_induction.json by hand.
fn record_throughput() {
    let pages = build_workload();
    let config = InductionConfig::default();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let runs = 5;
    let mut naive_s = f64::MAX;
    let mut trie_s = f64::MAX;
    for _ in 0..runs {
        let t = Instant::now();
        black_box(run_all(&pages, &config, induce_reference));
        naive_s = naive_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        black_box(run_all(&pages, &config, induce));
        trie_s = trie_s.min(t.elapsed().as_secs_f64());
    }
    println!(
        "induction throughput: {} tasks, {} cores; naive {:.2} tasks/s ({:.1} ms), trie {:.2} tasks/s ({:.1} ms), speedup {:.2}x",
        pages.len(),
        cores,
        pages.len() as f64 / naive_s,
        naive_s * 1e3,
        pages.len() as f64 / trie_s,
        trie_s * 1e3,
        naive_s / trie_s
    );
}

fn bench_all(c: &mut Criterion) {
    record_throughput();
    bench_induction(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
