//! Throughput of the maintenance batch driver: whole site timelines through
//! verify → classify → repair, sequential vs. fanned out over all cores.
//!
//! The headline numbers — pages/second through `Registry::maintain_batch`
//! with 1 worker vs. N workers — are also measured with a plain wall-clock
//! loop and recorded in `BENCH_maintain.json` at the workspace root, so the
//! subsystem's perf trajectory stays reproducible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{
    LastKnownGood, MaintainConfig, Maintainer, MaintenanceJob, PageVersion, Registry,
};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

/// Builds `sites` maintenance jobs of `epochs` snapshots each, plus a
/// registry with their induced bundles installed.
fn build_workload(sites: u64, epochs: i64) -> (Registry, Vec<MaintenanceJob>, usize) {
    let mut registry = Registry::new();
    let mut jobs = Vec::new();
    let mut pages_total = 0usize;
    for index in 0..sites {
        let vertical = Vertical::ALL[index as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, index),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc, &targets) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        registry.install(task.id(), bundle.clone(), 0);
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let day = Day(i * 20);
                PageVersion {
                    day: day.offset(),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        pages_total += pages.len();
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc, 0, &targets)),
            inducer: None,
        });
    }
    (registry, jobs, pages_total)
}

/// A maintainer with the incremental-replay caches disabled (the
/// from-scratch baseline the equivalence battery compares against).
fn full_maintainer() -> Maintainer {
    Maintainer::new(
        MaintainConfig {
            incremental: false,
            ..MaintainConfig::default()
        },
        WrapperInducer::default(),
    )
}

fn bench_maintain_batch(c: &mut Criterion) {
    let (registry, jobs, _) = build_workload(12, 24);
    let maintainer = Maintainer::default();
    let full = full_maintainer();

    c.bench_function("maintain_batch_sequential_12x24", |b| {
        b.iter(|| {
            let mut r = registry.clone();
            black_box(r.maintain_batch_sequential(black_box(&jobs), &maintainer))
        })
    });
    c.bench_function("maintain_batch_full_12x24", |b| {
        b.iter(|| {
            let mut r = registry.clone();
            black_box(r.maintain_batch_sequential(black_box(&jobs), &full))
        })
    });
    c.bench_function("maintain_batch_parallel_12x24", |b| {
        b.iter(|| {
            let mut r = registry.clone();
            black_box(r.maintain_batch(black_box(&jobs), &maintainer))
        })
    });
}

/// Wall-clock pages/second, recorded into BENCH_maintain.json by hand.
fn record_throughput() {
    let (registry, jobs, pages) = build_workload(12, 24);
    let maintainer = Maintainer::default();
    let full = full_maintainer();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let runs = 5;
    let mut sequential_s = f64::MAX;
    let mut full_s = f64::MAX;
    let mut parallel_s = f64::MAX;
    for _ in 0..runs {
        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_with_workers(&jobs, &maintainer, 1));
        sequential_s = sequential_s.min(t.elapsed().as_secs_f64());

        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_with_workers(&jobs, &full, 1));
        full_s = full_s.min(t.elapsed().as_secs_f64());

        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_with_workers(&jobs, &maintainer, workers));
        parallel_s = parallel_s.min(t.elapsed().as_secs_f64());
    }
    println!(
        "maintain_batch throughput: {} jobs, {} pages; incremental 1 worker {:.0} pages/s, \
         from-scratch 1 worker {:.0} pages/s ({:.2}x), {} workers {:.0} pages/s ({:.1}x)",
        jobs.len(),
        pages,
        pages as f64 / sequential_s,
        pages as f64 / full_s,
        full_s / sequential_s,
        workers,
        pages as f64 / parallel_s,
        sequential_s / parallel_s
    );
}

fn bench_all(c: &mut Criterion) {
    record_throughput();
    bench_maintain_batch(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
