//! Overhead of the `wi-obs` tracing layer, measured against the same
//! maintenance workload as the `maintain` bench.
//!
//! The headline numbers — ns per disabled/enabled trace call, journal
//! emit+drain throughput, and the maintain workload wall clock with
//! tracing off vs. on — are also measured with a plain wall-clock loop
//! and recorded in `BENCH_obs.json` at the workspace root.  The disabled
//! path is the contract that matters: every entry point must stay a
//! single relaxed atomic load, and the smoke test
//! `crates/bench/tests/obs_smoke.rs` gates its estimated share of the
//! workload at < 2% in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{LastKnownGood, Maintainer, MaintenanceJob, PageVersion, Registry};
use wi_obs::{event, journal_stats, recent, record_span, set_mode, Mode};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

/// Builds `sites` maintenance jobs of `epochs` snapshots each, plus a
/// registry with their induced bundles installed (the `maintain` bench
/// workload, reused so the overhead numbers compare like for like).
fn build_workload(sites: u64, epochs: i64) -> (Registry, Vec<MaintenanceJob>, usize) {
    let mut registry = Registry::new();
    let mut jobs = Vec::new();
    let mut pages_total = 0usize;
    for index in 0..sites {
        let vertical = Vertical::ALL[index as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, index),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc, &targets) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        registry.install(task.id(), bundle.clone(), 0);
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let day = Day(i * 20);
                PageVersion {
                    day: day.offset(),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        pages_total += pages.len();
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc, 0, &targets)),
            inducer: None,
        });
    }
    (registry, jobs, pages_total)
}

fn bench_trace_calls(c: &mut Criterion) {
    let started = Instant::now();

    set_mode(Mode::Off);
    c.bench_function("record_span_disabled", |b| {
        b.iter(|| record_span(black_box("bench.obs.off"), black_box(started), &[]))
    });

    set_mode(Mode::On);
    c.bench_function("record_span_enabled", |b| {
        b.iter(|| record_span(black_box("bench.obs.on"), black_box(started), &[("k", 1)]))
    });
    set_mode(Mode::Off);
}

fn bench_maintain_with_tracing(c: &mut Criterion) {
    let (registry, jobs, _) = build_workload(12, 24);
    let maintainer = Maintainer::default();

    set_mode(Mode::Off);
    c.bench_function("maintain_12x24_trace_off", |b| {
        b.iter(|| {
            let mut r = registry.clone();
            black_box(r.maintain_batch_sequential(black_box(&jobs), &maintainer))
        })
    });
    set_mode(Mode::On);
    c.bench_function("maintain_12x24_trace_on", |b| {
        b.iter(|| {
            let mut r = registry.clone();
            black_box(r.maintain_batch_sequential(black_box(&jobs), &maintainer))
        })
    });
    set_mode(Mode::Off);
}

/// Wall-clock numbers, recorded into BENCH_obs.json by hand.
fn record_numbers() {
    let started = Instant::now();

    // Per-call cost with tracing off: the single-relaxed-load path.
    set_mode(Mode::Off);
    let calls = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..calls {
        record_span(black_box("bench.obs.off"), black_box(started), &[]);
    }
    let disabled_ns = t.elapsed().as_nanos() as f64 / calls as f64;

    // Per-call cost with tracing on (timestamp + ring push; the journal
    // evicts oldest once full, so this is steady-state emission).
    set_mode(Mode::On);
    let calls_on = 2_000_000u64;
    let t = Instant::now();
    for _ in 0..calls_on {
        record_span(black_box("bench.obs.on"), black_box(started), &[("k", 1)]);
    }
    let enabled_ns = t.elapsed().as_nanos() as f64 / calls_on as f64;

    // Journal throughput: emit below ring capacity, drain, repeat.
    let rounds = 400u64;
    let per_round = 1_000u64;
    let t = Instant::now();
    for _ in 0..rounds {
        for _ in 0..per_round {
            event(black_box("bench.obs.journal"), &[]);
        }
        black_box(recent(usize::MAX));
    }
    let journal_per_s = (rounds * per_round) as f64 / t.elapsed().as_secs_f64();
    let stats = journal_stats();
    set_mode(Mode::Off);

    // The maintain workload with tracing off vs. on, best of 5.
    let (registry, jobs, pages) = build_workload(12, 24);
    let maintainer = Maintainer::default();
    let mut off_s = f64::MAX;
    let mut on_s = f64::MAX;
    for _ in 0..5 {
        set_mode(Mode::Off);
        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_sequential(&jobs, &maintainer));
        off_s = off_s.min(t.elapsed().as_secs_f64());

        set_mode(Mode::On);
        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_sequential(&jobs, &maintainer));
        on_s = on_s.min(t.elapsed().as_secs_f64());
    }
    set_mode(Mode::Off);

    println!(
        "obs overhead: disabled {disabled_ns:.2} ns/call, enabled {enabled_ns:.0} ns/call, \
         journal {journal_per_s:.0} records/s (ring_dropped {}, overwritten {})",
        stats.ring_dropped, stats.overwritten
    );
    println!(
        "maintain {pages} pages: trace off {:.3} ms, trace on {:.3} ms ({:+.2}% enabled overhead)",
        off_s * 1e3,
        on_s * 1e3,
        (on_s / off_s - 1.0) * 100.0
    );
}

fn bench_all(c: &mut Criterion) {
    record_numbers();
    bench_trace_calls(c);
    bench_maintain_with_tracing(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
