//! CI gate for the incremental-maintenance fast path: on a small low-churn
//! timeline, replaying through the incremental caches must not be slower
//! than maintaining from scratch.
//!
//! The workload deliberately repeats each archive snapshot so consecutive
//! epochs are content-identical — the regime the cross-version caches are
//! built for.  Wall-clock comparisons on a shared CI box are noisy, so the
//! gate takes the best of several runs of each mode and allows a generous
//! slack factor; the real regime (incremental several times faster) passes
//! with a wide margin, while a regression that makes the cached path pay
//! for its bookkeeping without ever hitting trips it.

use std::hint::black_box;
use std::time::Instant;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{
    LastKnownGood, MaintainConfig, Maintainer, MaintenanceJob, PageVersion, Registry,
};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

/// A tiny low-churn workload: `sites` timelines of `epochs` snapshots where
/// every snapshot is sampled twice in a row (guaranteed consecutive-identical
/// pairs on top of whatever churn the archive itself produces).
fn build_workload(sites: u64, epochs: i64) -> (Registry, Vec<MaintenanceJob>, usize) {
    let mut registry = Registry::new();
    let mut jobs = Vec::new();
    let mut pages_total = 0usize;
    for index in 0..sites {
        let vertical = Vertical::ALL[index as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, index),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc, &targets) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        registry.install(task.id(), bundle.clone(), 0);
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                // Integer halving re-samples each day twice: epochs 2k and
                // 2k+1 carry content-identical documents.
                let day = Day((i / 2) * 20);
                PageVersion {
                    day: day.offset() + (i % 2),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        pages_total += pages.len();
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc, 0, &targets)),
            inducer: None,
        });
    }
    (registry, jobs, pages_total)
}

fn best_of(runs: usize, registry: &Registry, jobs: &[MaintenanceJob], m: &Maintainer) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_sequential(jobs, m));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn incremental_replay_is_not_slower_than_from_scratch() {
    let (registry, jobs, pages) = build_workload(4, 10);
    assert!(pages > 0, "workload induced no jobs");
    let incremental = Maintainer::default();
    let full = Maintainer::new(
        MaintainConfig {
            incremental: false,
            ..MaintainConfig::default()
        },
        WrapperInducer::default(),
    );

    // Warm both paths (allocator, lazy DOM indexes) before timing.
    let mut r = registry.clone();
    r.maintain_batch_sequential(&jobs, &incremental);
    let mut r = registry.clone();
    r.maintain_batch_sequential(&jobs, &full);

    let incremental_s = best_of(5, &registry, &jobs, &incremental);
    let full_s = best_of(5, &registry, &jobs, &full);

    // 1.2x slack absorbs scheduler noise; the expected regime is the
    // incremental path winning outright on this half-identical timeline.
    assert!(
        incremental_s <= full_s * 1.2,
        "incremental replay slower than from-scratch: {:.3}ms vs {:.3}ms over {pages} pages",
        incremental_s * 1e3,
        full_s * 1e3,
    );
}
