//! CI gate for the wi-obs disabled-path contract: with tracing off, the
//! trace calls instrumented into the maintenance lifecycle must cost
//! less than 2% of the maintain workload.
//!
//! Raw enabled-vs-disabled wall-clock deltas on a shared CI box are noise
//! at the scale that matters (a relaxed load is sub-nanosecond), so the
//! gate is computed deterministically instead: count the trace records
//! the workload actually emits (tracing on), measure the per-call cost of
//! the disabled path in isolation, and bound their product against the
//! workload wall clock.  The same run proves the instrumentation is live
//! (records > 0) and lossless at this scale (no ring drops).

use std::hint::black_box;
use std::time::Instant;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{LastKnownGood, Maintainer, MaintenanceJob, PageVersion, Registry};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

/// A small slice of the maintain bench workload (6 sites x 12 epochs).
fn build_workload(sites: u64, epochs: i64) -> (Registry, Vec<MaintenanceJob>, usize) {
    let mut registry = Registry::new();
    let mut jobs = Vec::new();
    let mut pages_total = 0usize;
    for index in 0..sites {
        let vertical = Vertical::ALL[index as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, index),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc, &targets) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        registry.install(task.id(), bundle.clone(), 0);
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let day = Day(i * 20);
                PageVersion {
                    day: day.offset(),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        pages_total += pages.len();
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc, 0, &targets)),
            inducer: None,
        });
    }
    (registry, jobs, pages_total)
}

#[test]
fn disabled_tracing_costs_under_two_percent_of_the_maintain_workload() {
    let (registry, jobs, pages) = build_workload(6, 12);
    let maintainer = Maintainer::default();
    assert!(pages > 0, "workload built");

    // Count the trace records one workload pass emits (and prove the
    // lifecycle instrumentation is actually wired up).
    wi_obs::set_mode(wi_obs::Mode::On);
    wi_obs::trace::clear();
    {
        let mut r = registry.clone();
        black_box(r.maintain_batch_sequential(&jobs, &maintainer));
    }
    let traced = wi_obs::recent(usize::MAX).len() as u64;
    let stats = wi_obs::journal_stats();
    wi_obs::set_mode(wi_obs::Mode::Off);
    assert!(traced > 0, "the maintenance lifecycle emits spans");
    assert_eq!(
        stats.ring_dropped, 0,
        "a {pages}-page sequential workload stays under the ring capacity"
    );

    // The workload wall clock with tracing off, best of 3.
    let mut work_s = f64::MAX;
    for _ in 0..3 {
        let mut r = registry.clone();
        let t = Instant::now();
        black_box(r.maintain_batch_sequential(&jobs, &maintainer));
        work_s = work_s.min(t.elapsed().as_secs_f64());
    }

    // The disabled path in isolation: one relaxed load per call.
    let started = Instant::now();
    let calls = 10_000_000u64;
    let t = Instant::now();
    for _ in 0..calls {
        wi_obs::record_span(black_box("obs.smoke"), black_box(started), &[]);
    }
    let per_call_s = t.elapsed().as_secs_f64() / calls as f64;

    let overhead = traced as f64 * per_call_s / work_s;
    assert!(
        overhead < 0.02,
        "disabled tracing must stay under 2% of the maintain workload: \
         {traced} calls x {:.2} ns / {:.3} ms = {:.4}%",
        per_call_s * 1e9,
        work_s * 1e3,
        overhead * 100.0
    );
}
