//! The plus-compositional robustness score (Section 4 of the paper).
//!
//! * `score(a1::t1 P1 / … / an::tn Pn) = Σ_i score(ai::ti Pi) · δ^(i-1)`
//! * `score(a::t p1…pm) = s_a + s_t + Σ_j score(p_j)`
//!   (plus the no-predicate penalty if `m = 0`)
//! * positional predicates `[n]` cost `c_pos · n`, `[last()-n]` costs
//!   `s_last + c_pos · n`,
//! * attribute comparisons `[f(@a, w)]` cost `s_f + s_a + c_f·|w|`,
//!   existence tests `[@a]` additionally pay the no-function penalty `y`,
//! * text comparisons `[f(., w)]` cost `s_f + s_text + c_f·|w|`.
//!
//! The paper's worked example (Section 6.3) is reproduced in the tests:
//! `descendant::img[@class="adv"][1]` has score 40 under the default
//! parameters.

use crate::params::ScoringParams;
use wi_xpath::{NodeTest, Predicate, Query, Step, TextSource};

/// Scores a full query expression.
pub fn score_query(query: &Query, params: &ScoringParams) -> f64 {
    score_query_partial(0.0, 0, &query.steps, params)
}

/// Folds the step scores of `steps` into a running sum, with step indices
/// offset by `offset` — the plus-compositional form of [`score_query`].
///
/// `score_query(p / q)` equals
/// `score_query_partial(score_query_partial(0.0, 0, p), p.len(), q)`
/// **bit for bit**: the fold performs exactly the additions and
/// multiplications (in the same order) that scoring the concatenated
/// expression would, so the induction inner loop can score
/// `pattern.concat(instance)` candidates by extending the pattern's
/// pre-folded prefix sum instead of re-walking the pattern's steps for
/// every instance.
pub fn score_query_partial(acc: f64, offset: usize, steps: &[Step], params: &ScoringParams) -> f64 {
    steps.iter().enumerate().fold(acc, |sum, (j, s)| {
        sum + score_step(s, params) * params.decay.powi((offset + j) as i32)
    })
}

/// Scores a single step (axis + node test + predicates), including the
/// no-predicate penalty for predicate-free steps.
pub fn score_step(step: &Step, params: &ScoringParams) -> f64 {
    let mut score = params.axis_score(step.axis) + score_node_test(step, params);
    if step.predicates.is_empty() {
        // Attribute steps (`@src`) are implicitly maximally selective — the
        // attribute name itself acts as the predicate — so the penalty only
        // applies to element steps.
        if step.axis != wi_xpath::Axis::Attribute {
            score += params.no_predicate_penalty;
        }
    } else {
        score += step
            .predicates
            .iter()
            .map(|p| score_predicate(p, params))
            .sum::<f64>();
    }
    score
}

fn score_node_test(step: &Step, params: &ScoringParams) -> f64 {
    match &step.test {
        NodeTest::AnyNode => params.nodetest_node,
        NodeTest::AnyElement => params.nodetest_any_element,
        NodeTest::Text => params.nodetest_text,
        NodeTest::Tag(tag) => {
            if step.axis == wi_xpath::Axis::Attribute {
                // For attribute steps the "tag" is an attribute name; known
                // semantic attributes keep their (cheap) score, anything else
                // costs as much as an ordinary tag test rather than paying
                // the unknown-attribute penalty designed for predicates.
                params
                    .attribute_scores
                    .get(tag)
                    .copied()
                    .unwrap_or(params.tag_default)
            } else {
                params.tag_score(tag)
            }
        }
    }
}

/// Scores a single predicate.
pub fn score_predicate(pred: &Predicate, params: &ScoringParams) -> f64 {
    match pred {
        Predicate::Position(n) => params.positional_factor * f64::from(*n),
        Predicate::LastOffset(n) => params.last_score + params.positional_factor * f64::from(*n),
        Predicate::HasAttribute(name) => {
            // score(p) = s_f(=0) + y + s_a + c_f·length(w)(=0)
            params.no_function_penalty + params.attribute_score(name)
        }
        Predicate::StringCompare {
            func,
            source,
            value,
        } => {
            let base = match source {
                TextSource::Attribute(a) => params.attribute_score(a),
                TextSource::NormalizedText => params.text_access_score,
            };
            params.function_score(*func) + base + params.length_factor * value.len() as f64
        }
        Predicate::Path(q) => {
            // Nested path predicates are outside dsXPath; score them as the
            // contained query so human wrappers can still be compared.
            score_query(q, params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_xpath::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    #[test]
    fn paper_worked_example_scores_40() {
        // Section 6.3: descendant::img[@class="adv"][1]
        //   step base: s_descendant(1) + c_default(10)        = 11
        //   [@class="adv"]: s_equals(1) + s_class(5) + 1·3    =  9
        //   [1]: c_pos · 1                                     = 20
        //   total                                              = 40
        let params = ScoringParams::paper_defaults();
        let query = q(r#"descendant::img[@class="adv"][1]"#);
        assert_eq!(score_query(&query, &params), 40.0);
    }

    #[test]
    fn decay_weights_later_steps_more() {
        let params = ScoringParams::paper_defaults();
        // Two structurally identical steps: the second is multiplied by 2.5.
        let query = q(r#"descendant::div[@id="a"]/descendant::div[@id="a"]"#);
        let single = score_query(&q(r#"descendant::div[@id="a"]"#), &params);
        assert!((score_query(&query, &params) - single * 3.5).abs() < 1e-9);
    }

    #[test]
    fn semantic_attributes_score_lower_than_positions() {
        let params = ScoringParams::paper_defaults();
        let by_id = score_query(&q(r#"descendant::div[@id="main"]"#), &params);
        let by_class = score_query(&q(r#"descendant::div[@class="main"]"#), &params);
        let by_pos = score_query(&q("descendant::div[3]"), &params);
        let bare = score_query(&q("descendant::div"), &params);
        assert!(by_id < by_class, "id must be preferred over class");
        assert!(by_class < by_pos, "class must be preferred over position");
        assert!(by_pos < bare, "anything beats a predicate-free step");
    }

    #[test]
    fn shorter_queries_preferred_all_else_equal() {
        let params = ScoringParams::paper_defaults();
        let one = score_query(&q(r#"descendant::span[@itemprop="name"]"#), &params);
        let two = score_query(
            &q(r#"descendant::div[@id="main"]/descendant::span[@itemprop="name"]"#),
            &params,
        );
        assert!(one < two);
    }

    #[test]
    fn descendant_preferred_over_child() {
        let params = ScoringParams::paper_defaults();
        assert!(
            score_query(&q(r#"descendant::div[@id="a"]"#), &params)
                < score_query(&q(r#"child::div[@id="a"]"#), &params)
        );
    }

    #[test]
    fn no_predicate_penalty_applies_per_step() {
        let params = ScoringParams::paper_defaults();
        let with_pred = score_query(&q(r#"descendant::div[@id="a"]"#), &params);
        let without = score_query(&q("descendant::div"), &params);
        assert!(without - with_pred > 900.0);
        // Attribute steps don't pay the penalty.
        let attr_step = score_query(&q("descendant::a[@id=\"x\"]/@href"), &params);
        assert!(attr_step < 200.0);
    }

    #[test]
    fn existence_test_pays_no_function_penalty() {
        let params = ScoringParams::paper_defaults();
        let exist = score_query(&q("descendant::div[@id]"), &params);
        let equal = score_query(&q(r#"descendant::div[@id="a"]"#), &params);
        // [@id]   = 11 + 15 + 1      = 27
        // [@id=a] = 11 + 1 + 1 + 1   = 14
        assert_eq!(exist, 27.0);
        assert_eq!(equal, 14.0);
    }

    #[test]
    fn text_predicates_use_text_access_cost() {
        let params = ScoringParams::paper_defaults();
        let query = q(r#"descendant::div[starts-with(.,"Director:")]"#);
        // 11 + (5 + 5 + 9) = 30
        assert_eq!(score_query(&query, &params), 30.0);
    }

    #[test]
    fn last_and_positional_scores() {
        let params = ScoringParams::paper_defaults();
        assert_eq!(score_predicate(&Predicate::Position(3), &params), 60.0);
        assert_eq!(score_predicate(&Predicate::LastOffset(0), &params), 20.0);
        assert_eq!(score_predicate(&Predicate::LastOffset(2), &params), 60.0);
    }

    #[test]
    fn longer_strings_cost_more() {
        let params = ScoringParams::paper_defaults();
        let short = score_query(&q(r#"descendant::tr[contains(.,"News")]"#), &params);
        let long = score_query(
            &q(r#"descendant::tr[contains(.,"News and Latest Reviews")]"#),
            &params,
        );
        assert!(short < long);
        assert_eq!(
            long - short,
            ("News and Latest Reviews".len() - "News".len()) as f64
        );
    }

    #[test]
    fn empty_query_scores_zero() {
        let params = ScoringParams::paper_defaults();
        assert_eq!(score_query(&Query::empty(), &params), 0.0);
    }

    #[test]
    fn uniform_params_count_steps() {
        let params = ScoringParams::uniform();
        // Each step: axis 1 + test 1 = 2 (no penalties in uniform mode).
        assert_eq!(score_query(&q("child::a/child::b/child::c"), &params), 6.0);
    }

    #[test]
    fn monotone_in_added_predicates_and_steps() {
        let params = ScoringParams::paper_defaults();
        let base = q(r#"descendant::div[@id="a"]"#);
        let more_preds = q(r#"descendant::div[@id="a"][2]"#);
        assert!(score_query(&base, &params) < score_query(&more_preds, &params));
        let more_steps = q(r#"descendant::div[@id="a"]/child::span[@class="b"]"#);
        assert!(score_query(&base, &params) < score_query(&more_steps, &params));
    }
}
