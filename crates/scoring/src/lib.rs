//! # wi-scoring — robustness scoring and ranking
//!
//! Implementation of Section 4 of *Robust and Noise Resistant Wrapper
//! Induction* (SIGMOD 2016):
//!
//! * the **plus-compositional robustness score** of a dsXPath expression —
//!   the sum of per-step scores, each the sum of an axis score, a node-test
//!   score and predicate scores, weighted by a decay factor `δ^(i-1)`
//!   ([`score_query`]),
//! * the **parameters** of the scoring function with the default values the
//!   paper reports in Section 6.3 ([`ScoringParams`]),
//! * **precision / recall / Fβ** with the paper's choice of β = 0.5
//!   ([`fscore`]),
//! * [`QueryInstance`] — a query together with its true/false positive and
//!   false negative counts on the samples — and the paper's **ranking
//!   order**: higher F0.5 first, ties broken by lower robustness score
//!   ([`rank_order`]).
//!
//! The score is "the smaller the better": short, selective expressions with
//! semantic attribute predicates receive low scores, long positional
//! expressions receive high scores.
//!
//! Beyond the paper's fixed parameter table, [`learn`] implements the
//! conclusion's future work (2): calibrating the scoring constants against a
//! corpus of wrapper-survival observations.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fscore;
pub mod instance;
pub mod learn;
pub mod params;
pub mod score;

pub use fscore::{f_beta, f_score_05, precision, recall, Counts};
pub use instance::{rank_order, rank_order_lazy, strictly_better, QueryInstance};
pub use learn::{
    calibrate, rank_agreement, CalibrationConfig, CalibrationResult, SurvivalObservation,
};
pub use params::ScoringParams;
pub use score::{score_predicate, score_query, score_query_partial, score_step};
