//! Calibrating the scoring parameters from a corpus of survival observations.
//!
//! The paper's conclusion (future work (2)) suggests *"learning an effective
//! scoring for different types of node types, textual values, and axes from a
//! given corpus of websites"*.  This module implements a simple, dependency-
//! free version of that idea:
//!
//! * a [`SurvivalObservation`] pairs a wrapper expression with how long it
//!   remained valid on its site (e.g. measured by the robustness harness in
//!   `wi-eval` over archive snapshots),
//! * [`rank_agreement`] measures how well a [`ScoringParams`] instance
//!   explains the corpus: the fraction of observation pairs in which the
//!   longer-surviving wrapper also receives the *smaller* (better) robustness
//!   score,
//! * [`calibrate`] runs a coordinate descent over the interpretable scoring
//!   constants (axis scores, attribute scores, decay, penalties), multiplying
//!   one coordinate at a time by a small grid of factors and keeping whatever
//!   improves the rank agreement.
//!
//! The procedure never invents new feature types — it only re-weights the
//! constants the paper already exposes — so a calibrated parameter set can be
//! dropped into [`crate::score_query`] and the induction algorithms
//! unchanged.

use crate::params::ScoringParams;
use crate::score::score_query;
use wi_xpath::{Axis, Query};

/// One corpus observation: a wrapper and how long it survived.
#[derive(Debug, Clone)]
pub struct SurvivalObservation {
    /// The wrapper expression.
    pub query: Query,
    /// How long the wrapper remained valid (days, or any monotone utility).
    pub survived_days: f64,
}

impl SurvivalObservation {
    /// Creates an observation.
    pub fn new(query: Query, survived_days: f64) -> Self {
        SurvivalObservation {
            query,
            survived_days,
        }
    }
}

/// How well a parameter set explains a corpus: the fraction of comparable
/// observation pairs ranked concordantly.
///
/// A pair is *comparable* when the two observations survived for a different
/// number of days; it is *concordant* when the longer-surviving wrapper has
/// the strictly smaller robustness score.  Pairs with equal scores count as
/// half-concordant.  Returns `1.0` when the corpus has no comparable pairs.
pub fn rank_agreement(observations: &[SurvivalObservation], params: &ScoringParams) -> f64 {
    let scores: Vec<f64> = observations
        .iter()
        .map(|o| score_query(&o.query, params))
        .collect();
    let mut comparable = 0.0;
    let mut concordant = 0.0;
    for i in 0..observations.len() {
        for j in (i + 1)..observations.len() {
            let survival = observations[i].survived_days - observations[j].survived_days;
            if survival == 0.0 {
                continue;
            }
            comparable += 1.0;
            let score = scores[i] - scores[j];
            if score == 0.0 {
                concordant += 0.5;
            } else if (survival > 0.0) == (score < 0.0) {
                concordant += 1.0;
            }
        }
    }
    if comparable == 0.0 {
        1.0
    } else {
        concordant / comparable
    }
}

/// The tunable coordinates of the scoring function.
#[derive(Debug, Clone, PartialEq)]
pub enum Coordinate {
    /// The decay factor δ.
    Decay,
    /// The score of one axis.
    AxisScore(Axis),
    /// The default score of axes without an explicit entry.
    AxisDefault,
    /// The score of one attribute name.
    AttributeScore(String),
    /// The default score of attributes without an explicit entry.
    AttributeDefault,
    /// The default score of tag node tests.
    TagDefault,
    /// The positional factor `c_pos`.
    PositionalFactor,
    /// The string-length factor `c_f`.
    LengthFactor,
    /// The cost of accessing the normalized text value (`s_text`).
    TextAccess,
    /// The penalty for attribute-existence-only predicates.
    NoFunctionPenalty,
    /// The penalty for steps without any predicate.
    NoPredicatePenalty,
}

impl Coordinate {
    /// All coordinates tunable for a given base parameter set (one entry per
    /// explicitly listed axis and attribute, plus the global constants).
    pub fn all_for(base: &ScoringParams) -> Vec<Coordinate> {
        let mut coordinates = vec![Coordinate::Decay];
        coordinates.extend(base.axis_scores.keys().map(|&a| Coordinate::AxisScore(a)));
        coordinates.push(Coordinate::AxisDefault);
        coordinates.extend(
            base.attribute_scores
                .keys()
                .map(|a| Coordinate::AttributeScore(a.clone())),
        );
        coordinates.push(Coordinate::AttributeDefault);
        coordinates.push(Coordinate::TagDefault);
        coordinates.push(Coordinate::PositionalFactor);
        coordinates.push(Coordinate::LengthFactor);
        coordinates.push(Coordinate::TextAccess);
        coordinates.push(Coordinate::NoFunctionPenalty);
        coordinates.push(Coordinate::NoPredicatePenalty);
        coordinates
    }

    /// Reads the coordinate's current value.
    pub fn get(&self, params: &ScoringParams) -> f64 {
        match self {
            Coordinate::Decay => params.decay,
            Coordinate::AxisScore(axis) => params.axis_score(*axis),
            Coordinate::AxisDefault => params.axis_default,
            Coordinate::AttributeScore(name) => params.attribute_score(name),
            Coordinate::AttributeDefault => params.attribute_default,
            Coordinate::TagDefault => params.tag_default,
            Coordinate::PositionalFactor => params.positional_factor,
            Coordinate::LengthFactor => params.length_factor,
            Coordinate::TextAccess => params.text_access_score,
            Coordinate::NoFunctionPenalty => params.no_function_penalty,
            Coordinate::NoPredicatePenalty => params.no_predicate_penalty,
        }
    }

    /// Writes a new value for the coordinate.
    pub fn set(&self, params: &mut ScoringParams, value: f64) {
        match self {
            Coordinate::Decay => params.decay = value,
            Coordinate::AxisScore(axis) => {
                params.axis_scores.insert(*axis, value);
            }
            Coordinate::AxisDefault => params.axis_default = value,
            Coordinate::AttributeScore(name) => {
                params.attribute_scores.insert(name.clone(), value);
            }
            Coordinate::AttributeDefault => params.attribute_default = value,
            Coordinate::TagDefault => params.tag_default = value,
            Coordinate::PositionalFactor => params.positional_factor = value,
            Coordinate::LengthFactor => params.length_factor = value,
            Coordinate::TextAccess => params.text_access_score = value,
            Coordinate::NoFunctionPenalty => params.no_function_penalty = value,
            Coordinate::NoPredicatePenalty => params.no_predicate_penalty = value,
        }
    }
}

/// Configuration of [`calibrate`].
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Multipliers tried for every coordinate (relative to its current
    /// value).  `1.0` is implicitly the "keep" option.
    pub multipliers: Vec<f64>,
    /// Number of coordinate-descent passes over all coordinates.
    pub passes: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            multipliers: vec![0.1, 0.2, 0.5, 2.0, 5.0, 10.0],
            passes: 2,
        }
    }
}

/// The outcome of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    /// The calibrated parameters.
    pub params: ScoringParams,
    /// Rank agreement of the base parameters on the corpus.
    pub initial_agreement: f64,
    /// Rank agreement of the calibrated parameters on the corpus.
    pub final_agreement: f64,
    /// Every accepted move: `(coordinate, old value, new value, agreement)`.
    pub history: Vec<(Coordinate, f64, f64, f64)>,
}

impl CalibrationResult {
    /// The improvement achieved by the calibration (≥ 0 by construction).
    pub fn improvement(&self) -> f64 {
        self.final_agreement - self.initial_agreement
    }
}

/// Coordinate-descent calibration of the scoring constants against a corpus
/// of survival observations.
///
/// The objective is [`rank_agreement`]; a move is accepted only if it strictly
/// improves the objective, so the final agreement is never worse than the
/// initial one.
pub fn calibrate(
    observations: &[SurvivalObservation],
    base: ScoringParams,
    config: &CalibrationConfig,
) -> CalibrationResult {
    let initial_agreement = rank_agreement(observations, &base);
    let mut params = base.clone();
    let mut best_agreement = initial_agreement;
    let mut history = Vec::new();

    let coordinates = Coordinate::all_for(&base);
    for _ in 0..config.passes {
        for coordinate in &coordinates {
            let current = coordinate.get(&params);
            let mut best_value = current;
            for &multiplier in &config.multipliers {
                let candidate_value = current * multiplier;
                let mut candidate = params.clone();
                coordinate.set(&mut candidate, candidate_value);
                let agreement = rank_agreement(observations, &candidate);
                if agreement > best_agreement + 1e-12 {
                    best_agreement = agreement;
                    best_value = candidate_value;
                }
            }
            if best_value != current {
                coordinate.set(&mut params, best_value);
                history.push((coordinate.clone(), current, best_value, best_agreement));
            }
        }
    }

    CalibrationResult {
        params,
        initial_agreement,
        final_agreement: best_agreement,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_xpath::parse_query;

    fn obs(expr: &str, days: f64) -> SurvivalObservation {
        SurvivalObservation::new(parse_query(expr).unwrap(), days)
    }

    #[test]
    fn rank_agreement_is_one_on_empty_and_singleton_corpora() {
        let params = ScoringParams::paper_defaults();
        assert_eq!(rank_agreement(&[], &params), 1.0);
        assert_eq!(
            rank_agreement(&[obs(r#"descendant::div[@id="a"]"#, 100.0)], &params),
            1.0
        );
    }

    #[test]
    fn rank_agreement_rewards_concordant_corpora() {
        // Under the paper defaults an id-anchored wrapper scores better than a
        // positional one; a corpus in which it also survives longer agrees
        // perfectly, the reversed corpus agrees not at all.
        let params = ScoringParams::paper_defaults();
        let id_anchored = r#"descendant::div[@id="main"]"#;
        let positional = "descendant::div[7]";
        let concordant = vec![obs(id_anchored, 900.0), obs(positional, 60.0)];
        let discordant = vec![obs(id_anchored, 60.0), obs(positional, 900.0)];
        assert_eq!(rank_agreement(&concordant, &params), 1.0);
        assert_eq!(rank_agreement(&discordant, &params), 0.0);
    }

    #[test]
    fn equal_scores_count_as_half_concordant() {
        let params = ScoringParams::paper_defaults();
        // Identical expressions, different survival: the score difference is
        // zero, so the single comparable pair is half-concordant.
        let corpus = vec![
            obs(r#"descendant::div[@id="a"]"#, 10.0),
            obs(r#"descendant::div[@id="a"]"#, 500.0),
        ];
        assert_eq!(rank_agreement(&corpus, &params), 0.5);
    }

    #[test]
    fn coordinates_cover_the_interpretable_constants() {
        let base = ScoringParams::paper_defaults();
        let coordinates = Coordinate::all_for(&base);
        assert!(coordinates.contains(&Coordinate::Decay));
        assert!(coordinates.contains(&Coordinate::AxisScore(Axis::Descendant)));
        assert!(coordinates.contains(&Coordinate::AttributeScore("id".to_string())));
        assert!(coordinates.contains(&Coordinate::NoPredicatePenalty));
        // get/set round-trip for every coordinate.
        let mut params = base.clone();
        for coordinate in &coordinates {
            let value = coordinate.get(&params);
            coordinate.set(&mut params, value * 2.0);
            assert_eq!(coordinate.get(&params), value * 2.0, "{coordinate:?}");
            coordinate.set(&mut params, value);
            assert_eq!(coordinate.get(&params), value, "{coordinate:?}");
        }
    }

    #[test]
    fn calibration_learns_that_class_outlives_id_on_a_reversed_corpus() {
        // The paper's break-reason group (d) documents a site where the class
        // attribute proved *more* robust than the id attribute.  A corpus
        // drawn from such sites should teach the scoring to prefer class.
        let corpus = vec![
            obs(r#"descendant::a[@class="next"]"#, 700.0),
            obs(r#"descendant::span[@class="headline"]"#, 620.0),
            obs(r#"descendant::div[@class="highlight"]"#, 500.0),
            obs(r#"descendant::span[@id="hl20"]"#, 200.0),
            obs(r#"descendant::a[@id="nextlink"]"#, 150.0),
            obs(r#"descendant::div[@id="cnnT1Col"]"#, 120.0),
            obs("descendant::div[4]", 40.0),
        ];
        let base = ScoringParams::paper_defaults();
        let initial = rank_agreement(&corpus, &base);
        assert!(
            initial < 0.7,
            "corpus must contradict the defaults, got {initial}"
        );
        let result = calibrate(&corpus, base.clone(), &CalibrationConfig::default());
        assert!(result.final_agreement >= result.initial_agreement);
        assert!(
            result.final_agreement > 0.9,
            "calibration should nearly perfectly order this corpus, got {}",
            result.final_agreement
        );
        assert!(
            result.params.attribute_score("class") < result.params.attribute_score("id"),
            "learned params should prefer class over id: class={}, id={}",
            result.params.attribute_score("class"),
            result.params.attribute_score("id")
        );
        assert!(!result.history.is_empty());
        assert!(result.improvement() >= 0.0);
    }

    #[test]
    fn calibration_is_a_no_op_on_an_already_explained_corpus() {
        let corpus = vec![
            obs(r#"descendant::input[@id="search"]"#, 1200.0),
            obs(r#"descendant::input[@class="searchbox"]"#, 800.0),
            obs("descendant::form[2]/child::input[3]", 90.0),
        ];
        let base = ScoringParams::paper_defaults();
        assert_eq!(rank_agreement(&corpus, &base), 1.0);
        let result = calibrate(&corpus, base, &CalibrationConfig::default());
        assert_eq!(result.final_agreement, 1.0);
        assert!(result.history.is_empty(), "no move should be accepted");
        assert_eq!(result.improvement(), 0.0);
    }

    #[test]
    fn calibration_never_decreases_agreement() {
        // A deliberately contradictory corpus: no scoring can order it
        // perfectly, but calibration must not make things worse.
        let corpus = vec![
            obs(r#"descendant::div[@id="a"]"#, 100.0),
            obs(r#"descendant::div[@id="b"]"#, 900.0),
            obs(r#"descendant::div[@class="c"]"#, 500.0),
            obs("descendant::div[3]", 700.0),
        ];
        let base = ScoringParams::paper_defaults();
        let result = calibrate(&corpus, base, &CalibrationConfig::default());
        assert!(result.final_agreement >= result.initial_agreement);
    }
}
