//! Query instances and the paper's ranking order.
//!
//! A *query instance* `q = ⟨p, t+, f+, f−⟩` couples an XPath expression with
//! the counts it achieves on the current samples.  Instances are ranked by
//! the order `<` of Section 4: `q < q'` iff `F0.5(q) > F0.5(q')`, or the
//! F-scores tie and `score(q) < score(q')`.  Ties beyond that are broken by
//! the textual form of the expression so that rankings are deterministic
//! across runs.

use crate::fscore::Counts;
use crate::params::ScoringParams;
use crate::score::score_query;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use wi_xpath::Query;

/// A query together with its accuracy counts and cached robustness score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryInstance {
    /// The XPath expression.
    pub query: Query,
    /// Accuracy counts on the samples the instance was evaluated against.
    pub counts: Counts,
    /// The robustness score of [`Self::query`] (smaller is better), cached at
    /// construction time.
    pub score: f64,
}

impl QueryInstance {
    /// Builds an instance, computing and caching the robustness score.
    pub fn new(query: Query, counts: Counts, params: &ScoringParams) -> Self {
        let score = score_query(&query, params);
        QueryInstance {
            query,
            counts,
            score,
        }
    }

    /// Builds an instance from an **already computed** robustness score.
    ///
    /// The caller must pass exactly `score_query(&query, params)` — the
    /// induction hot loop computes that value once for its admission
    /// pre-check and hands it in here so the score is never derived twice
    /// for the same candidate.
    pub fn from_parts(query: Query, counts: Counts, score: f64) -> Self {
        QueryInstance {
            query,
            counts,
            score,
        }
    }

    /// Builds the paper's initial "empty query" instance ε = ⟨ε, 1, 0, 0⟩.
    pub fn epsilon(params: &ScoringParams) -> Self {
        QueryInstance::new(Query::empty(), Counts::new(1, 0, 0), params)
    }

    /// The F0.5 accuracy of the instance.
    pub fn f05(&self) -> f64 {
        self.counts.f_05()
    }

    /// True positives.
    pub fn tp(&self) -> u32 {
        self.counts.tp
    }

    /// False positives.
    pub fn fp(&self) -> u32 {
        self.counts.fp
    }

    /// False negatives.
    pub fn fne(&self) -> u32 {
        self.counts.fne
    }

    /// Returns `true` if the instance selects exactly the annotated nodes.
    pub fn is_exact(&self) -> bool {
        self.counts.is_exact()
    }

    /// Replaces the counts (e.g. after re-evaluating the query against a
    /// different target set) keeping the cached score.
    pub fn with_counts(&self, counts: Counts) -> Self {
        QueryInstance {
            query: self.query.clone(),
            counts,
            score: self.score,
        }
    }
}

/// The paper's ranking order on query instances.
///
/// Returns `Ordering::Less` when `a` is ranked strictly better than `b`
/// (`a < b` in the paper's notation).
pub fn rank_order(a: &QueryInstance, b: &QueryInstance) -> Ordering {
    match b.f05().total_cmp(&a.f05()) {
        Ordering::Equal => match a.score.total_cmp(&b.score) {
            Ordering::Equal => {
                // Deterministic final tie break: shorter queries first, then
                // lexicographic on the rendered expression.
                match a.query.len().cmp(&b.query.len()) {
                    Ordering::Equal => a.query.to_string().cmp(&b.query.to_string()),
                    other => other,
                }
            }
            other => other,
        },
        other => other,
    }
}

/// Returns `true` if `a` is strictly better ranked than `b`.
pub fn strictly_better(a: &QueryInstance, b: &QueryInstance) -> bool {
    rank_order(a, b) == Ordering::Less
}

/// [`rank_order`] with the candidate side passed as parts, so a hot loop
/// can rank a prospective instance against a stored one **without
/// materializing it** (no query clone, no score recomputation): the
/// rendered expression is produced by `a_render` **only** on a complete
/// F-score/score/length tie.  The induction inner loop ranks millions of
/// prospective combinations that lose (or win) on the score comparison
/// alone; deferring the render means those never materialize the candidate
/// expression at all.
///
/// `a_f05` and `a_score` must be the candidate's `counts.f_05()` and
/// `score_query` values; the comparison is exactly
/// `rank_order(&QueryInstance::from_parts(query, …), b)` for the query
/// `a_render` describes.
pub fn rank_order_lazy(
    a_f05: f64,
    a_score: f64,
    a_len: usize,
    a_render: impl FnOnce() -> String,
    b: &QueryInstance,
) -> Ordering {
    match b.f05().total_cmp(&a_f05) {
        Ordering::Equal => match a_score.total_cmp(&b.score) {
            Ordering::Equal => match a_len.cmp(&b.query.len()) {
                Ordering::Equal => a_render().cmp(&b.query.to_string()),
                other => other,
            },
            other => other,
        },
        other => other,
    }
}

/// Sorts a vector of instances into ranking order (best first) and removes
/// duplicate expressions, keeping the best-ranked occurrence.
pub fn sort_and_dedup(instances: &mut Vec<QueryInstance>) {
    instances.sort_by(rank_order);
    let mut seen = std::collections::HashSet::new();
    instances.retain(|q| seen.insert(q.query.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_xpath::parse_query;

    fn instance(expr: &str, tp: u32, fp: u32, fne: u32) -> QueryInstance {
        QueryInstance::new(
            parse_query(expr).unwrap(),
            Counts::new(tp, fp, fne),
            &ScoringParams::paper_defaults(),
        )
    }

    #[test]
    fn accuracy_dominates_score() {
        // A perfectly accurate but expensive query beats a cheap inaccurate
        // one.
        let accurate = instance("child::div[3]/child::span[7]", 5, 0, 0);
        let cheap = instance(r#"descendant::span[@itemprop="name"]"#, 5, 3, 0);
        assert!(strictly_better(&accurate, &cheap));
    }

    #[test]
    fn score_breaks_f_ties() {
        let robust = instance(r#"descendant::span[@itemprop="name"]"#, 5, 0, 0);
        let fragile = instance("child::div[3]/child::span[7]", 5, 0, 0);
        assert!(strictly_better(&robust, &fragile));
        assert_eq!(rank_order(&robust, &fragile), Ordering::Less);
        assert_eq!(rank_order(&fragile, &robust), Ordering::Greater);
    }

    #[test]
    fn identical_instances_are_equal_in_rank() {
        let a = instance(r#"descendant::div[@id="x"]"#, 1, 0, 0);
        let b = instance(r#"descendant::div[@id="x"]"#, 1, 0, 0);
        assert_eq!(rank_order(&a, &b), Ordering::Equal);
    }

    #[test]
    fn epsilon_instance() {
        let eps = QueryInstance::epsilon(&ScoringParams::paper_defaults());
        assert!(eps.query.is_empty());
        assert_eq!(eps.tp(), 1);
        assert_eq!(eps.score, 0.0);
        assert!(eps.is_exact());
    }

    #[test]
    fn sort_and_dedup_keeps_best() {
        let mut v = vec![
            instance("descendant::div", 1, 1, 0),
            instance(r#"descendant::div[@id="x"]"#, 1, 0, 0),
            instance("descendant::div", 1, 1, 0),
            instance(r#"descendant::span[@class="y"]"#, 1, 0, 0),
        ];
        sort_and_dedup(&mut v);
        assert_eq!(v.len(), 3);
        // Exact, cheap instances first.
        assert_eq!(v[0].query.to_string(), r#"descendant::div[@id="x"]"#);
        assert!(
            v.iter()
                .filter(|q| q.query.to_string() == "descendant::div")
                .count()
                == 1
        );
    }

    #[test]
    fn with_counts_preserves_score() {
        let a = instance(r#"descendant::div[@id="x"]"#, 1, 0, 0);
        let b = a.with_counts(Counts::new(3, 1, 2));
        assert_eq!(a.score, b.score);
        assert_eq!(b.tp(), 3);
    }

    #[test]
    fn deterministic_tie_break_on_text() {
        let a = instance(r#"descendant::div[@id="a"]"#, 1, 0, 0);
        let b = instance(r#"descendant::div[@id="b"]"#, 1, 0, 0);
        // Same structure, same counts, same score — order must still be
        // stable and antisymmetric.
        let ab = rank_order(&a, &b);
        let ba = rank_order(&b, &a);
        assert_ne!(ab, Ordering::Equal);
        assert_eq!(ab, ba.reverse());
    }
}
