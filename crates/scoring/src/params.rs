//! Scoring parameters (Section 4) and their default values (Section 6.3).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wi_xpath::{Axis, StringFunction};

/// All constants of the robustness scoring function.
///
/// The defaults are exactly the values the paper reports in Section 6.3
/// ("Parameter Choices"): no per-tag specialisation (`c_node() = c_* = 1`,
/// `c_default = 10`), positional factor 20, no-function-penalty 15,
/// no-predicate-penalty 1000, decay δ = 2.5, plus the axis / attribute /
/// function tables reproduced below.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoringParams {
    /// Decay factor δ applied as `δ^(i-1)` to the i-th step's score.
    pub decay: f64,
    /// Per-axis scores.
    pub axis_scores: BTreeMap<Axis, f64>,
    /// Score of an axis not present in `axis_scores`.
    pub axis_default: f64,
    /// Score of the `node()` node test.
    pub nodetest_node: f64,
    /// Score of the `*` node test.
    pub nodetest_any_element: f64,
    /// Score of the `text()` node test.
    pub nodetest_text: f64,
    /// Per-tag node test scores (empty by default).
    pub tag_scores: BTreeMap<String, f64>,
    /// Default score of a tag node test not present in `tag_scores`.
    pub tag_default: f64,
    /// Per-attribute-name scores (`s_a`).
    pub attribute_scores: BTreeMap<String, f64>,
    /// Score of an attribute name not present in `attribute_scores`.
    pub attribute_default: f64,
    /// Per-function scores (`s_f`).
    pub function_scores: BTreeMap<StringFunction, f64>,
    /// Score of the `last()` construct in `[last()-n]` predicates.
    pub last_score: f64,
    /// Cost of accessing `normalize-space(.)` (`s_text`).
    pub text_access_score: f64,
    /// Positional factor `c_pos`: a positional predicate `[n]` costs
    /// `c_pos · n`.
    pub positional_factor: f64,
    /// Length factor `c_f`: string constants cost `c_f · length(w)`.
    pub length_factor: f64,
    /// Penalty `y` added when an attribute is tested for existence only
    /// (`[@a]`, i.e. no comparison function).
    pub no_function_penalty: f64,
    /// Penalty added to every step that carries no predicate at all.
    pub no_predicate_penalty: f64,
}

impl Default for ScoringParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl ScoringParams {
    /// The parameter values reported in Section 6.3 of the paper.
    pub fn paper_defaults() -> Self {
        let mut axis_scores = BTreeMap::new();
        axis_scores.insert(Axis::Descendant, 1.0);
        axis_scores.insert(Axis::Attribute, 1.0);
        axis_scores.insert(Axis::FollowingSibling, 1.0);
        axis_scores.insert(Axis::Child, 10.0);
        axis_scores.insert(Axis::Parent, 10.0);
        axis_scores.insert(Axis::Ancestor, 20.0);
        axis_scores.insert(Axis::PrecedingSibling, 25.0);

        let mut attribute_scores = BTreeMap::new();
        attribute_scores.insert("id".to_string(), 1.0);
        attribute_scores.insert("type".to_string(), 1.0);
        attribute_scores.insert("title".to_string(), 1.0);
        attribute_scores.insert("itemprop".to_string(), 1.0);
        attribute_scores.insert("class".to_string(), 5.0);
        attribute_scores.insert("for".to_string(), 10.0);
        attribute_scores.insert("name".to_string(), 50.0);

        let mut function_scores = BTreeMap::new();
        function_scores.insert(StringFunction::Equals, 1.0);
        function_scores.insert(StringFunction::Contains, 5.0);
        function_scores.insert(StringFunction::StartsWith, 5.0);
        function_scores.insert(StringFunction::EndsWith, 5.0);

        ScoringParams {
            decay: 2.5,
            axis_scores,
            axis_default: 100.0,
            nodetest_node: 1.0,
            nodetest_any_element: 1.0,
            nodetest_text: 1.0,
            tag_scores: BTreeMap::new(),
            tag_default: 10.0,
            attribute_scores,
            attribute_default: 1000.0,
            function_scores,
            last_score: 20.0,
            text_access_score: 5.0,
            positional_factor: 20.0,
            length_factor: 1.0,
            no_function_penalty: 15.0,
            no_predicate_penalty: 1000.0,
        }
    }

    /// A "flat" parameter set in which every constant is 1 and all penalties
    /// are 0.  This is the scoring used in the NP-hardness construction
    /// (Theorem 1: hardness holds already for a plus-compositional scoring
    /// with all scores set to 1) and is handy for ablation benchmarks.
    pub fn uniform() -> Self {
        ScoringParams {
            decay: 1.0,
            axis_scores: BTreeMap::new(),
            axis_default: 1.0,
            nodetest_node: 1.0,
            nodetest_any_element: 1.0,
            nodetest_text: 1.0,
            tag_scores: BTreeMap::new(),
            tag_default: 1.0,
            attribute_scores: BTreeMap::new(),
            attribute_default: 1.0,
            function_scores: BTreeMap::new(),
            last_score: 1.0,
            text_access_score: 1.0,
            positional_factor: 1.0,
            length_factor: 0.0,
            no_function_penalty: 0.0,
            no_predicate_penalty: 0.0,
        }
    }

    /// Looks up the score of an axis.
    pub fn axis_score(&self, axis: Axis) -> f64 {
        self.axis_scores
            .get(&axis)
            .copied()
            .unwrap_or(self.axis_default)
    }

    /// Looks up the score of an attribute name.
    pub fn attribute_score(&self, name: &str) -> f64 {
        self.attribute_scores
            .get(name)
            .copied()
            .unwrap_or(self.attribute_default)
    }

    /// Looks up the score of a string function.
    pub fn function_score(&self, f: StringFunction) -> f64 {
        self.function_scores.get(&f).copied().unwrap_or(1.0)
    }

    /// Looks up the score of a tag node test.
    pub fn tag_score(&self, tag: &str) -> f64 {
        self.tag_scores
            .get(tag)
            .copied()
            .unwrap_or(self.tag_default)
    }

    /// Returns a copy with a different decay factor (used by the decay
    /// ablation experiment, which sweeps δ between 0.5 and 5 as the paper
    /// describes).
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }

    /// Returns a copy with the no-predicate penalty replaced (ablation).
    pub fn with_no_predicate_penalty(mut self, penalty: f64) -> Self {
        self.no_predicate_penalty = penalty;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_3() {
        let p = ScoringParams::paper_defaults();
        assert_eq!(p.decay, 2.5);
        assert_eq!(p.axis_score(Axis::Descendant), 1.0);
        assert_eq!(p.axis_score(Axis::Child), 10.0);
        assert_eq!(p.axis_score(Axis::Ancestor), 20.0);
        assert_eq!(p.axis_score(Axis::PrecedingSibling), 25.0);
        assert_eq!(p.attribute_score("id"), 1.0);
        assert_eq!(p.attribute_score("class"), 5.0);
        assert_eq!(p.attribute_score("name"), 50.0);
        assert_eq!(p.attribute_score("data-bogus"), 1000.0);
        assert_eq!(p.function_score(StringFunction::Equals), 1.0);
        assert_eq!(p.function_score(StringFunction::Contains), 5.0);
        assert_eq!(p.positional_factor, 20.0);
        assert_eq!(p.no_function_penalty, 15.0);
        assert_eq!(p.no_predicate_penalty, 1000.0);
        assert_eq!(p.tag_score("div"), 10.0);
        assert_eq!(p.nodetest_node, 1.0);
    }

    #[test]
    fn uniform_params_are_flat() {
        let p = ScoringParams::uniform();
        assert_eq!(p.axis_score(Axis::Child), p.axis_score(Axis::Descendant));
        assert_eq!(p.attribute_score("id"), p.attribute_score("class"));
        assert_eq!(p.no_predicate_penalty, 0.0);
        assert_eq!(p.decay, 1.0);
    }

    #[test]
    fn with_modifiers() {
        let p = ScoringParams::paper_defaults().with_decay(0.5);
        assert_eq!(p.decay, 0.5);
        let p = p.with_no_predicate_penalty(0.0);
        assert_eq!(p.no_predicate_penalty, 0.0);
    }

    #[test]
    fn params_are_cloneable_and_debuggable() {
        let p = ScoringParams::paper_defaults();
        let q = p.clone();
        assert!(!format!("{:?}", p).is_empty());
        assert_eq!(q.decay, p.decay);
    }
}
