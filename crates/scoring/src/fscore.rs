//! Precision, recall, and Fβ (Section 2 of the paper).
//!
//! The paper chooses β = 0.5 so the F-score is biased towards precision —
//! spurious (noisy) annotations that would force over-general expressions are
//! punished harder than missed ones.

use serde::{Deserialize, Serialize};

/// True positive / false positive / false negative counts of a query on a
/// set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Counts {
    /// `t+` — number of selected nodes that are annotated.
    pub tp: u32,
    /// `f+` — number of selected nodes that are not annotated.
    pub fp: u32,
    /// `f-` — number of annotated nodes that are not selected.
    pub fne: u32,
}

impl Counts {
    /// Creates a new count triple.
    pub fn new(tp: u32, fp: u32, fne: u32) -> Self {
        Counts { tp, fp, fne }
    }

    /// Component-wise sum, used when aggregating a query's performance over
    /// multiple samples.
    pub fn add(&self, other: &Counts) -> Counts {
        Counts {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            fne: self.fne + other.fne,
        }
    }

    /// Precision of these counts.
    pub fn precision(&self) -> f64 {
        precision(self.tp, self.fp)
    }

    /// Recall of these counts.
    pub fn recall(&self) -> f64 {
        recall(self.tp, self.fne)
    }

    /// Fβ of these counts.
    pub fn f_beta(&self, beta: f64) -> f64 {
        f_beta(self.tp, self.fp, self.fne, beta)
    }

    /// F0.5 — the paper's accuracy measure.
    pub fn f_05(&self) -> f64 {
        self.f_beta(0.5)
    }

    /// Returns `true` if the query selected exactly the annotated nodes.
    pub fn is_exact(&self) -> bool {
        self.fp == 0 && self.fne == 0 && self.tp > 0
    }
}

/// `prec = t+ / (t+ + f+)`; defined as 0 when nothing was selected.
pub fn precision(tp: u32, fp: u32) -> f64 {
    if tp + fp == 0 {
        0.0
    } else {
        f64::from(tp) / f64::from(tp + fp)
    }
}

/// `rec = t+ / (t+ + f-)`; defined as 0 when nothing was annotated.
pub fn recall(tp: u32, fne: u32) -> f64 {
    if tp + fne == 0 {
        0.0
    } else {
        f64::from(tp) / f64::from(tp + fne)
    }
}

/// The Fβ score `(1+β²)·P·R / (β²·P + R)`; 0 when both P and R are 0.
pub fn f_beta(tp: u32, fp: u32, fne: u32, beta: f64) -> f64 {
    let p = precision(tp, fp);
    let r = recall(tp, fne);
    if p == 0.0 && r == 0.0 {
        return 0.0;
    }
    let b2 = beta * beta;
    (1.0 + b2) * p * r / (b2 * p + r)
}

/// F0.5, the paper's choice (β = 0.5, precision-biased).
pub fn f_score_05(tp: u32, fp: u32, fne: u32) -> f64 {
    f_beta(tp, fp, fne, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_counts() {
        let c = Counts::new(5, 0, 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f_05(), 1.0);
        assert!(c.is_exact());
    }

    #[test]
    fn zero_cases() {
        assert_eq!(precision(0, 0), 0.0);
        assert_eq!(recall(0, 0), 0.0);
        assert_eq!(f_beta(0, 0, 0, 0.5), 0.0);
        assert_eq!(f_beta(0, 3, 2, 0.5), 0.0);
        assert!(!Counts::new(0, 0, 0).is_exact());
    }

    #[test]
    fn f05_is_precision_biased() {
        // Same harmonic ingredients, swapped: high precision / low recall
        // must beat low precision / high recall under β = 0.5.
        let precise = f_score_05(8, 0, 2); // P=1.0, R=0.8
        let recallish = f_score_05(8, 2, 0); // P=0.8, R=1.0
        assert!(precise > recallish);
        // And β = 2 would prefer the opposite.
        assert!(f_beta(8, 0, 2, 2.0) < f_beta(8, 2, 0, 2.0));
    }

    #[test]
    fn known_value() {
        // P = 0.5, R = 1.0, β=0.5 → (1.25·0.5·1)/(0.25·0.5+1) = 0.625/1.125
        let f = f_score_05(1, 1, 0);
        assert!((f - 0.555_555).abs() < 1e-5);
    }

    #[test]
    fn add_aggregates_counts() {
        let a = Counts::new(1, 2, 3);
        let b = Counts::new(10, 20, 30);
        let c = a.add(&b);
        assert_eq!(c, Counts::new(11, 22, 33));
    }

    #[test]
    fn f1_matches_classic_formula() {
        let f1 = f_beta(6, 2, 2, 1.0);
        // P = 0.75, R = 0.75 → F1 = 0.75
        assert!((f1 - 0.75).abs() < 1e-12);
    }
}
