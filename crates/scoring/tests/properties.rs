//! Property-based tests of the scoring framework: F-score algebra, the
//! plus-compositional robustness score, the ranking order laws, and the
//! calibration procedure.

use proptest::prelude::*;
use std::cmp::Ordering;
use wi_scoring::{
    calibrate, f_beta, precision, rank_agreement, rank_order, recall, score_query,
    CalibrationConfig, Counts, QueryInstance, ScoringParams, SurvivalObservation,
};
use wi_xpath::{parse_query, Axis, NodeTest, Predicate, Query, Step, StringFunction, TextSource};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_counts() -> impl Strategy<Value = Counts> {
    (0u32..40, 0u32..40, 0u32..40).prop_map(|(tp, fp, fne)| Counts::new(tp, fp, fne))
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (1u32..10).prop_map(Predicate::Position),
        (0u32..4).prop_map(Predicate::LastOffset),
        prop::sample::select(vec!["id", "class", "itemprop", "name", "href"])
            .prop_map(|a| Predicate::HasAttribute(a.to_string())),
        (
            prop::sample::select(StringFunction::ALL.to_vec()),
            prop::sample::select(vec!["id", "class", "itemprop"]),
            "[a-z]{1,10}",
        )
            .prop_map(|(func, attr, value)| Predicate::StringCompare {
                func,
                source: TextSource::Attribute(attr.to_string()),
                value,
            }),
        (
            prop::sample::select(StringFunction::ALL.to_vec()),
            "[A-Za-z ]{1,12}",
        )
            .prop_map(|(func, value)| Predicate::StringCompare {
                func,
                source: TextSource::NormalizedText,
                value,
            }),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        prop::sample::select(vec![
            Axis::Child,
            Axis::Descendant,
            Axis::Parent,
            Axis::Ancestor,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
        ]),
        prop::sample::select(vec!["div", "span", "li", "a", "input"]),
        prop::collection::vec(arb_predicate(), 0..3),
    )
        .prop_map(|(axis, tag, predicates)| Step {
            axis,
            test: NodeTest::tag(tag),
            predicates,
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_step(), 1..5).prop_map(Query::new)
}

fn arb_instance() -> impl Strategy<Value = QueryInstance> {
    (arb_query(), arb_counts()).prop_map(|(query, counts)| {
        QueryInstance::new(query, counts, &ScoringParams::paper_defaults())
    })
}

// ---------------------------------------------------------------------------
// F-score properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Precision, recall and Fβ are always within [0, 1].
    #[test]
    fn accuracy_measures_are_bounded(counts in arb_counts(), beta in 0.1f64..4.0) {
        let p = precision(counts.tp, counts.fp);
        let r = recall(counts.tp, counts.fne);
        let f = f_beta(counts.tp, counts.fp, counts.fne, beta);
        for value in [p, r, f] {
            prop_assert!((0.0..=1.0).contains(&value), "out of range: {value}");
        }
        // Fβ lies between min and max of precision and recall.
        if counts.tp > 0 {
            prop_assert!(f >= p.min(r) - 1e-9);
            prop_assert!(f <= p.max(r) + 1e-9);
        }
    }

    /// A perfect result has precision = recall = Fβ = 1; adding false
    /// positives strictly lowers precision and F0.5.
    #[test]
    fn false_positives_hurt_precision(tp in 1u32..40, fp in 1u32..40, beta in 0.1f64..4.0) {
        let clean = Counts::new(tp, 0, 0);
        prop_assert_eq!(clean.precision(), 1.0);
        prop_assert_eq!(clean.recall(), 1.0);
        prop_assert!((clean.f_beta(beta) - 1.0).abs() < 1e-12);
        prop_assert!(clean.is_exact());

        let noisy = Counts::new(tp, fp, 0);
        prop_assert!(noisy.precision() < 1.0);
        prop_assert!(noisy.f_05() < clean.f_05());
        prop_assert!(!noisy.is_exact());
    }

    /// F0.5 weighs precision more than recall: with the same number of
    /// errors, false positives hurt more than false negatives.
    #[test]
    fn f05_is_precision_biased(tp in 1u32..40, errors in 1u32..40) {
        let with_fp = Counts::new(tp, errors, 0);
        let with_fn = Counts::new(tp, 0, errors);
        prop_assert!(with_fp.f_05() <= with_fn.f_05() + 1e-12);
        // And the bias flips for β = 2 (recall-heavy).
        prop_assert!(with_fp.f_beta(2.0) >= with_fn.f_beta(2.0) - 1e-12);
    }

    /// Count aggregation is componentwise addition.
    #[test]
    fn counts_add_componentwise(a in arb_counts(), b in arb_counts()) {
        let sum = a.add(&b);
        prop_assert_eq!(sum.tp, a.tp + b.tp);
        prop_assert_eq!(sum.fp, a.fp + b.fp);
        prop_assert_eq!(sum.fne, a.fne + b.fne);
    }
}

// ---------------------------------------------------------------------------
// Robustness score properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scores are strictly positive for non-empty queries and zero for the
    /// empty query.
    #[test]
    fn scores_are_positive(q in arb_query()) {
        let params = ScoringParams::paper_defaults();
        prop_assert!(score_query(&q, &params) > 0.0);
        prop_assert_eq!(score_query(&Query::empty(), &params), 0.0);
    }

    /// Plus-composability: the score of a concatenation decomposes into the
    /// head's score plus the decayed tail score, `score(q1/q2) = score(q1) +
    /// δ^{|q1|} · score(q2)`.
    #[test]
    fn score_is_plus_compositional(head in arb_query(), tail in arb_query()) {
        let params = ScoringParams::paper_defaults();
        let mut concatenated = head.clone();
        concatenated.steps.extend(tail.steps.iter().cloned());
        let expected = score_query(&head, &params)
            + params.decay.powi(head.steps.len() as i32) * score_query(&tail, &params);
        let actual = score_query(&concatenated, &params);
        prop_assert!(
            (actual - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "score({}) = {actual}, expected {expected}",
            concatenated
        );
    }

    /// Appending a step never decreases the score (monotonicity in length).
    #[test]
    fn appending_steps_never_decreases_the_score(q in arb_query(), extra in arb_step()) {
        let params = ScoringParams::paper_defaults();
        let base = score_query(&q, &params);
        let mut longer = q.clone();
        longer.steps.push(extra);
        prop_assert!(score_query(&longer, &params) >= base - 1e-9);
    }

    /// Under uniform parameters with decay 1 the score of a predicate-free
    /// query is proportional to its length.
    #[test]
    fn uniform_scoring_counts_steps(steps in prop::collection::vec(
        prop::sample::select(vec![Axis::Child, Axis::Descendant]),
        1..6,
    )) {
        let params = ScoringParams::uniform();
        let query = Query::new(
            steps
                .iter()
                .map(|&axis| Step::new(axis, NodeTest::tag("div")))
                .collect(),
        );
        // axis (1) + tag (1) per step, no penalties under uniform params.
        let expected = 2.0 * steps.len() as f64;
        prop_assert!((score_query(&query, &params) - expected).abs() < 1e-9);
    }

    /// The cached score on a query instance matches `score_query`.
    #[test]
    fn instances_cache_the_score(instance in arb_instance()) {
        let params = ScoringParams::paper_defaults();
        prop_assert_eq!(instance.score, score_query(&instance.query, &params));
    }
}

// ---------------------------------------------------------------------------
// Ranking order laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The ranking order is antisymmetric and reflexively equal.
    #[test]
    fn rank_order_is_antisymmetric(a in arb_instance(), b in arb_instance()) {
        prop_assert_eq!(rank_order(&a, &a), Ordering::Equal);
        prop_assert_eq!(rank_order(&b, &b), Ordering::Equal);
        prop_assert_eq!(rank_order(&a, &b), rank_order(&b, &a).reverse());
    }

    /// The ranking order is transitive (checked on random triples).
    #[test]
    fn rank_order_is_transitive(a in arb_instance(), b in arb_instance(), c in arb_instance()) {
        let ab = rank_order(&a, &b);
        let bc = rank_order(&b, &c);
        if ab == bc || bc == Ordering::Equal {
            prop_assert_eq!(rank_order(&a, &c), ab);
        } else if ab == Ordering::Equal {
            prop_assert_eq!(rank_order(&a, &c), bc);
        }
    }

    /// Accuracy dominates: an instance with strictly higher F0.5 always ranks
    /// strictly better, regardless of the robustness score.
    #[test]
    fn higher_accuracy_always_ranks_better(a in arb_instance(), b in arb_instance()) {
        if a.f05() > b.f05() {
            prop_assert_eq!(rank_order(&a, &b), Ordering::Less);
        } else if a.f05() < b.f05() {
            prop_assert_eq!(rank_order(&a, &b), Ordering::Greater);
        }
    }

    /// With equal accuracy, the cheaper (more robust) expression wins.
    #[test]
    fn cheaper_expressions_win_ties(q1 in arb_query(), q2 in arb_query(), counts in arb_counts()) {
        let params = ScoringParams::paper_defaults();
        let a = QueryInstance::new(q1, counts, &params);
        let b = QueryInstance::new(q2, counts, &params);
        if a.score < b.score {
            prop_assert_eq!(rank_order(&a, &b), Ordering::Less);
        } else if a.score > b.score {
            prop_assert_eq!(rank_order(&a, &b), Ordering::Greater);
        }
    }
}

// ---------------------------------------------------------------------------
// Calibration properties
// ---------------------------------------------------------------------------

fn arb_corpus() -> impl Strategy<Value = Vec<SurvivalObservation>> {
    let expressions = vec![
        r#"descendant::div[@id="main"]"#,
        r#"descendant::div[@class="content"]/descendant::a"#,
        r#"descendant::span[@itemprop="name"]"#,
        "descendant::div[3]/child::span[2]",
        r#"descendant::input[@name="q"]"#,
        r#"descendant::h1[contains(.,"Top")]"#,
        "descendant::li[last()]",
    ];
    prop::collection::vec((prop::sample::select(expressions), 0.0f64..2000.0), 2..10).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(expr, days)| SurvivalObservation::new(parse_query(expr).unwrap(), days))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rank agreement is a proper fraction and calibration never lowers it.
    #[test]
    fn calibration_never_hurts(corpus in arb_corpus()) {
        let base = ScoringParams::paper_defaults();
        let initial = rank_agreement(&corpus, &base);
        prop_assert!((0.0..=1.0).contains(&initial));
        let config = CalibrationConfig { multipliers: vec![0.2, 0.5, 2.0, 5.0], passes: 1 };
        let result = calibrate(&corpus, base, &config);
        prop_assert!((0.0..=1.0).contains(&result.final_agreement));
        prop_assert!(result.final_agreement >= result.initial_agreement - 1e-12);
        prop_assert!((result.initial_agreement - initial).abs() < 1e-12);
        prop_assert!(result.improvement() >= -1e-12);
    }

    /// Rank agreement is invariant under reordering of the corpus.
    #[test]
    fn rank_agreement_is_permutation_invariant(corpus in arb_corpus()) {
        let params = ScoringParams::paper_defaults();
        let forward = rank_agreement(&corpus, &params);
        let mut reversed = corpus.clone();
        reversed.reverse();
        let backward = rank_agreement(&reversed, &params);
        prop_assert!((forward - backward).abs() < 1e-12);
    }
}
