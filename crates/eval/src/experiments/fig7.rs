//! Figure 7 — noise resistance: the fraction of samples for which induction
//! with noisy annotations returns the *same top-ranked expression* as
//! induction from the clean annotations, for the four noise models N1–N4 at
//! increasing intensities.

use super::induction_config_for;
use crate::report::{pct, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_induction::{induce, Sample};
use wi_webgen::datasets::{negative_noise_samples, positive_noise_samples};
use wi_webgen::date::Day;
use wi_webgen::noise::{apply_noise, NoiseKind};
use wi_webgen::vocab::mix_seed;

/// Result row: one noise kind at one intensity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoisePoint {
    /// The noise model.
    pub kind: String,
    /// The intensity (fraction of the target set).
    pub intensity: f64,
    /// Fraction of samples whose top-ranked expression is identical with and
    /// without noise.
    pub identical: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Runs the Figure 7 experiment.
pub fn run(scale: &Scale) -> Vec<NoisePoint> {
    let negative_tasks = negative_noise_samples(scale.negative_noise_samples);
    let positive_tasks = positive_noise_samples(scale.positive_noise_samples);
    let mut out = Vec::new();

    for &kind in NoiseKind::ALL {
        let tasks = if kind.is_negative() {
            &negative_tasks
        } else {
            &positive_tasks
        };
        for &intensity in &scale.noise_intensities {
            let mut identical = 0usize;
            let mut total = 0usize;
            for (i, task) in tasks.iter().enumerate() {
                let (doc, targets) = task.page_with_targets(Day(0));
                if targets.len() < 3 {
                    continue;
                }
                let config = induction_config_for(task, scale.k);
                let clean_sample = Sample::from_root(&doc, &targets);
                let clean = induce(&[clean_sample], &config);
                let Some(clean_top) = clean.first() else {
                    continue;
                };
                let noisy_targets = apply_noise(
                    &doc,
                    &targets,
                    kind,
                    intensity,
                    mix_seed(&[i as u64, (intensity * 100.0) as u64, kind as u64]),
                );
                let noisy_sample = Sample::from_root(&doc, &noisy_targets);
                let noisy = induce(&[noisy_sample], &config);
                total += 1;
                if let Some(noisy_top) = noisy.first() {
                    if noisy_top.query == clean_top.query {
                        identical += 1;
                    }
                }
            }
            out.push(NoisePoint {
                kind: kind.label().to_string(),
                intensity,
                identical: identical as f64 / total.max(1) as f64,
                samples: total,
            });
        }
    }
    out
}

/// Renders the Figure 7 report.
pub fn render(scale: &Scale) -> String {
    let points = run(scale);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.kind.clone(),
                format!("{:.0}%", p.intensity * 100.0),
                pct(p.identical),
                p.samples.to_string(),
            ]
        })
        .collect();
    format!(
        "== Figure 7: identical induction results under annotation noise ==\n{}",
        render_table(
            &["noise model", "intensity", "identical results", "samples"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        let mut s = Scale::tiny();
        s.negative_noise_samples = 4;
        s.positive_noise_samples = 3;
        s
    }

    #[test]
    fn noise_experiment_produces_all_points() {
        let points = run(&scale());
        assert_eq!(points.len(), 4 * 4);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.identical));
        }
    }

    #[test]
    fn positive_random_noise_is_mostly_harmless() {
        // The paper's headline noise claim: random positive noise barely
        // changes the induced wrapper even at high intensities.
        let points = run(&scale());
        let n4_high = points
            .iter()
            .find(|p| p.kind.starts_with("N4") && (p.intensity - 0.7).abs() < 1e-9)
            .unwrap();
        let n1_high = points
            .iter()
            .find(|p| p.kind.starts_with("N1") && (p.intensity - 0.7).abs() < 1e-9)
            .unwrap();
        assert!(
            n4_high.identical >= n1_high.identical,
            "N4@0.7 {} should be at least N1@0.7 {}",
            n4_high.identical,
            n1_high.identical
        );
    }

    #[test]
    fn render_contains_all_models() {
        let text = render(&scale());
        for label in ["N1", "N2", "N3", "N4"] {
            assert!(text.contains(label));
        }
    }
}
