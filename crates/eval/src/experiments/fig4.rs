//! Figure 4 — robustness of expressions matching **multiple nodes**.

use super::{robustness_experiment, RobustnessReport};
use crate::scale::Scale;
use wi_webgen::datasets::multi_node_tasks;

/// Runs the Figure 4 experiment.
pub fn run(scale: &Scale) -> RobustnessReport {
    let tasks = multi_node_tasks(scale.multi_tasks);
    robustness_experiment(&tasks, scale)
}

/// Renders the Figure 4 report.
pub fn render(scale: &Scale) -> String {
    run(scale).render("Figure 4: robustness, multi-node wrappers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_node_robustness_shape() {
        let report = run(&Scale::tiny());
        assert!(!report.tasks.is_empty());
        assert!(report.tasks.iter().all(|t| t.target_count >= 2));
    }
}
