//! Section 6.1 — comparison with WEIR [2]: robustness of induced expressions
//! for hotel detail pages over the 2012–2016 period.
//!
//! WEIR gets 10 same-template pages from 2012 and emits an unranked set of
//! expressions; our system gets a single page.  Each expression's survival is
//! the fraction of the 2012–2016 period during which it still selects the
//! intended value.

use crate::report::{pct, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_baselines::weir::{WeirInducer, WeirPage};
use wi_webgen::datasets::hotel_corpus;
use wi_webgen::date::Day;
use wi_xpath::{evaluate_with, EvalContext, Query};

/// Aggregated comparison result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeirComparison {
    /// Average survival (fraction of the period) of our top-10 expressions.
    pub ours_top10_avg: f64,
    /// Average survival of 10 WEIR expressions.
    pub weir_top10_avg: f64,
    /// Survival of the best expression of ours / WEIR, averaged over sets.
    pub ours_best: f64,
    /// Survival of WEIR's best expression.
    pub weir_best: f64,
    /// Survival of our top-ranked (rank-1) expression.
    pub ours_top_ranked: f64,
    /// Fraction of sets where our best expression survives the whole period.
    pub ours_fully_robust: f64,
    /// Fraction of sets where WEIR's best expression survives the whole
    /// period.
    pub weir_fully_robust: f64,
    /// Number of template sets evaluated.
    pub sets: usize,
}

/// Runs the WEIR comparison.
pub fn run(scale: &Scale) -> WeirComparison {
    let corpus = hotel_corpus(scale.weir_sets, scale.weir_pages_per_set);
    let induction_day = Day::from_ymd(2012, 1, 1);
    let end_day = Day::from_ymd(2016, 1, 1);
    let check_interval = 60i64;

    let mut ours_top10 = Vec::new();
    let mut weir_top10 = Vec::new();
    let mut ours_best = Vec::new();
    let mut weir_best = Vec::new();
    let mut ours_rank1 = Vec::new();
    let mut ours_full = 0usize;
    let mut weir_full = 0usize;
    let mut sets_evaluated = 0usize;

    for set in &corpus {
        // Render the 2012 pages with their targets.
        let pages: Vec<_> = set
            .iter()
            .map(|t| t.page_with_targets(induction_day))
            .collect();
        if pages.iter().any(|(_, targets)| targets.len() != 1) {
            continue;
        }
        sets_evaluated += 1;

        // WEIR sees all pages of the template.
        let weir_input: Vec<WeirPage<'_>> = pages
            .iter()
            .map(|(doc, targets)| WeirPage {
                doc,
                target: targets[0],
            })
            .collect();
        let weir_expressions = WeirInducer::default().induce(&weir_input);

        // Our system sees a single page.
        let task = &set[0];
        let config = super::induction_config_for(task, 10);
        let sample = wi_induction::Sample::from_root(&pages[0].0, &pages[0].1);
        let ours: Vec<Query> = wi_induction::induce(&[sample], &config)
            .into_iter()
            .map(|qi| qi.query)
            .collect();

        // Survival of an expression: fraction of the period it keeps
        // selecting the intended (single) node on the first page of the set.
        let survival = |q: &Query| -> f64 {
            let mut cx = EvalContext::new();
            let mut good = 0usize;
            let mut total = 0usize;
            let mut day = induction_day;
            while day <= end_day {
                let (doc, truth) = task.page_with_targets(day);
                if truth.len() == 1 {
                    total += 1;
                    if evaluate_with(&mut cx, q, &doc, doc.root()) == truth {
                        good += 1;
                    }
                }
                day = day.plus(check_interval);
            }
            good as f64 / total.max(1) as f64
        };

        let ours_survivals: Vec<f64> = ours.iter().take(10).map(&survival).collect();
        let weir_survivals: Vec<f64> = weir_expressions.iter().take(10).map(&survival).collect();

        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let best = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);

        ours_top10.push(avg(&ours_survivals));
        weir_top10.push(avg(&weir_survivals));
        ours_best.push(best(&ours_survivals));
        weir_best.push(best(&weir_survivals));
        ours_rank1.push(ours_survivals.first().copied().unwrap_or(0.0));
        if best(&ours_survivals) >= 0.999 {
            ours_full += 1;
        }
        if best(&weir_survivals) >= 0.999 {
            weir_full += 1;
        }
    }

    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    WeirComparison {
        ours_top10_avg: avg(&ours_top10),
        weir_top10_avg: avg(&weir_top10),
        ours_best: avg(&ours_best),
        weir_best: avg(&weir_best),
        ours_top_ranked: avg(&ours_rank1),
        ours_fully_robust: ours_full as f64 / sets_evaluated.max(1) as f64,
        weir_fully_robust: weir_full as f64 / sets_evaluated.max(1) as f64,
        sets: sets_evaluated,
    }
}

/// Renders the comparison.
pub fn render(scale: &Scale) -> String {
    let r = run(scale);
    let rows = vec![
        vec![
            "top-10 average survival".to_string(),
            pct(r.ours_top10_avg),
            pct(r.weir_top10_avg),
        ],
        vec![
            "best expression survival".to_string(),
            pct(r.ours_best),
            pct(r.weir_best),
        ],
        vec![
            "top-ranked expression survival".to_string(),
            pct(r.ours_top_ranked),
            String::new(),
        ],
        vec![
            "fully robust (whole period)".to_string(),
            pct(r.ours_fully_robust),
            pct(r.weir_fully_robust),
        ],
    ];
    format!(
        "== Section 6.1: comparison with WEIR [2] on same-template hotel pages ({} sets, 2012-2016) ==\n{}",
        r.sets,
        render_table(&["measure", "ours", "WEIR"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weir_comparison_runs_and_we_are_not_worse() {
        let r = run(&Scale::tiny());
        assert!(r.sets >= 1);
        assert!((0.0..=1.0).contains(&r.ours_top10_avg));
        assert!((0.0..=1.0).contains(&r.weir_top10_avg));
        // The qualitative claim of the paper: our expressions are at least as
        // robust as WEIR's.
        assert!(r.ours_best + 1e-9 >= r.weir_best * 0.9);
        assert!(render(&Scale::tiny()).contains("WEIR"));
    }
}
