//! Figure 5 — characteristics of the induced **single-target** expressions:
//! number of steps, node tests per step position, and predicate kinds.

use super::induce_for_task;
use crate::report::render_table;
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_webgen::datasets::single_node_tasks;
use wi_webgen::tasks::WrapperTask;
use wi_xpath::{Axis, NodeTest, Predicate, Query, TextSource};

/// Aggregated expression characteristics (the content of Figures 5 / 6).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Characteristics {
    /// Number of expressions per step count (1, 2, 3+).
    pub step_counts: Vec<(usize, usize)>,
    /// Axis usage over all steps.
    pub axes: Vec<(String, usize)>,
    /// Node-test usage per step position (tag → counts by step index 0..3).
    pub nodetests: Vec<(String, [usize; 3])>,
    /// Predicate kinds per step position.
    pub predicates: Vec<(String, [usize; 3])>,
    /// Total number of steps over all expressions.
    pub total_steps: usize,
}

/// Computes the characteristics of a set of expressions.
pub fn characteristics(expressions: &[Query]) -> Characteristics {
    let mut by_len: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut axes: std::collections::BTreeMap<String, usize> = Default::default();
    let mut nodetests: std::collections::BTreeMap<String, [usize; 3]> = Default::default();
    let mut predicates: std::collections::BTreeMap<String, [usize; 3]> = Default::default();
    let mut total_steps = 0usize;

    for q in expressions {
        *by_len.entry(q.len()).or_insert(0) += 1;
        for (i, step) in q.steps.iter().enumerate() {
            let pos = i.min(2);
            total_steps += 1;
            *axes.entry(step.axis.name().to_string()).or_insert(0) += 1;
            let test_label = match &step.test {
                NodeTest::Tag(t) => t.clone(),
                NodeTest::AnyElement => "*".to_string(),
                NodeTest::AnyNode => "node()".to_string(),
                NodeTest::Text => "text()".to_string(),
            };
            nodetests.entry(test_label).or_default()[pos] += 1;
            for p in &step.predicates {
                let label = predicate_label(p);
                predicates.entry(label).or_default()[pos] += 1;
            }
        }
        // Count attribute-axis steps the way Figure 5 counts predicates on
        // `@…` (they act as attribute tests).
        let _ = Axis::Attribute;
    }

    Characteristics {
        step_counts: by_len.into_iter().collect(),
        axes: axes.into_iter().collect(),
        nodetests: nodetests.into_iter().collect(),
        predicates: predicates.into_iter().collect(),
        total_steps,
    }
}

fn predicate_label(p: &Predicate) -> String {
    match p {
        Predicate::Position(_) | Predicate::LastOffset(_) => "positional".to_string(),
        Predicate::HasAttribute(a) => a.clone(),
        Predicate::StringCompare { source, .. } => match source {
            TextSource::Attribute(a) => a.clone(),
            TextSource::NormalizedText => "text".to_string(),
        },
        Predicate::Path(_) => "nested-path".to_string(),
    }
}

/// Induces the top-ranked single-target expressions and analyses them.
pub fn run(scale: &Scale) -> Characteristics {
    let tasks = single_node_tasks(scale.single_tasks);
    characteristics(&top_expressions(&tasks, scale))
}

pub(crate) fn top_expressions(tasks: &[WrapperTask], scale: &Scale) -> Vec<Query> {
    tasks
        .iter()
        .filter_map(|t| induce_for_task(t, scale.k).into_iter().next())
        .map(|qi| qi.query)
        .collect()
}

/// Renders the Figure 5 report.
pub fn render(scale: &Scale) -> String {
    render_characteristics(
        &run(scale),
        "Figure 5: node tests / predicates of single-target expressions",
    )
}

/// Shared text rendering for Figures 5 and 6.
pub fn render_characteristics(c: &Characteristics, title: &str) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!("total steps: {}\n", c.total_steps));
    out.push_str("expressions by number of steps:\n");
    for (len, count) in &c.step_counts {
        out.push_str(&format!("  {len} step(s): {count}\n"));
    }
    out.push_str("axes used:\n");
    for (axis, count) in &c.axes {
        out.push_str(&format!("  {axis}: {count}\n"));
    }
    let rows: Vec<Vec<String>> = c
        .nodetests
        .iter()
        .map(|(t, counts)| {
            vec![
                t.clone(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["nodetest", "step1", "step2", "step3+"],
        &rows,
    ));
    let rows: Vec<Vec<String>> = c
        .predicates
        .iter()
        .map(|(t, counts)| {
            vec![
                t.clone(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["predicate", "step1", "step2", "step3+"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_xpath::parse_query;

    #[test]
    fn characteristics_of_known_expressions() {
        let qs = vec![
            parse_query(r#"descendant::div[@id="a"]/descendant::span[@class="b"]"#).unwrap(),
            parse_query(r#"descendant::input[@name="q"]"#).unwrap(),
            parse_query("descendant::img[2]").unwrap(),
        ];
        let c = characteristics(&qs);
        assert_eq!(c.total_steps, 4);
        assert_eq!(c.step_counts, vec![(1, 2), (2, 1)]);
        let axes: std::collections::HashMap<_, _> = c.axes.iter().cloned().collect();
        assert_eq!(axes.get("descendant"), Some(&4));
        let preds: std::collections::HashMap<_, _> =
            c.predicates.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(preds.get("id").map(|v| v[0]), Some(1));
        assert_eq!(preds.get("class").map(|v| v[1]), Some(1));
        assert_eq!(preds.get("positional").map(|v| v[0]), Some(1));
    }

    #[test]
    fn single_target_expressions_are_short_and_descendant_based() {
        let c = run(&Scale::tiny());
        assert!(c.total_steps > 0);
        // The induced single-target wrappers should be dominated by
        // descendant steps, as in the paper.
        let axes: std::collections::HashMap<_, _> = c.axes.iter().cloned().collect();
        let descendant = axes.get("descendant").copied().unwrap_or(0);
        assert!(descendant * 2 >= c.total_steps);
        assert!(render(&Scale::tiny()).contains("Figure 5"));
    }
}
