//! Section 6.3, "Parameter Choices" — the scoring-parameter table and the
//! decay-factor ablation (the paper reports δ = 2.5 as optimal after sweeping
//! 0.5–5).

use super::induction_config_for;
use crate::report::render_table;
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_scoring::ScoringParams;
use wi_webgen::datasets::single_node_tasks;
use wi_xpath::{Axis, StringFunction};

/// One point of the decay sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayPoint {
    /// The decay factor δ.
    pub decay: f64,
    /// Mean survival days of the top-ranked induced wrappers.
    pub mean_valid_days: f64,
}

/// Renders the parameter table (the constants of Section 6.3).
pub fn render_parameters() -> String {
    let p = ScoringParams::paper_defaults();
    let mut rows = Vec::new();
    for axis in [
        Axis::Descendant,
        Axis::Attribute,
        Axis::FollowingSibling,
        Axis::Child,
        Axis::Parent,
        Axis::Ancestor,
        Axis::PrecedingSibling,
    ] {
        rows.push(vec![
            format!("axis {}", axis.name()),
            format!("{}", p.axis_score(axis)),
        ]);
    }
    for attr in ["id", "type", "title", "class", "for", "name"] {
        rows.push(vec![
            format!("attribute {attr}"),
            format!("{}", p.attribute_score(attr)),
        ]);
    }
    rows.push(vec![
        "attribute (default)".to_string(),
        format!("{}", p.attribute_default),
    ]);
    for f in StringFunction::ALL {
        rows.push(vec![
            format!("function {}", f.name()),
            format!("{}", p.function_score(*f)),
        ]);
    }
    rows.push(vec![
        "positional factor".to_string(),
        format!("{}", p.positional_factor),
    ]);
    rows.push(vec!["last()".to_string(), format!("{}", p.last_score)]);
    rows.push(vec![
        "no-function penalty".to_string(),
        format!("{}", p.no_function_penalty),
    ]);
    rows.push(vec![
        "no-predicate penalty".to_string(),
        format!("{}", p.no_predicate_penalty),
    ]);
    rows.push(vec!["decay δ".to_string(), format!("{}", p.decay)]);
    format!(
        "== Section 6.3: scoring parameters ==\n{}",
        render_table(&["parameter", "value"], &rows)
    )
}

/// Runs the decay-factor ablation: re-induce the single-node dataset under
/// several δ values and compare the robustness of the top-ranked wrappers.
pub fn decay_sweep(scale: &Scale, decays: &[f64]) -> Vec<DecayPoint> {
    let tasks = single_node_tasks(scale.single_tasks);
    decays
        .iter()
        .map(|&decay| {
            // Patch the scoring parameters in a copy of the per-task config.
            let patched: Vec<_> = tasks
                .iter()
                .map(|t| {
                    let mut config = induction_config_for(t, scale.k);
                    config.params = config.params.with_decay(decay);
                    (t.clone(), config)
                })
                .collect();
            // Reuse the robustness machinery by running per task.
            let mut days = Vec::new();
            for (task, config) in &patched {
                let (doc, targets) = task.page_with_targets(wi_webgen::date::Day(0));
                if targets.is_empty() {
                    continue;
                }
                let inducer = wi_induction::WrapperInducer::new(config.clone());
                let sample = wi_induction::Sample::from_root(&doc, &targets);
                if let Some(top) = inducer.induce(&[sample]).first() {
                    let outcome = crate::robustness::run_robustness_standard(
                        task,
                        &top.query,
                        scale.snapshot_interval,
                    );
                    days.push(outcome.valid_days);
                }
            }
            DecayPoint {
                decay,
                mean_valid_days: crate::report::mean(&days),
            }
        })
        .collect()
}

/// Renders the parameter table plus a small decay sweep.
pub fn render(scale: &Scale) -> String {
    let mut out = render_parameters();
    let sweep = decay_sweep(scale, &[0.5, 1.0, 2.5, 5.0]);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| vec![format!("{}", p.decay), format!("{:.0}", p.mean_valid_days)])
        .collect();
    out.push_str(&format!(
        "\n== Decay-factor ablation ==\n{}",
        render_table(&["decay δ", "mean valid days (top-ranked)"], &rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_table_lists_paper_values() {
        let text = render_parameters();
        assert!(text.contains("axis descendant"));
        assert!(text.contains("no-predicate penalty"));
        assert!(text.contains("2.5"));
    }

    #[test]
    fn decay_sweep_produces_points() {
        let points = decay_sweep(&Scale::tiny(), &[1.0, 2.5]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.mean_valid_days >= 0.0));
    }

    #[test]
    fn robustness_experiment_is_reused() {
        // Keep the shared engine exercised from this module too.
        let report =
            crate::experiments::robustness_experiment(&single_node_tasks(2), &Scale::tiny());
        assert_eq!(report.tasks.len(), 2);
    }
}
