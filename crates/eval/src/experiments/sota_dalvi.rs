//! Section 6.1 — comparison with Dalvi et al. [6] (probabilistic tree-edit
//! robustness): the *success ratio* of wrappers for IMDB director names over
//! 15 bi-monthly snapshots, for three overlapping periods.
//!
//! The success ratio of a system is the percentage of snapshots at time `t`
//! whose induced wrapper still works on the immediately following snapshot
//! `t+1`.

use crate::report::{pct, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_baselines::treeedit::{ChangeModel, TreeEditInducer};
use wi_induction::{induce, Sample};
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::datasets::imdb_director_task;
use wi_webgen::date::Day;
use wi_xpath::{evaluate_with, EvalContext};

/// Success ratios for one observation period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeriodResult {
    /// Label of the period (e.g. "2004–2006").
    pub period: String,
    /// Success ratio of our induction.
    pub ours: f64,
    /// Success ratio of the tree-edit baseline.
    pub treeedit: f64,
    /// Number of snapshot transitions evaluated.
    pub transitions: usize,
}

/// Runs the Dalvi-style comparison over the three periods the paper uses.
pub fn run(scale: &Scale) -> Vec<PeriodResult> {
    let periods = [
        (
            "2004-2006",
            Day::from_ymd(2004, 1, 1),
            Day::from_ymd(2006, 6, 1),
        ),
        (
            "2005-2007",
            Day::from_ymd(2005, 1, 1),
            Day::from_ymd(2007, 6, 1),
        ),
        (
            "2006-2008",
            Day::from_ymd(2006, 1, 1),
            Day::from_ymd(2008, 6, 1),
        ),
    ];
    let task = imdb_director_task();
    let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);

    periods
        .iter()
        .map(|(label, start, end)| {
            // 15 snapshots at ~2-month intervals.
            let snapshots = archive.snapshots_every(*start, *end, 60);
            let snapshots: Vec<_> = snapshots.into_iter().take(15).collect();
            let mut cx = EvalContext::new();
            let mut ours_ok = 0usize;
            let mut treeedit_ok = 0usize;
            let mut transitions = 0usize;

            for pair in snapshots.windows(2) {
                let (current, next) = (&pair[0], &pair[1]);
                let truth_now = task.targets_in(&current.doc, current.day);
                let truth_next = task.targets_in(&next.doc, next.day);
                if truth_now.is_empty() || truth_next.is_empty() {
                    continue;
                }
                transitions += 1;

                // Our system: induce from the single current snapshot.
                let config = super::induction_config_for(&task, scale.k);
                let sample = Sample::from_root(&current.doc, &truth_now);
                if let Some(top) = induce(&[sample], &config).first() {
                    if evaluate_with(&mut cx, &top.query, &next.doc, next.doc.root()) == truth_next
                    {
                        ours_ok += 1;
                    }
                }

                // Tree-edit baseline: learn the change model from the
                // snapshots before `current`, induce, check on `next`.
                let history: Vec<&wi_dom::Document> = snapshots
                    .iter()
                    .take_while(|s| s.day <= current.day)
                    .map(|s| &s.doc)
                    .collect();
                let model = ChangeModel::learn(&history);
                let inducer = TreeEditInducer::new(model, scale.k);
                if let Some(top) = inducer.induce(&current.doc, truth_now[0]).first() {
                    if evaluate_with(&mut cx, top, &next.doc, next.doc.root()) == truth_next {
                        treeedit_ok += 1;
                    }
                }
            }

            PeriodResult {
                period: label.to_string(),
                ours: ours_ok as f64 / transitions.max(1) as f64,
                treeedit: treeedit_ok as f64 / transitions.max(1) as f64,
                transitions,
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(scale: &Scale) -> String {
    let results = run(scale);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.period.clone(),
                pct(r.ours),
                pct(r.treeedit),
                r.transitions.to_string(),
            ]
        })
        .collect();
    format!(
        "== Section 6.1: success ratio vs probabilistic tree-edit baseline (Dalvi et al. [6]) ==\n{}",
        render_table(&["period", "ours", "tree-edit [6]", "transitions"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_ratios_computed_for_three_periods() {
        let results = run(&Scale::tiny());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.transitions >= 10, "only {} transitions", r.transitions);
            assert!((0.0..=1.0).contains(&r.ours));
            assert!((0.0..=1.0).contains(&r.treeedit));
            // Our wrappers must be at least as stable as the weaker baseline.
            assert!(r.ours + 1e-9 >= r.treeedit * 0.8);
        }
        assert!(render(&Scale::tiny()).contains("success ratio"));
    }
}
