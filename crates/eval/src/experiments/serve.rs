//! The `serve` experiment: the extraction-as-a-service daemon exercised
//! end-to-end over real TCP.
//!
//! An in-process [`Server`] is started on a scratch
//! [`PersistentRegistry`]; for a handful of webgen tasks the whole
//! lifecycle then runs *over HTTP*: induce from ground-truth texts,
//! extract the day-0 page (the served texts must equal the generated
//! truth), stream a multi-document batch, maintain over later snapshots,
//! and read back `/sites` and `/metrics`.  The run closes with the
//! durability gate of the service path: graceful shutdown, drop, recover
//! from the shard logs — every revision committed over HTTP must survive.
//!
//! All floors are gated through [`render_checked`], which CI exercises in
//! smoke mode (`run_experiments serve --smoke`).

use crate::report::render_table;
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_dom::to_html;
use wi_induction::harvest_targets_by_text;
use wi_induction::json::JsonValue;
use wi_maintain::{Maintainer, PersistentRegistry};
use wi_serve::client;
use wi_serve::router::percent_encode;
use wi_serve::{ServeConfig, Server};
use wi_webgen::datasets::single_node_tasks;
use wi_webgen::date::Day;
use wi_webgen::tasks::WrapperTask;

/// Shards of the experiment's scratch registry.
const REGISTRY_SHARDS: usize = 4;
/// Tasks served (the experiment is a smoke gate, not a benchmark).
const MAX_TASKS: usize = 5;

/// The aggregated result of the serve experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Sites induced and installed over HTTP.
    pub sites: usize,
    /// Extraction requests answered.
    pub extract_requests: usize,
    /// … whose served texts equalled the webgen ground truth.
    pub extract_matches: usize,
    /// Documents pushed through `/extract/batch`.
    pub batch_docs: usize,
    /// … that came back as successful NDJSON lines.
    pub batch_ok: usize,
    /// Maintenance epochs replayed over HTTP.
    pub maintain_epochs: usize,
    /// Total requests the daemon's metrics counted.
    pub requests_total: u64,
    /// Revisions on disk when the daemon drained.
    pub persisted_revisions: usize,
    /// … restored by a fresh recovery from the shard logs.
    pub recovered_revisions: usize,
}

impl ServeReport {
    /// Returns the floor violations of this run (empty when all gates
    /// pass).
    pub fn floor_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.sites == 0 {
            violations.push("no site was induced over HTTP".to_string());
        }
        if self.extract_matches != self.extract_requests {
            violations.push(format!(
                "{} of {} served extractions matched the ground truth",
                self.extract_matches, self.extract_requests
            ));
        }
        if self.batch_ok != self.batch_docs {
            violations.push(format!(
                "{} of {} batch documents extracted",
                self.batch_ok, self.batch_docs
            ));
        }
        if self.requests_total == 0 {
            violations.push("metrics counted zero requests".to_string());
        }
        if self.recovered_revisions != self.persisted_revisions {
            violations.push(format!(
                "recovery restored {} of {} revisions committed over HTTP",
                self.recovered_revisions, self.persisted_revisions
            ));
        }
        violations
    }
}

/// A unique scratch directory for the run's registry.
fn registry_scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "wi-eval-serve-registry-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Tasks whose ground-truth nodes are text-addressable (the `/induce`
/// endpoint locates targets by their text).
fn served_tasks(scale: &Scale) -> Vec<WrapperTask> {
    single_node_tasks(scale.single_tasks.max(MAX_TASKS) * 2)
        .into_iter()
        .filter(|task| {
            let (doc, targets) = task.page_with_targets(Day(0));
            let texts: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
            harvest_targets_by_text(&doc, &texts) == targets
        })
        .take(MAX_TASKS)
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> ServeReport {
    let scratch = registry_scratch_dir();
    let _ = std::fs::remove_dir_all(&scratch);
    let registry = PersistentRegistry::create(&scratch, REGISTRY_SHARDS)
        .expect("scratch registry directory is writable");
    let handle = Server::start(registry, Maintainer::default(), ServeConfig::default())
        .expect("daemon binds a loopback port");
    let addr = handle.addr();

    let mut report = ServeReport {
        sites: 0,
        extract_requests: 0,
        extract_matches: 0,
        batch_docs: 0,
        batch_ok: 0,
        maintain_epochs: 0,
        requests_total: 0,
        persisted_revisions: 0,
        recovered_revisions: 0,
    };

    for task in served_tasks(scale) {
        let site = task.id();
        let encoded = percent_encode(&site);
        let (doc, targets) = task.page_with_targets(Day(0));
        let truth: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
        let html = to_html(&doc);

        // Induce + install over HTTP.
        let induce_body = object(vec![
            ("day", JsonValue::Number(0.0)),
            (
                "samples",
                JsonValue::Array(vec![object(vec![
                    ("html", JsonValue::String(html.clone())),
                    (
                        "target_texts",
                        JsonValue::Array(truth.iter().cloned().map(JsonValue::String).collect()),
                    ),
                ])]),
            ),
        ]);
        let induced = client::post_json(addr, &format!("/induce/{encoded}"), &induce_body)
            .expect("induce request");
        if induced.status != 200 {
            continue;
        }
        report.sites += 1;

        // Single-document extraction must reproduce the ground truth.
        let extracted = client::post(
            addr,
            &format!("/extract/{encoded}"),
            "text/html",
            html.as_bytes(),
        )
        .expect("extract request");
        report.extract_requests += 1;
        if extracted.status == 200 {
            let served: Vec<String> = extracted
                .json()
                .ok()
                .and_then(|v| {
                    v.get("texts").and_then(|t| {
                        t.as_array().map(|a| {
                            a.iter()
                                .filter_map(|s| s.as_str().map(String::from))
                                .collect()
                        })
                    })
                })
                .unwrap_or_default();
            if served == truth {
                report.extract_matches += 1;
            }
        }

        // A small batch over the NDJSON stream.
        let days = [Day(0), Day(scale.snapshot_interval)];
        let docs: Vec<JsonValue> = days
            .iter()
            .map(|&day| JsonValue::String(to_html(&task.page_with_targets(day).0)))
            .collect();
        report.batch_docs += docs.len();
        let batch_body = object(vec![
            ("site", JsonValue::String(site.clone())),
            ("docs", JsonValue::Array(docs)),
        ]);
        if let Ok(batch) = client::post_json(addr, "/extract/batch", &batch_body) {
            if batch.status == 200 {
                report.batch_ok += batch
                    .text()
                    .lines()
                    .filter_map(|line| wi_induction::json::parse_json(line).ok())
                    .filter(|line| line.get("texts").is_some())
                    .count();
            }
        }

        // Maintenance over the next snapshots, persisted through the
        // daemon.
        let snapshots: Vec<JsonValue> = (1i64..=2)
            .map(|i| {
                let day = scale.snapshot_interval * i;
                object(vec![
                    ("day", JsonValue::Number(day as f64)),
                    (
                        "html",
                        JsonValue::String(to_html(&task.page_with_targets(Day(day)).0)),
                    ),
                ])
            })
            .collect();
        let maintain_body = object(vec![("snapshots", JsonValue::Array(snapshots))]);
        if let Ok(maintained) =
            client::post_json(addr, &format!("/maintain/{encoded}"), &maintain_body)
        {
            if maintained.status == 200 {
                report.maintain_epochs += maintained
                    .json()
                    .ok()
                    .and_then(|v| v.get("epochs").and_then(JsonValue::as_f64))
                    .unwrap_or(0.0) as usize;
            }
        }
    }

    report.requests_total = handle.state().metrics.requests_total();

    // Graceful shutdown, then the service-path durability gate.
    let _ = client::post_json(addr, "/admin/shutdown", &object(vec![]));
    let registry = handle.wait();
    report.persisted_revisions = registry
        .sites()
        .map(|site| registry.history(site).len())
        .sum();
    drop(registry);
    let recovered = PersistentRegistry::recover(&scratch).expect("registry recovers");
    report.recovered_revisions = if recovered.recovery_report().clean() {
        recovered
            .sites()
            .map(|site| recovered.history(site).len())
            .sum()
    } else {
        0 // a torn log after a graceful drain is a durability bug
    };
    drop(recovered);
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

/// Renders the report.
pub fn render(scale: &Scale) -> String {
    render_report(&run(scale))
}

/// Renders the report and returns an error listing every violated floor
/// (the `run_experiments` binary exits non-zero on `Err`).
pub fn render_checked(scale: &Scale) -> Result<String, String> {
    let report = run(scale);
    let rendered = render_report(&report);
    let violations = report.floor_violations();
    if violations.is_empty() {
        Ok(rendered)
    } else {
        Err(format!(
            "{rendered}\nSERVE FLOOR VIOLATIONS:\n  {}",
            violations.join("\n  ")
        ))
    }
}

fn render_report(report: &ServeReport) -> String {
    let mut out = String::from("== Extraction as a service over the persistent registry ==\n");
    let rows = vec![
        vec![
            "induce over HTTP".to_string(),
            format!("{} sites installed", report.sites),
        ],
        vec![
            "extract".to_string(),
            format!(
                "{} / {} matched ground truth",
                report.extract_matches, report.extract_requests
            ),
        ],
        vec![
            "extract/batch".to_string(),
            format!(
                "{} / {} documents streamed",
                report.batch_ok, report.batch_docs
            ),
        ],
        vec![
            "maintain".to_string(),
            format!("{} epochs persisted", report.maintain_epochs),
        ],
        vec![
            "metrics".to_string(),
            format!("{} requests counted", report.requests_total),
        ],
        vec![
            "durability".to_string(),
            format!(
                "{} / {} revisions recovered after drain",
                report.recovered_revisions, report.persisted_revisions
            ),
        ],
    ];
    out.push_str(&render_table(&["stage", "result"], &rows));
    out.push_str(&format!(
        "floors: all extracts exact, all batch docs ok, zero lost revisions — {}\n",
        if report.floor_violations().is_empty() {
            "pass"
        } else {
            "FAIL"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_meets_the_acceptance_floors() {
        let report = run(&Scale::tiny());
        assert!(report.sites >= 3, "only {} sites served", report.sites);
        assert_eq!(report.extract_matches, report.extract_requests);
        assert_eq!(report.batch_ok, report.batch_docs);
        assert!(report.maintain_epochs > 0);
        assert!(report.requests_total > 0);
        assert_eq!(report.recovered_revisions, report.persisted_revisions);
        assert!(report.floor_violations().is_empty());
    }

    #[test]
    fn render_reports_every_stage() {
        match render_checked(&Scale::tiny()) {
            Ok(rendered) => {
                assert!(rendered.contains("induce over HTTP"));
                assert!(rendered.contains("durability"));
                assert!(rendered.contains("pass"));
            }
            Err(report) => panic!("serve floors violated:\n{report}"),
        }
    }
}
