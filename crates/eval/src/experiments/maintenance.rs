//! The `maintenance` experiment: the full wrapper lifecycle (verify →
//! classify → repair) replayed over the deterministic webgen archive,
//! scored against the generated ground truth.
//!
//! For every task an exact wrapper is induced on the first snapshot,
//! installed in a *persisted* [`PersistentRegistry`] (sharded append-only
//! version logs in a scratch directory — the production storage path), and
//! maintained across the whole observation window through the parallel
//! [`PersistentRegistry::maintain_batch`] driver.  The run closes with a
//! durability gate: the live registry is dropped and recovered from its
//! shard logs, and the recovery must restore every committed revision.  The
//! webgen timelines then provide what no real-world archive can: per-epoch
//! ground-truth targets *and* the generated change class behind every break,
//! so the experiment reports
//!
//! * **verifier recall/precision** — how many genuinely broken epochs the
//!   (ground-truth-blind) verifier flags,
//! * **drift-classification accuracy** — how often the classifier's break
//!   group matches the timeline's [`ChangeClass`] for the break window,
//! * **repair recovery** — the mean post-break extraction F1 of the
//!   maintained wrapper, against the same wrapper left unrepaired,
//! * **survival curves** — the fraction of tasks extracting correctly at
//!   each epoch, with and without repair.
//!
//! The three headline numbers are gated:
//! [`MaintenanceReport::floor_violations`] lists every violated floor and
//! [`render_checked`] turns them into a failing run, which CI exercises in
//! smoke mode (`run_experiments maintenance --smoke`).

use crate::report::{pct, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_dom::{Document, NodeId};
use wi_induction::sample::counts_against;
use wi_induction::{Extractor, WrapperBundle, WrapperInducer};
use wi_maintain::{DriftClass, Maintainer, MaintenanceJob, PageVersion, PersistentRegistry};
use wi_maintain::{LastKnownGood, MaintenanceLog};
use wi_scoring::f_beta;
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::date::{Day, OBSERVATION_END, OBSERVATION_START};
use wi_webgen::epoch::ChangeClass;
use wi_webgen::tasks::WrapperTask;

/// The gated verifier-recall floor (asserted in tests and enforced by
/// `run_experiments maintenance`).
pub const VERIFIER_RECALL_FLOOR: f64 = 0.95;
/// Minimum drift-classification accuracy over flagged breaks.
pub const CLASSIFICATION_ACCURACY_FLOOR: f64 = 0.80;
/// Minimum mean post-break extraction F1 with repair enabled.
pub const REPAIR_RECOVERY_FLOOR: f64 = 0.90;

/// One point of the survival curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurvivalPoint {
    /// Epoch day.
    pub day: i64,
    /// Fraction of (non-broken-capture) tasks extracting correctly with the
    /// maintained wrapper.
    pub with_repair: f64,
    /// Same fraction for the never-repaired wrapper.
    pub without_repair: f64,
}

/// The aggregated result of the maintenance experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaintenanceReport {
    /// Tasks maintained.
    pub tasks: usize,
    /// Epochs replayed per task.
    pub epochs_per_task: usize,
    /// Broken-capture epochs skipped (paper group (e)).
    pub broken_capture_epochs: usize,
    /// Epochs where the in-force wrapper's extraction differed from ground
    /// truth (excluding broken captures).
    pub broken_epochs: usize,
    /// … of which the verifier flagged.
    pub flagged_broken_epochs: usize,
    /// Healthy epochs the verifier flagged anyway.
    pub false_flags: usize,
    /// … of which had an *empty* ground truth (the target legitimately
    /// disappeared; a ground-truth-blind verifier keeps flagging the empty
    /// extraction).
    pub false_flags_empty_truth: usize,
    /// `flagged_broken_epochs / broken_epochs`.
    pub verifier_recall: f64,
    /// `flagged_broken / (flagged_broken + false_flags)`.
    pub verifier_precision: f64,
    /// First-break events (transitions correct → broken, flagged).
    pub break_events: usize,
    /// … of which the classifier matched the generated change class.
    pub class_matches: usize,
    /// `class_matches / break_events`.
    pub classification_accuracy: f64,
    /// Confusion counts `(generated class, classified class, count)`.
    pub confusion: Vec<(String, String, usize)>,
    /// Repairs installed across all tasks.
    pub repairs: usize,
    /// Post-break epochs scored for F1 (non-empty truth, healthy capture).
    pub post_break_epochs: usize,
    /// Mean post-break extraction F1 of the maintained wrapper.
    pub post_break_f1_with_repair: f64,
    /// Mean post-break extraction F1 of the never-repaired wrapper.
    pub post_break_f1_without_repair: f64,
    /// Survival curve samples.
    pub survival: Vec<SurvivalPoint>,
    /// Shards of the persisted registry the run maintained.
    pub registry_shards: usize,
    /// Bundle revisions the persisted registry held when the run finished.
    pub persisted_revisions: usize,
    /// … of which a fresh recovery from the shard logs restored.  Anything
    /// other than equality is a durability bug and a gated floor violation.
    pub recovered_revisions: usize,
}

impl MaintenanceReport {
    /// Returns the floor violations of this run (empty when all gates pass).
    pub fn floor_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.broken_epochs > 0 && self.verifier_recall < VERIFIER_RECALL_FLOOR {
            violations.push(format!(
                "verifier recall {} below floor {}",
                pct(self.verifier_recall),
                pct(VERIFIER_RECALL_FLOOR)
            ));
        }
        if self.break_events > 0 && self.classification_accuracy < CLASSIFICATION_ACCURACY_FLOOR {
            violations.push(format!(
                "drift-classification accuracy {} below floor {}",
                pct(self.classification_accuracy),
                pct(CLASSIFICATION_ACCURACY_FLOOR)
            ));
        }
        if self.post_break_epochs > 0 && self.post_break_f1_with_repair < REPAIR_RECOVERY_FLOOR {
            violations.push(format!(
                "post-break F1 with repair {:.3} below floor {:.2}",
                self.post_break_f1_with_repair, REPAIR_RECOVERY_FLOOR
            ));
        }
        if self.recovered_revisions != self.persisted_revisions {
            violations.push(format!(
                "registry recovery restored {} of {} committed revisions",
                self.recovered_revisions, self.persisted_revisions
            ));
        }
        violations
    }
}

/// One maintained task, ready for scoring.
struct TaskRun {
    task: WrapperTask,
    job: MaintenanceJob,
    log: MaintenanceLog,
    original: WrapperBundle,
}

/// Shards of the experiment's persisted registry.
const REGISTRY_SHARDS: usize = 8;

/// A unique scratch directory for the run's persisted registry.
fn registry_scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "wi-eval-maintenance-registry-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> MaintenanceReport {
    let mut tasks: Vec<WrapperTask> = single_node_tasks(scale.single_tasks);
    tasks.extend(multi_node_tasks(scale.multi_tasks));

    // Induce + install + build jobs.  The registry is the *persisted* one:
    // the experiment exercises the production storage path (sharded
    // append-only logs in a scratch directory) and closes with a recovery
    // that must restore every committed revision.
    let scratch = registry_scratch_dir();
    let _ = std::fs::remove_dir_all(&scratch);
    let mut registry = PersistentRegistry::create(&scratch, REGISTRY_SHARDS)
        .expect("scratch registry directory is writable");
    let mut jobs: Vec<MaintenanceJob> = Vec::new();
    let mut kept: Vec<(WrapperTask, WrapperBundle)> = Vec::new();
    for task in tasks {
        let (doc0, targets0) = task.page_with_targets(Day(0));
        if targets0.is_empty() {
            continue;
        }
        let instances = super::induce_for_task(&task, scale.k);
        let Some(top) = instances.into_iter().next() else {
            continue;
        };
        let bundle = WrapperBundle::from_instances(
            std::slice::from_ref(&top),
            wi_scoring::ScoringParams::paper_defaults(),
        )
        .with_label(task.id());
        let site_key = task.id();
        registry
            .install(&site_key, bundle.clone(), 0)
            .expect("install commits to the shard log");

        let archive = wi_webgen::archive::ArchiveSimulator::new(
            task.site.clone(),
            task.page_index,
            task.kind,
        );
        let pages: Vec<PageVersion> = snapshot_days(scale.snapshot_interval)
            .into_iter()
            .map(|day| PageVersion {
                day: day.offset(),
                doc: archive.snapshot(day).doc,
            })
            .collect();
        jobs.push(MaintenanceJob {
            site: site_key,
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc0, 0, &targets0)),
            inducer: Some(WrapperInducer::new(super::induction_config_for(
                &task, scale.k,
            ))),
        });
        kept.push((task, bundle));
    }

    // The parallel batch driver: one evaluation context per worker, every
    // revision and maintenance position committed to the shard logs.
    let maintainer = Maintainer::default();
    let logs = registry
        .maintain_batch(&jobs, &maintainer)
        .expect("batch commits to the shard logs");

    // Durability gate: drop the live registry and recover from disk — the
    // recovery must be clean and restore every committed revision.
    let persisted_revisions: usize = registry
        .sites()
        .map(|site| registry.history(site).len())
        .sum();
    drop(registry);
    let recovered = PersistentRegistry::recover(&scratch).expect("registry recovers");
    let recovered_revisions = if recovered.recovery_report().clean() {
        recovered
            .sites()
            .map(|site| recovered.history(site).len())
            .sum()
    } else {
        0 // a torn log on a cleanly written registry is a durability bug
    };
    drop(recovered);
    let _ = std::fs::remove_dir_all(&scratch);

    let runs: Vec<TaskRun> = kept
        .into_iter()
        .zip(jobs)
        .zip(logs)
        .map(|(((task, original), job), log)| TaskRun {
            task,
            job,
            log,
            original,
        })
        .collect();

    let mut report = score(runs, scale);
    report.registry_shards = REGISTRY_SHARDS;
    report.persisted_revisions = persisted_revisions;
    report.recovered_revisions = recovered_revisions;
    report
}

/// The snapshot days of the observation window at the scale's interval.
fn snapshot_days(interval: i64) -> Vec<Day> {
    let mut days = Vec::new();
    let mut d = OBSERVATION_START;
    while d <= OBSERVATION_END {
        days.push(d);
        d = d.plus(interval);
    }
    days
}

/// Whether an extraction equals the ground-truth node set.
fn extraction_correct(doc: &Document, extracted: &[NodeId], truth: &[NodeId]) -> bool {
    let mut a = extracted.to_vec();
    let mut b = truth.to_vec();
    doc.sort_document_order(&mut a);
    doc.sort_document_order(&mut b);
    a == b
}

/// F1 of an extraction against the ground-truth node set.
fn extraction_f1(extracted: &[NodeId], truth: &[NodeId]) -> f64 {
    let counts = counts_against(extracted, truth);
    f_beta(counts.tp, counts.fp, counts.fne, 1.0)
}

/// Every change class generated inside a break window, with block removals
/// scoped to the wrapper's own block (a removal elsewhere is positional
/// churn for this wrapper).
fn window_classes(
    timeline: &wi_webgen::epoch::Timeline,
    after: Day,
    upto: Day,
    role_block: Option<wi_webgen::epoch::BlockKind>,
) -> Vec<ChangeClass> {
    let mut classes: Vec<ChangeClass> = timeline
        .events_between(after, upto)
        .iter()
        .map(|(_, event)| match event {
            wi_webgen::epoch::ChangeEvent::RemoveBlock(b) if role_block != Some(*b) => {
                ChangeClass::Positional
            }
            other => other.change_class(),
        })
        .collect();
    classes.sort();
    classes.dedup();
    classes
}

/// Maps the classifier's break group onto the generated change class.
fn classes_match(truth: ChangeClass, predicted: DriftClass) -> bool {
    matches!(
        (truth, predicted),
        (ChangeClass::Positional, DriftClass::Positional)
            | (ChangeClass::AttributeRename, DriftClass::AttributeRename)
            | (ChangeClass::Redesign, DriftClass::Redesign)
            | (ChangeClass::TargetRemoved, DriftClass::TargetRemoved)
            | (ChangeClass::BrokenSnapshot, DriftClass::PageBroken)
    )
}

/// Scores the maintenance logs against ground truth.
fn score(runs: Vec<TaskRun>, scale: &Scale) -> MaintenanceReport {
    let epochs_per_task = runs.first().map(|r| r.log.outcomes.len()).unwrap_or(0);

    let mut broken_capture_epochs = 0usize;
    let mut broken_epochs = 0usize;
    let mut flagged_broken = 0usize;
    let mut false_flags = 0usize;
    let mut false_flags_empty_truth = 0usize;
    let mut break_events = 0usize;
    let mut class_matches = 0usize;
    let mut confusion: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let mut repairs = 0usize;
    let mut f1_with_sum = 0.0f64;
    let mut f1_without_sum = 0.0f64;
    let mut post_break_epochs = 0usize;
    // survival[j] = (with-repair correct, without-repair correct, counted)
    let mut survival = vec![(0usize, 0usize, 0usize); epochs_per_task];

    for run in &runs {
        let timeline = &run.task.site.timeline;
        let role_block = run.task.role.can_disappear().then(|| run.task.role.block());
        let mut cx = wi_xpath::EvalContext::new();
        let mut last_correct_day = OBSERVATION_START.offset() - scale.snapshot_interval;
        let mut first_break_day: Option<i64> = None;

        for (j, outcome) in run.log.outcomes.iter().enumerate() {
            let day = Day(outcome.day);
            let doc = &run.job.pages[j].doc;
            if timeline.snapshot_broken(day) {
                broken_capture_epochs += 1;
                continue;
            }
            let truth = run.task.targets_in(doc, day);
            // The pre-repair extraction of the in-force bundle is recorded
            // in the verifier's health report.
            let broken = !extraction_correct(doc, &outcome.health.extracted, &truth);

            if broken {
                broken_epochs += 1;
                if outcome.flagged {
                    flagged_broken += 1;
                }
                if first_break_day.is_none() {
                    first_break_day = Some(outcome.day);
                }
                // A *break event*: the first broken epoch after a correct
                // one, with the verifier's flag (the classifier only sees
                // flagged snapshots).
                if outcome.flagged && last_correct_day >= outcome.day - scale.snapshot_interval {
                    if let Some(predicted) = outcome.drift {
                        break_events += 1;
                        let dominant = timeline.dominant_change_between(
                            Day(last_correct_day),
                            day,
                            role_block,
                        );
                        // A coarse snapshot interval can pack several
                        // generated changes into one break window; the
                        // classifier is right when it names any of them.
                        let matched =
                            window_classes(timeline, Day(last_correct_day), day, role_block)
                                .into_iter()
                                .any(|truth_class| classes_match(truth_class, predicted));
                        if matched {
                            class_matches += 1;
                        }
                        *confusion
                            .entry((dominant.label().to_string(), predicted.label().to_string()))
                            .or_insert(0) += 1;
                    }
                }
            } else {
                if outcome.flagged {
                    false_flags += 1;
                    if truth.is_empty() {
                        false_flags_empty_truth += 1;
                    }
                }
                last_correct_day = outcome.day;
            }
            if outcome.repaired {
                repairs += 1;
            }

            // Survival + post-break F1 compare the *maintained* pipeline
            // (extraction after any repair) with the never-repaired bundle.
            let maintained_correct = extraction_correct(doc, &outcome.extracted, &truth);
            let original_extracted = run
                .original
                .extract_with(&mut cx, doc, doc.root())
                .unwrap_or_default();
            let original_correct = extraction_correct(doc, &original_extracted, &truth);
            survival[j].0 += maintained_correct as usize;
            survival[j].1 += original_correct as usize;
            survival[j].2 += 1;

            if let Some(first) = first_break_day {
                if outcome.day >= first && !truth.is_empty() {
                    f1_with_sum += extraction_f1(&outcome.extracted, &truth);
                    f1_without_sum += extraction_f1(&original_extracted, &truth);
                    post_break_epochs += 1;
                }
            }
        }
    }

    let survival: Vec<SurvivalPoint> = runs
        .first()
        .map(|r| {
            survival
                .iter()
                .enumerate()
                .filter(|(_, (_, _, counted))| *counted > 0)
                .map(|(j, &(with, without, counted))| SurvivalPoint {
                    day: r.log.outcomes[j].day,
                    with_repair: with as f64 / counted as f64,
                    without_repair: without as f64 / counted as f64,
                })
                .collect()
        })
        .unwrap_or_default();

    MaintenanceReport {
        tasks: runs.len(),
        epochs_per_task,
        broken_capture_epochs,
        broken_epochs,
        flagged_broken_epochs: flagged_broken,
        false_flags,
        false_flags_empty_truth,
        verifier_recall: flagged_broken as f64 / broken_epochs.max(1) as f64,
        verifier_precision: flagged_broken as f64 / (flagged_broken + false_flags).max(1) as f64,
        break_events,
        class_matches,
        classification_accuracy: class_matches as f64 / break_events.max(1) as f64,
        confusion: confusion
            .into_iter()
            .map(|((truth, predicted), count)| (truth, predicted, count))
            .collect(),
        repairs,
        post_break_epochs,
        post_break_f1_with_repair: f1_with_sum / post_break_epochs.max(1) as f64,
        post_break_f1_without_repair: f1_without_sum / post_break_epochs.max(1) as f64,
        survival,
        // Filled in by `run` once the persisted registry has been recovered.
        registry_shards: 0,
        persisted_revisions: 0,
        recovered_revisions: 0,
    }
}

/// Renders the report.
pub fn render(scale: &Scale) -> String {
    let report = run(scale);
    render_report(&report)
}

/// Renders the report and returns an error listing every violated floor
/// (the `run_experiments` binary exits non-zero on `Err`).
pub fn render_checked(scale: &Scale) -> Result<String, String> {
    let report = run(scale);
    let rendered = render_report(&report);
    let violations = report.floor_violations();
    if violations.is_empty() {
        Ok(rendered)
    } else {
        Err(format!(
            "{rendered}\nMAINTENANCE FLOOR VIOLATIONS:\n  {}",
            violations.join("\n  ")
        ))
    }
}

fn render_report(report: &MaintenanceReport) -> String {
    let mut out = String::from("== Wrapper lifecycle maintenance over the archive ==\n");
    out.push_str(&format!(
        "tasks {} · epochs/task {} · broken captures skipped {}\n",
        report.tasks, report.epochs_per_task, report.broken_capture_epochs
    ));
    out.push_str(&format!(
        "verifier: {} of {} broken epochs flagged (recall {}, precision {}, \
         false flags {} — {} on legitimately empty targets)\n",
        report.flagged_broken_epochs,
        report.broken_epochs,
        pct(report.verifier_recall),
        pct(report.verifier_precision),
        report.false_flags,
        report.false_flags_empty_truth
    ));
    out.push_str(&format!(
        "classifier: {} of {} flagged breaks matched the generated class (accuracy {})\n",
        report.class_matches,
        report.break_events,
        pct(report.classification_accuracy)
    ));
    if !report.confusion.is_empty() {
        let rows: Vec<Vec<String>> = report
            .confusion
            .iter()
            .map(|(t, p, c)| vec![t.clone(), p.clone(), c.to_string()])
            .collect();
        out.push_str(&render_table(
            &["generated class", "classified as", "count"],
            &rows,
        ));
    }
    out.push_str(&format!(
        "repair: {} repairs · post-break F1 {:.3} with repair vs {:.3} without ({} epochs)\n",
        report.repairs,
        report.post_break_f1_with_repair,
        report.post_break_f1_without_repair,
        report.post_break_epochs
    ));
    out.push_str(&format!(
        "registry: {} revisions persisted across {} shards · recovery restored {} ({})\n",
        report.persisted_revisions,
        report.registry_shards,
        report.recovered_revisions,
        if report.recovered_revisions == report.persisted_revisions {
            "0 lost"
        } else {
            "REVISIONS LOST"
        }
    ));
    out.push_str("survival (fraction of tasks extracting correctly):\n");
    let step = (report.survival.len() / 10).max(1);
    let rows: Vec<Vec<String>> = report
        .survival
        .iter()
        .step_by(step)
        .map(|p| {
            vec![
                Day(p.day).to_string(),
                pct(p.with_repair),
                pct(p.without_repair),
            ]
        })
        .collect();
    out.push_str(&render_table(&["epoch", "with repair", "without"], &rows));
    out.push_str(&format!(
        "floors: recall >= {}, classification >= {}, post-break F1 >= {:.2} — {}\n",
        pct(VERIFIER_RECALL_FLOOR),
        pct(CLASSIFICATION_ACCURACY_FLOOR),
        REPAIR_RECOVERY_FLOOR,
        if report.floor_violations().is_empty() {
            "pass"
        } else {
            "FAIL"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_meets_the_acceptance_floors() {
        // The deterministic seed the acceptance criteria are pinned to.
        let report = run(&Scale::tiny());
        assert!(report.tasks >= 5, "only {} tasks ran", report.tasks);
        assert!(
            report.broken_epochs > 0,
            "the timelines produced no breaks to verify against"
        );
        assert!(
            report.verifier_recall >= VERIFIER_RECALL_FLOOR,
            "verifier recall {} (flagged {}/{})",
            report.verifier_recall,
            report.flagged_broken_epochs,
            report.broken_epochs
        );
        assert!(report.break_events > 0);
        assert!(
            report.classification_accuracy >= CLASSIFICATION_ACCURACY_FLOOR,
            "classification accuracy {} (confusion {:?})",
            report.classification_accuracy,
            report.confusion
        );
        assert!(
            report.post_break_f1_with_repair >= REPAIR_RECOVERY_FLOOR,
            "post-break F1 {} over {} epochs",
            report.post_break_f1_with_repair,
            report.post_break_epochs
        );
        assert!(
            report.post_break_f1_with_repair > report.post_break_f1_without_repair,
            "repair must beat no-repair ({} vs {})",
            report.post_break_f1_with_repair,
            report.post_break_f1_without_repair
        );
        assert!(report.floor_violations().is_empty());
        // The persisted registry survived drop + recover with zero lost
        // committed revisions.
        assert!(report.persisted_revisions >= report.tasks);
        assert_eq!(
            report.recovered_revisions, report.persisted_revisions,
            "registry recovery lost revisions"
        );
    }

    #[test]
    fn render_reports_the_headline_numbers() {
        let rendered = render(&Scale::tiny());
        assert!(rendered.contains("verifier:"));
        assert!(rendered.contains("classifier:"));
        assert!(rendered.contains("post-break F1"));
        assert!(rendered.contains("registry:"));
        assert!(rendered.contains("0 lost"));
        assert!(rendered.contains("survival"));
        assert!(render_checked(&Scale::tiny()).is_ok());
    }
}
