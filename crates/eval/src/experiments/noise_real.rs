//! Section 6.4, "Real-Life Noise" — inducing wrappers from the annotations of
//! a (simulated) named-entity recogniser over product-listing pages, and
//! checking whether the top-ranked expression recovers the intended entity
//! list despite the annotation noise.

use crate::report::{pct, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_induction::config::TextPolicy;
use wi_induction::{induce, InductionConfig, Sample};
use wi_webgen::datasets::ner_pages;
use wi_webgen::date::Day;
use wi_webgen::ner::{annotate_listing_page, EntityKind, NerConfig};
use wi_webgen::site::PageKind;
use wi_xpath::{evaluate_with, EvalContext};

/// Result of the NER-noise experiment on one page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerPageResult {
    /// Site id.
    pub site: String,
    /// The entity kind annotated.
    pub entity: String,
    /// Negative noise of the NER annotations.
    pub negative_noise: f64,
    /// Positive noise of the NER annotations.
    pub positive_noise: f64,
    /// Whether the top-ranked induced expression selects exactly the true
    /// entity nodes.
    pub recovered: bool,
    /// The induced expression.
    pub expression: String,
}

/// Summary over all pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerReport {
    /// Per-page results.
    pub pages: Vec<NerPageResult>,
    /// Average negative noise.
    pub avg_negative: f64,
    /// Average positive noise.
    pub avg_positive: f64,
    /// Fraction of pages where the intended set was recovered exactly.
    pub recovered_fraction: f64,
}

/// Runs the real-life-noise experiment.
pub fn run(scale: &Scale) -> NerReport {
    let sites = ner_pages(scale.ner_pages);
    let ner_config = NerConfig::default();
    let mut pages = Vec::new();
    let mut cx = EvalContext::new();

    for (i, site) in sites.iter().enumerate() {
        let kind = EntityKind::ALL[i % EntityKind::ALL.len()];
        let (doc, annotation) =
            annotate_listing_page(site, i as u64, kind, &ner_config, 9000 + i as u64);
        if annotation.truth.is_empty() || annotation.annotated.is_empty() {
            continue;
        }
        let view = site.page_view(i as u64, Day(0), PageKind::Listing);
        let config = InductionConfig::default()
            .with_k(scale.k)
            .with_text_policy(TextPolicy::TemplateOnly(view.data.template_labels()));
        let sample = Sample::from_root(&doc, &annotation.annotated);
        let induced = induce(&[sample], &config);
        let (recovered, expression) = match induced.first() {
            Some(top) => {
                let mut selected = evaluate_with(&mut cx, &top.query, &doc, doc.root());
                doc.sort_document_order(&mut selected);
                let mut truth = annotation.truth.clone();
                doc.sort_document_order(&mut truth);
                (selected == truth, top.query.to_string())
            }
            None => (false, "(induction failed)".to_string()),
        };
        pages.push(NerPageResult {
            site: site.id.clone(),
            entity: format!("{kind:?}"),
            negative_noise: annotation.negative_noise,
            positive_noise: annotation.positive_noise,
            recovered,
            expression,
        });
    }

    let n = pages.len().max(1) as f64;
    NerReport {
        avg_negative: pages.iter().map(|p| p.negative_noise).sum::<f64>() / n,
        avg_positive: pages.iter().map(|p| p.positive_noise).sum::<f64>() / n,
        recovered_fraction: pages.iter().filter(|p| p.recovered).count() as f64 / n,
        pages,
    }
}

/// Renders the report.
pub fn render(scale: &Scale) -> String {
    let report = run(scale);
    let rows: Vec<Vec<String>> = report
        .pages
        .iter()
        .map(|p| {
            vec![
                p.site.clone(),
                p.entity.clone(),
                pct(p.negative_noise),
                pct(p.positive_noise),
                if p.recovered { "yes" } else { "NO" }.to_string(),
                p.expression.clone(),
            ]
        })
        .collect();
    format!(
        "== Section 6.4: real-life NER noise ==\navg negative noise {} | avg positive noise {} | intended set recovered on {} of pages\n{}",
        pct(report.avg_negative),
        pct(report.avg_positive),
        pct(report.recovered_fraction),
        render_table(
            &["site", "entity", "neg noise", "pos noise", "recovered", "top expression"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ner_experiment_recovers_most_pages() {
        let mut scale = Scale::tiny();
        scale.ner_pages = 3;
        let report = run(&scale);
        assert!(!report.pages.is_empty());
        assert!(report.avg_negative >= 0.0);
        assert!(report.recovered_fraction >= 0.0);
        assert!(render(&scale).contains("NER"));
    }
}
