//! One module per table / figure of the paper's evaluation, plus the shared
//! plumbing they use.

pub mod batch;
pub mod change_rate;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod maintenance;
pub mod noise_real;
pub mod params_report;
pub mod serve;
pub mod sota_dalvi;
pub mod sota_weir;
pub mod table1;
pub mod table2;
pub mod timing;

use crate::robustness::{run_robustness_standard, BreakReason, RobustnessOutcome};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_induction::config::TextPolicy;
use wi_induction::{InductionConfig, Sample, WrapperInducer};
use wi_scoring::QueryInstance;
use wi_webgen::date::Day;
use wi_webgen::tasks::WrapperTask;
use wi_xpath::{parse_query, Query};

/// The induction configuration the evaluation uses for a task: the paper's
/// defaults, with text predicates restricted to template labels (Section 6.2
/// excludes volatile data text).
pub fn induction_config_for(task: &WrapperTask, k: usize) -> InductionConfig {
    InductionConfig::default()
        .with_k(k)
        .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))))
}

/// Induces the ranked wrapper candidates for a task from its first snapshot.
pub fn induce_for_task(task: &WrapperTask, k: usize) -> Vec<QueryInstance> {
    let (doc, targets) = task.page_with_targets(Day(0));
    if targets.is_empty() {
        return Vec::new();
    }
    let inducer = WrapperInducer::new(induction_config_for(task, k));
    let sample = Sample::from_root(&doc, &targets);
    inducer.induce(&[sample])
}

/// The per-task result of a robustness comparison run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRobustness {
    /// Task identifier (`site/Role`).
    pub task_id: String,
    /// Top-ranked induced expression (textual), if induction succeeded.
    pub induced_expression: Option<String>,
    /// Outcome of the induced wrapper.
    pub induced: Option<RobustnessOutcome>,
    /// Outcome of the human wrapper.
    pub human: RobustnessOutcome,
    /// Outcome of the canonical wrapper.
    pub canonical: RobustnessOutcome,
    /// Number of target nodes on the first snapshot.
    pub target_count: usize,
}

/// Aggregate statistics over the tasks of a robustness experiment (one of
/// Figures 3 / 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Per-task outcomes.
    pub tasks: Vec<TaskRobustness>,
    /// Survival-day histogram buckets for induced / human / canonical.
    pub histogram: Vec<(String, usize, usize, usize)>,
    /// Mean survival days (induced, human, canonical).
    pub mean_days: (f64, f64, f64),
    /// Median survival days (induced, human, canonical).
    pub median_days: (f64, f64, f64),
    /// Break-reason counts of the induced wrappers.
    pub induced_break_reasons: Vec<(String, usize)>,
    /// Fraction of tasks where the induced wrapper survives at least as long
    /// as the human wrapper.
    pub induced_at_least_human: f64,
    /// Robustness in the paper's sense: fraction of tasks with a robustly
    /// wrappable target (human wrapper survives > 0 days) where the induced
    /// wrapper also survives > 0 days.
    pub robust_fraction: f64,
}

/// Runs the robustness comparison (induced vs human vs canonical) over a set
/// of tasks — the engine behind Figures 3 and 4.
pub fn robustness_experiment(tasks: &[WrapperTask], scale: &Scale) -> RobustnessReport {
    let mut results: Vec<TaskRobustness> = Vec::new();
    for task in tasks {
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.is_empty() {
            continue;
        }
        let induced = induce_for_task(task, scale.k);
        let induced_query: Option<Query> = induced.first().map(|q| q.query.clone());
        let human_query = match parse_query(&task.human_wrapper) {
            Ok(q) => q,
            Err(_) => continue,
        };
        let canonical = wi_baselines::CanonicalWrapper::induce(&doc, &targets);

        let induced_outcome = induced_query
            .as_ref()
            .map(|q| run_robustness_standard(task, q, scale.snapshot_interval));
        let human_outcome = run_robustness_standard(task, &human_query, scale.snapshot_interval);
        let canonical_outcome = run_robustness_standard(task, &canonical, scale.snapshot_interval);

        results.push(TaskRobustness {
            task_id: task.id(),
            induced_expression: induced_query.map(|q| q.to_string()),
            induced: induced_outcome,
            human: human_outcome,
            canonical: canonical_outcome,
            target_count: targets.len(),
        });
    }

    summarise(results)
}

fn summarise(tasks: Vec<TaskRobustness>) -> RobustnessReport {
    let induced_days: Vec<i64> = tasks
        .iter()
        .filter_map(|t| t.induced.as_ref().map(|o| o.valid_days))
        .collect();
    let human_days: Vec<i64> = tasks.iter().map(|t| t.human.valid_days).collect();
    let canonical_days: Vec<i64> = tasks.iter().map(|t| t.canonical.valid_days).collect();

    let buckets = [
        (0i64, 100i64),
        (100, 400),
        (400, 800),
        (800, 1500),
        (1500, 4000),
    ];
    let hist_i = crate::report::day_histogram(&induced_days, &buckets);
    let hist_h = crate::report::day_histogram(&human_days, &buckets);
    let hist_c = crate::report::day_histogram(&canonical_days, &buckets);
    let histogram = hist_i
        .iter()
        .zip(hist_h.iter())
        .zip(hist_c.iter())
        .map(|((i, h), c)| (i.0.clone(), i.1, h.1, c.1))
        .collect();

    let mut reason_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for t in &tasks {
        if let Some(o) = &t.induced {
            *reason_counts.entry(format!("{:?}", o.reason)).or_insert(0) += 1;
        }
    }

    let at_least = tasks
        .iter()
        .filter(|t| {
            t.induced
                .as_ref()
                .map(|o| o.valid_days >= t.human.valid_days)
                .unwrap_or(false)
        })
        .count();
    let wrappable = tasks
        .iter()
        .filter(|t| t.human.valid_days > 0 || t.human.reason == BreakReason::SurvivedFullPeriod)
        .count();
    let robust = tasks
        .iter()
        .filter(|t| {
            (t.human.valid_days > 0 || t.human.reason == BreakReason::SurvivedFullPeriod)
                && t.induced
                    .as_ref()
                    .map(|o| o.valid_days > 0)
                    .unwrap_or(false)
        })
        .count();

    RobustnessReport {
        mean_days: (
            crate::report::mean(&induced_days),
            crate::report::mean(&human_days),
            crate::report::mean(&canonical_days),
        ),
        median_days: (
            crate::report::median(&induced_days),
            crate::report::median(&human_days),
            crate::report::median(&canonical_days),
        ),
        induced_break_reasons: reason_counts.into_iter().collect(),
        induced_at_least_human: at_least as f64 / tasks.len().max(1) as f64,
        robust_fraction: robust as f64 / wrappable.max(1) as f64,
        histogram,
        tasks,
    }
}

impl RobustnessReport {
    /// Renders the report as text (the "figure" in tabular form).
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("== {title} ==\n");
        out.push_str(&format!("tasks evaluated: {}\n", self.tasks.len()));
        out.push_str(&format!(
            "mean valid days    induced {:>7.1}  human {:>7.1}  canonical {:>7.1}\n",
            self.mean_days.0, self.mean_days.1, self.mean_days.2
        ));
        out.push_str(&format!(
            "median valid days  induced {:>7.1}  human {:>7.1}  canonical {:>7.1}\n",
            self.median_days.0, self.median_days.1, self.median_days.2
        ));
        out.push_str(&format!(
            "induced >= human in {} of cases; robust fraction {}\n",
            crate::report::pct(self.induced_at_least_human),
            crate::report::pct(self.robust_fraction)
        ));
        out.push_str("survival histogram (days: induced / human / canonical):\n");
        let rows: Vec<Vec<String>> = self
            .histogram
            .iter()
            .map(|(b, i, h, c)| vec![b.clone(), i.to_string(), h.to_string(), c.to_string()])
            .collect();
        out.push_str(&crate::report::render_table(
            &["bucket", "induced", "human", "canonical"],
            &rows,
        ));
        out.push_str("induced break reasons:\n");
        for (reason, count) in &self.induced_break_reasons {
            out.push_str(&format!("  {reason}: {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_webgen::datasets;

    #[test]
    fn robustness_experiment_smoke() {
        let tasks = datasets::single_node_tasks(3);
        let report = robustness_experiment(&tasks, &Scale::tiny());
        assert!(!report.tasks.is_empty());
        assert!(report.render("smoke").contains("mean valid days"));
        for t in &report.tasks {
            assert!(
                t.induced_expression.is_some(),
                "induction failed for {}",
                t.task_id
            );
        }
    }

    #[test]
    fn induce_for_task_produces_exact_wrapper() {
        let tasks = datasets::single_node_tasks(2);
        for task in &tasks {
            let instances = induce_for_task(task, 5);
            assert!(!instances.is_empty());
            assert!(instances[0].is_exact(), "{} not exact", instances[0].query);
        }
    }
}
