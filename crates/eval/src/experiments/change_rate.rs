//! Section 6.2, "Change Rate" — how often the canonical path to the target
//! nodes changes while the induced wrappers stay valid (the *c-change*
//! statistics).

use super::{induce_for_task, robustness_experiment};
use crate::report::{mean, render_table};
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};

/// c-change statistics for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRateReport {
    /// Dataset label.
    pub dataset: String,
    /// Average number of c-changes survived by the induced wrappers.
    pub avg_c_changes: f64,
    /// Maximum number of c-changes survived.
    pub max_c_changes: usize,
    /// Number of wrappers that survive more than five c-changes.
    pub more_than_five: usize,
    /// Number of wrappers evaluated.
    pub wrappers: usize,
}

/// Runs the change-rate analysis for the single- and multi-node datasets.
pub fn run(scale: &Scale) -> Vec<ChangeRateReport> {
    let mut out = Vec::new();
    for (label, tasks) in [
        ("single-node", single_node_tasks(scale.single_tasks)),
        ("multi-node", multi_node_tasks(scale.multi_tasks)),
    ] {
        let report = robustness_experiment(&tasks, scale);
        let c_changes: Vec<i64> = report
            .tasks
            .iter()
            .filter_map(|t| t.induced.as_ref().map(|o| o.c_changes as i64))
            .collect();
        out.push(ChangeRateReport {
            dataset: label.to_string(),
            avg_c_changes: mean(&c_changes),
            max_c_changes: c_changes.iter().copied().max().unwrap_or(0) as usize,
            more_than_five: c_changes.iter().filter(|&&c| c > 5).count(),
            wrappers: c_changes.len(),
        });
    }
    // Also exercise induce_for_task so the analysis is self-contained even
    // when called in isolation.
    let _ = induce_for_task(&single_node_tasks(1)[0], scale.k);
    out
}

/// Renders the change-rate report.
pub fn render(scale: &Scale) -> String {
    let reports = run(scale);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.1}", r.avg_c_changes),
                r.max_c_changes.to_string(),
                r.more_than_five.to_string(),
                r.wrappers.to_string(),
            ]
        })
        .collect();
    format!(
        "== Section 6.2: c-change statistics ==\n{}",
        render_table(
            &[
                "dataset",
                "avg c-changes",
                "max",
                ">5 c-changes",
                "wrappers"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_rate_report_has_both_datasets() {
        let reports = run(&Scale::tiny());
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.wrappers > 0));
        assert!(render(&Scale::tiny()).contains("c-change"));
    }
}
