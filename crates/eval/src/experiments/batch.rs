//! Batch extraction at scale: the service-style workload the `Extractor`
//! API is designed for — induce once, extract across an archive of page
//! versions, in parallel.
//!
//! The experiment induces one wrapper per extraction method (ours, the
//! ensemble, and the canonical baseline), materialises every archive
//! snapshot of the observation window as a document batch, and drives each
//! method through [`Extractor::extract_batch`], checking the parallel
//! results against the sequential reference path and reporting throughput.

use crate::report::render_table;
use crate::robustness::Extractor;
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wi_dom::Document;
use wi_induction::{EnsembleConfig, WrapperEnsemble, WrapperInducer};
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::datasets::single_node_tasks;
use wi_webgen::date::Day;
use wi_webgen::date::{OBSERVATION_END, OBSERVATION_START};

/// Throughput of one extraction method over the snapshot batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResult {
    /// Method label.
    pub method: String,
    /// Number of documents extracted from.
    pub documents: usize,
    /// Wall-clock milliseconds of the parallel batch path.
    pub parallel_ms: f64,
    /// Wall-clock milliseconds of the sequential reference path.
    pub sequential_ms: f64,
    /// Documents per second through the parallel path.
    pub docs_per_second: f64,
    /// Whether the parallel results matched the sequential ones exactly.
    pub results_match: bool,
    /// How many documents extracted without error.
    pub ok_documents: usize,
}

/// Runs the batch-extraction comparison.
pub fn run(scale: &Scale) -> Vec<BatchResult> {
    let task = &single_node_tasks(1)[0];
    let (doc, targets) = task.page_with_targets(Day(0));

    let inducer = WrapperInducer::new(super::induction_config_for(task, scale.k));
    let wrapper = inducer
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds on the induction snapshot");
    let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
    let canonical = wi_baselines::CanonicalWrapper::induce(&doc, &targets);

    // Materialise the archive snapshots as one owned document batch.
    let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
    let docs: Vec<Document> = archive
        .snapshots_every(OBSERVATION_START, OBSERVATION_END, scale.snapshot_interval)
        .into_iter()
        .map(|s| s.doc)
        .collect();

    let methods: Vec<(&str, &dyn Extractor)> = vec![
        ("induced", &wrapper),
        ("ensemble", &ensemble),
        ("canonical", &canonical),
    ];

    methods
        .into_iter()
        .map(|(label, extractor)| {
            let t0 = Instant::now();
            let parallel = extractor.extract_batch(&docs);
            let parallel_ms = t0.elapsed().as_secs_f64() * 1000.0;
            let t1 = Instant::now();
            let sequential = extractor.extract_batch_sequential(&docs);
            let sequential_ms = t1.elapsed().as_secs_f64() * 1000.0;
            BatchResult {
                method: label.to_string(),
                documents: docs.len(),
                parallel_ms,
                sequential_ms,
                docs_per_second: docs.len() as f64 / (parallel_ms / 1000.0).max(1e-9),
                results_match: parallel == sequential,
                ok_documents: parallel.iter().filter(|r| r.is_ok()).count(),
            }
        })
        .collect()
}

/// Renders the batch report.
pub fn render(scale: &Scale) -> String {
    let results = run(scale);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.documents.to_string(),
                format!("{:.1}", r.parallel_ms),
                format!("{:.1}", r.sequential_ms),
                format!("{:.0}", r.docs_per_second),
                r.results_match.to_string(),
                r.ok_documents.to_string(),
            ]
        })
        .collect();
    format!(
        "== Batch extraction over archive snapshots (unified Extractor API) ==\n{}",
        render_table(
            &[
                "method",
                "documents",
                "batch ms",
                "sequential ms",
                "docs/s",
                "parallel == sequential",
                "ok"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_paths_agree_for_every_method() {
        let results = run(&Scale::tiny());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                r.documents > 10,
                "{} saw only {} docs",
                r.method,
                r.documents
            );
            assert!(r.results_match, "{} parallel != sequential", r.method);
            assert!(r.ok_documents == r.documents, "{} had failures", r.method);
        }
        assert!(render(&Scale::tiny()).contains("Extractor"));
    }
}
