//! Table 1 — example single-node wrappers: the top-ranked induced expression
//! and the human expression side by side, with the days they remained valid
//! and the number of c-changes observed.

use super::{induce_for_task, robustness_experiment};
use crate::report::render_table;
use crate::scale::Scale;
use wi_webgen::datasets::single_node_tasks;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Task identifier.
    pub task_id: String,
    /// Induced or human marker plus the expression.
    pub expressions: Vec<(String, String)>,
    /// Valid days of (induced, human).
    pub valid_days: (i64, i64),
    /// c-changes observed while the induced wrapper was valid.
    pub c_changes: usize,
}

/// Runs the Table 1 experiment over a handful of representative tasks.
pub fn run(scale: &Scale, rows: usize) -> Vec<TableRow> {
    let tasks = single_node_tasks(scale.single_tasks);
    let report = robustness_experiment(&tasks[..rows.min(tasks.len())], scale);
    report
        .tasks
        .iter()
        .map(|t| {
            let task = tasks
                .iter()
                .find(|task| task.id() == t.task_id)
                .expect("task exists");
            let induced_expr = t
                .induced_expression
                .clone()
                .unwrap_or_else(|| "(induction failed)".to_string());
            // Also surface the runner-up expression like the paper's S3 row.
            let runner_up = induce_for_task(task, scale.k)
                .get(1)
                .map(|q| q.query.to_string());
            let mut expressions = vec![
                ("induced (rank 1)".to_string(), induced_expr),
                ("human".to_string(), task.human_wrapper.clone()),
            ];
            if let Some(r) = runner_up {
                expressions.push(("induced (rank 2)".to_string(), r));
            }
            TableRow {
                task_id: t.task_id.clone(),
                expressions,
                valid_days: (
                    t.induced.as_ref().map(|o| o.valid_days).unwrap_or(0),
                    t.human.valid_days,
                ),
                c_changes: t.induced.as_ref().map(|o| o.c_changes).unwrap_or(0),
            }
        })
        .collect()
}

/// Renders Table 1 as text.
pub fn render(scale: &Scale, rows: usize) -> String {
    let data = run(scale, rows);
    let mut table_rows = Vec::new();
    for row in &data {
        for (kind, expr) in &row.expressions {
            table_rows.push(vec![
                row.task_id.clone(),
                kind.clone(),
                expr.clone(),
                if kind.starts_with("induced (rank 1") {
                    row.valid_days.0.to_string()
                } else if kind == "human" {
                    row.valid_days.1.to_string()
                } else {
                    String::new()
                },
                row.c_changes.to_string(),
            ]);
        }
    }
    format!(
        "== Table 1: matching single nodes ==\n{}",
        render_table(
            &[
                "site/role",
                "wrapper",
                "expression",
                "valid days",
                "c-changes"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_induced_and_human_rows() {
        let rows = run(&Scale::tiny(), 2);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.expressions.len() >= 2);
            assert!(r.expressions.iter().any(|(k, _)| k == "human"));
        }
        let text = render(&Scale::tiny(), 1);
        assert!(text.contains("Table 1"));
    }
}
