//! Figure 6 — characteristics of the induced **multi-target** expressions.

use super::fig5::{characteristics, render_characteristics, top_expressions, Characteristics};
use crate::scale::Scale;
use wi_webgen::datasets::multi_node_tasks;

/// Induces the top-ranked multi-target expressions and analyses them.
pub fn run(scale: &Scale) -> Characteristics {
    let tasks = multi_node_tasks(scale.multi_tasks);
    characteristics(&top_expressions(&tasks, scale))
}

/// Renders the Figure 6 report.
pub fn render(scale: &Scale) -> String {
    render_characteristics(
        &run(scale),
        "Figure 6: node tests / predicates of multi-target expressions",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_target_expressions_analysed() {
        let c = run(&Scale::tiny());
        assert!(c.total_steps > 0);
        assert!(render(&Scale::tiny()).contains("Figure 6"));
    }
}
