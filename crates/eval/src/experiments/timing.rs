//! Section 6 — running time of the wrapper induction.
//!
//! The paper reports that induction takes the same order of magnitude as
//! page retrieval, with a median of 1.4 s per single-node expression on real
//! pages.  We report the wall-clock induction time on the synthetic pages
//! (absolute numbers differ — smaller pages, different hardware — the shape
//! to check is "milliseconds-to-seconds, same order as page generation").

use super::induce_for_task;
use crate::report::render_table;
use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::date::Day;

/// Induction timing statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingReport {
    /// Dataset label.
    pub dataset: String,
    /// Median induction time in milliseconds.
    pub median_ms: f64,
    /// Mean induction time in milliseconds.
    pub mean_ms: f64,
    /// Maximum induction time in milliseconds.
    pub max_ms: f64,
    /// Median page-generation (the stand-in for page retrieval) time in ms.
    pub median_page_ms: f64,
    /// Fraction of inductions faster than their page generation+parse.
    pub faster_than_page: f64,
    /// Number of tasks measured.
    pub tasks: usize,
}

/// Measures induction times over a dataset of tasks.
pub fn run(scale: &Scale) -> Vec<TimingReport> {
    let mut out = Vec::new();
    for (label, tasks) in [
        ("single-node", single_node_tasks(scale.single_tasks)),
        ("multi-node", multi_node_tasks(scale.multi_tasks)),
    ] {
        let mut induction_ms = Vec::new();
        let mut page_ms = Vec::new();
        let mut faster = 0usize;
        for task in &tasks {
            let t0 = Instant::now();
            let (_doc, targets) = task.page_with_targets(Day(0));
            let page_time = t0.elapsed().as_secs_f64() * 1000.0;
            if targets.is_empty() {
                continue;
            }
            let t1 = Instant::now();
            let _ = induce_for_task(task, scale.k);
            let induce_time = t1.elapsed().as_secs_f64() * 1000.0;
            if induce_time <= page_time {
                faster += 1;
            }
            induction_ms.push(induce_time);
            page_ms.push(page_time);
        }
        let med = |v: &[f64]| {
            if v.is_empty() {
                return 0.0;
            }
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        out.push(TimingReport {
            dataset: label.to_string(),
            median_ms: med(&induction_ms),
            mean_ms: induction_ms.iter().sum::<f64>() / induction_ms.len().max(1) as f64,
            max_ms: induction_ms.iter().copied().fold(0.0, f64::max),
            median_page_ms: med(&page_ms),
            faster_than_page: faster as f64 / induction_ms.len().max(1) as f64,
            tasks: induction_ms.len(),
        });
    }
    out
}

/// Renders the timing report.
pub fn render(scale: &Scale) -> String {
    let reports = run(scale);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.1}", r.median_ms),
                format!("{:.1}", r.mean_ms),
                format!("{:.1}", r.max_ms),
                format!("{:.1}", r.median_page_ms),
                crate::report::pct(r.faster_than_page),
                r.tasks.to_string(),
            ]
        })
        .collect();
    format!(
        "== Running time of the induction ==\n{}",
        render_table(
            &[
                "dataset",
                "median ms",
                "mean ms",
                "max ms",
                "page gen ms",
                "faster than page",
                "tasks"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_report_is_positive() {
        let reports = run(&Scale::tiny());
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert!(r.tasks > 0);
            assert!(r.median_ms > 0.0);
            assert!(r.max_ms >= r.median_ms);
        }
    }
}
