//! Figure 3 — robustness of expressions matching a **single node**:
//! generated (induced) vs manual (human) vs canonical wrappers, replayed over
//! the 2008–2013 archive snapshots.

use super::{robustness_experiment, RobustnessReport};
use crate::scale::Scale;
use wi_webgen::datasets::single_node_tasks;

/// Runs the Figure 3 experiment.
pub fn run(scale: &Scale) -> RobustnessReport {
    let tasks = single_node_tasks(scale.single_tasks);
    robustness_experiment(&tasks, scale)
}

/// Renders the Figure 3 report.
pub fn render(scale: &Scale) -> String {
    run(scale).render("Figure 3: robustness, single-node wrappers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_robustness_shape() {
        let report = run(&Scale::tiny());
        assert!(!report.tasks.is_empty());
        // All tasks here have exactly one target node.
        assert!(report.tasks.iter().all(|t| t.target_count == 1));
        // The canonical wrapper must not be more robust than the induced one
        // on average (the paper's headline qualitative result).
        assert!(report.mean_days.0 >= report.mean_days.2 * 0.8);
    }
}
