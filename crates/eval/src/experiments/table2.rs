//! Table 2 — example multi-node wrappers (queries with sibling axes): the
//! top-ranked induced expression and the human expression, with result-set
//! size, valid days and c-changes.

use super::robustness_experiment;
use crate::report::render_table;
use crate::scale::Scale;
use wi_webgen::datasets::multi_node_tasks;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Task identifier.
    pub task_id: String,
    /// The induced expression.
    pub induced: String,
    /// The human expression.
    pub human: String,
    /// Number of result nodes on the induction snapshot.
    pub result_count: usize,
    /// Valid days (induced, human).
    pub valid_days: (i64, i64),
    /// c-changes observed while the induced wrapper was valid.
    pub c_changes: usize,
}

/// Runs the Table 2 experiment.
pub fn run(scale: &Scale, rows: usize) -> Vec<TableRow> {
    let tasks = multi_node_tasks(scale.multi_tasks);
    let report = robustness_experiment(&tasks[..rows.min(tasks.len())], scale);
    report
        .tasks
        .iter()
        .map(|t| {
            let task = tasks.iter().find(|task| task.id() == t.task_id).unwrap();
            TableRow {
                task_id: t.task_id.clone(),
                induced: t
                    .induced_expression
                    .clone()
                    .unwrap_or_else(|| "(induction failed)".to_string()),
                human: task.human_wrapper.clone(),
                result_count: t.target_count,
                valid_days: (
                    t.induced.as_ref().map(|o| o.valid_days).unwrap_or(0),
                    t.human.valid_days,
                ),
                c_changes: t.induced.as_ref().map(|o| o.c_changes).unwrap_or(0),
            }
        })
        .collect()
}

/// Renders Table 2 as text.
pub fn render(scale: &Scale, rows: usize) -> String {
    let data = run(scale, rows);
    let mut table_rows = Vec::new();
    for row in &data {
        table_rows.push(vec![
            row.task_id.clone(),
            "induced".to_string(),
            row.induced.clone(),
            row.result_count.to_string(),
            row.valid_days.0.to_string(),
            row.c_changes.to_string(),
        ]);
        table_rows.push(vec![
            row.task_id.clone(),
            "human".to_string(),
            row.human.clone(),
            row.result_count.to_string(),
            row.valid_days.1.to_string(),
            row.c_changes.to_string(),
        ]);
    }
    format!(
        "== Table 2: matching multiple nodes ==\n{}",
        render_table(
            &[
                "site/role",
                "wrapper",
                "expression",
                "#res",
                "valid days",
                "c-changes"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_multiple_results() {
        let rows = run(&Scale::tiny(), 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.result_count >= 2));
        assert!(render(&Scale::tiny(), 1).contains("Table 2"));
    }
}
