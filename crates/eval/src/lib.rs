//! # wi-eval — the evaluation harness
//!
//! Re-creates every table and figure of the paper's evaluation (Section 6)
//! on top of the synthetic web substrate:
//!
//! | paper | module | binary / bench |
//! |---|---|---|
//! | running time (§6) | [`experiments::timing`] | `run_experiments timing` |
//! | comparison with Dalvi et al. [6] (§6.1) | [`experiments::sota_dalvi`] | `run_experiments sota-dalvi` |
//! | comparison with WEIR [2] (§6.1) | [`experiments::sota_weir`] | `run_experiments sota-weir` |
//! | Table 1 (single-node examples) | [`experiments::table1`] | `run_experiments table1` |
//! | Table 2 (multi-node examples) | [`experiments::table2`] | `run_experiments table2` |
//! | Figure 3 (robustness, single node) | [`experiments::fig3`] | `run_experiments fig3` |
//! | Figure 4 (robustness, multiple nodes) | [`experiments::fig4`] | `run_experiments fig4` |
//! | break groups + change rate (§6.2) | [`robustness`], [`experiments::change_rate`] | `run_experiments change-rate` |
//! | Figure 5 (single-target characteristics) | [`experiments::fig5`] | `run_experiments fig5` |
//! | Figure 6 (multi-target characteristics) | [`experiments::fig6`] | `run_experiments fig6` |
//! | parameters + decay ablation (§6.3) | [`experiments::params_report`] | `run_experiments params` |
//! | Figure 7 (synthetic noise) | [`experiments::fig7`] | `run_experiments fig7` |
//! | real-life NER noise (§6.4) | [`experiments::noise_real`] | `run_experiments noise-real` |
//! | wrapper lifecycle (verify/classify/repair) | [`experiments::maintenance`] | `run_experiments maintenance` |
//! | extraction as a service (`wi-serve` smoke) | [`experiments::serve`] | `run_experiments serve` |
//!
//! All experiments take a [`Scale`] so the full paper-sized runs and quick
//! smoke runs (used by the Criterion benches and integration tests) share the
//! same code path.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod robustness;
pub mod scale;

pub use robustness::{BreakReason, RobustnessOutcome};
pub use scale::Scale;
