//! Experiment scaling: full paper-sized runs vs. quick smoke runs.

use serde::{Deserialize, Serialize};

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of single-node tasks (paper: 53).
    pub single_tasks: usize,
    /// Number of multi-node tasks (paper: 50).
    pub multi_tasks: usize,
    /// Number of negative-noise samples (paper: 100).
    pub negative_noise_samples: usize,
    /// Number of positive-noise samples (paper: 50).
    pub positive_noise_samples: usize,
    /// Number of NER pages (paper: 10).
    pub ner_pages: usize,
    /// Number of hotel template groups for the WEIR comparison (paper: 5).
    pub weir_sets: usize,
    /// Pages per hotel template group (paper: 10).
    pub weir_pages_per_set: usize,
    /// Snapshot interval in days for the robustness runs (paper: 20).
    pub snapshot_interval: i64,
    /// Best-K bound used for induction (paper: top-10 reported).
    pub k: usize,
    /// Noise intensities evaluated in Figure 7.
    pub noise_intensities: [f64; 4],
}

impl Scale {
    /// The paper-sized configuration.
    pub fn full() -> Scale {
        Scale {
            single_tasks: 53,
            multi_tasks: 50,
            negative_noise_samples: 100,
            positive_noise_samples: 50,
            ner_pages: 10,
            weir_sets: 5,
            weir_pages_per_set: 10,
            snapshot_interval: 20,
            k: 10,
            noise_intensities: [0.1, 0.3, 0.5, 0.7],
        }
    }

    /// A reduced configuration for benches, CI and smoke tests.
    pub fn quick() -> Scale {
        Scale {
            single_tasks: 10,
            multi_tasks: 8,
            negative_noise_samples: 12,
            positive_noise_samples: 8,
            ner_pages: 4,
            weir_sets: 2,
            weir_pages_per_set: 5,
            snapshot_interval: 60,
            k: 5,
            noise_intensities: [0.1, 0.3, 0.5, 0.7],
        }
    }

    /// An even smaller configuration for unit tests of the harness itself.
    pub fn tiny() -> Scale {
        Scale {
            single_tasks: 3,
            multi_tasks: 3,
            negative_noise_samples: 4,
            positive_noise_samples: 3,
            ner_pages: 2,
            weir_sets: 1,
            weir_pages_per_set: 4,
            snapshot_interval: 120,
            k: 3,
            noise_intensities: [0.1, 0.3, 0.5, 0.7],
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_sizes() {
        let s = Scale::full();
        assert_eq!(s.single_tasks, 53);
        assert_eq!(s.multi_tasks, 50);
        assert_eq!(s.negative_noise_samples, 100);
        assert_eq!(s.positive_noise_samples, 50);
        assert_eq!(s.ner_pages, 10);
        assert_eq!(s.weir_sets, 5);
        assert_eq!(s.snapshot_interval, 20);
    }

    #[test]
    fn quick_and_tiny_are_smaller() {
        assert!(Scale::quick().single_tasks < Scale::full().single_tasks);
        assert!(Scale::tiny().single_tasks <= Scale::quick().single_tasks);
        assert_eq!(Scale::default(), Scale::full());
    }
}
