//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! run_experiments [--quick | --smoke] [experiment ...]
//! ```
//!
//! Without arguments every experiment is run at the full (paper-sized)
//! scale; `--quick` switches to the reduced scale used by the benches, and
//! `--smoke` to the even smaller CI scale.  Individual experiments: `fig3
//! fig4 fig5 fig6 fig7 table1 table2 sota-dalvi sota-weir noise-real
//! change-rate timing params batch maintenance serve`.
//!
//! The `maintenance` and `serve` experiments are *gated*: the process exits
//! non-zero when verifier recall, drift-classification accuracy or
//! post-break repair F1 fall below their fixed floors on the deterministic
//! seed, or when the daemon serves a wrong extraction or loses a committed
//! revision across a drain/recover cycle.

use wi_eval::experiments;
use wi_eval::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::tiny()
    } else if quick {
        Scale::quick()
    } else {
        Scale::full()
    };
    let selected: Vec<String> = args.into_iter().filter(|a| !a.starts_with('-')).collect();

    let all = [
        "timing",
        "sota-dalvi",
        "sota-weir",
        "table1",
        "table2",
        "fig3",
        "fig4",
        "change-rate",
        "fig5",
        "fig6",
        "params",
        "fig7",
        "noise-real",
        "batch",
        "maintenance",
        "serve",
    ];
    let to_run: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        all.iter()
            .copied()
            .filter(|name| selected.iter().any(|s| s == name))
            .collect()
    };

    if to_run.is_empty() {
        eprintln!(
            "no known experiment selected; choose from: {}",
            all.join(" ")
        );
        std::process::exit(2);
    }

    for name in to_run {
        let started = std::time::Instant::now();
        let output = match name {
            "timing" => experiments::timing::render(&scale),
            "sota-dalvi" => experiments::sota_dalvi::render(&scale),
            "sota-weir" => experiments::sota_weir::render(&scale),
            "table1" => experiments::table1::render(&scale, 3),
            "table2" => experiments::table2::render(&scale, 4),
            "fig3" => experiments::fig3::render(&scale),
            "fig4" => experiments::fig4::render(&scale),
            "change-rate" => experiments::change_rate::render(&scale),
            "fig5" => experiments::fig5::render(&scale),
            "fig6" => experiments::fig6::render(&scale),
            "params" => experiments::params_report::render(&scale),
            "fig7" => experiments::fig7::render(&scale),
            "noise-real" => experiments::noise_real::render(&scale),
            "batch" => experiments::batch::render(&scale),
            "maintenance" => match experiments::maintenance::render_checked(&scale) {
                Ok(output) => output,
                Err(report_with_violations) => {
                    eprintln!("{report_with_violations}");
                    std::process::exit(1);
                }
            },
            "serve" => match experiments::serve::render_checked(&scale) {
                Ok(output) => output,
                Err(report_with_violations) => {
                    eprintln!("{report_with_violations}");
                    std::process::exit(1);
                }
            },
            _ => unreachable!(),
        };
        println!("{output}");
        println!(
            "[{name} finished in {:.1}s]\n",
            started.elapsed().as_secs_f64()
        );
    }
}
