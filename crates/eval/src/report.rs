//! Small text-report helpers shared by the experiments: aligned tables and
//! bucketed histograms.

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{:<w$}  ", cell, w = w));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A bucketed histogram over day counts (used to summarise the survival
/// distributions of Figures 3 and 4).
pub fn day_histogram(values: &[i64], buckets: &[(i64, i64)]) -> Vec<(String, usize)> {
    buckets
        .iter()
        .map(|&(lo, hi)| {
            let count = values.iter().filter(|&&v| v >= lo && v < hi).count();
            (format!("[{lo},{hi})"), count)
        })
        .collect()
}

/// Mean of a slice of i64 values.
pub fn mean(values: &[i64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<i64>() as f64 / values.len() as f64
}

/// Median of a slice of i64 values.
pub fn median(values: &[i64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) as f64 / 2.0
    } else {
        v[mid] as f64
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "days"],
            &[
                vec!["a".into(), "100".into()],
                vec!["long-name".into(), "7".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn histogram_buckets() {
        let h = day_histogram(&[10, 150, 500, 90], &[(0, 100), (100, 400), (400, 3000)]);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[1].1, 1);
        assert_eq!(h[2].1, 1);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1, 2, 3]), 2.0);
        assert_eq!(median(&[1, 2, 3, 100]), 2.5);
        assert_eq!(median(&[5]), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(pct(0.5), "50%");
    }
}
