//! The robustness runner: replaying a wrapper over archive snapshots until it
//! breaks, and classifying why (the paper's break groups (a)–(f)).

use serde::{Deserialize, Serialize};
use wi_dom::NodeId;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::{Day, OBSERVATION_END, OBSERVATION_START};
use wi_webgen::tasks::WrapperTask;
use wi_xpath::{canonical_path, evaluate_with, EvalContext, Query};

// The runner drives every wrapper through the workspace-wide [`Extractor`]
// interface from `wi-induction` (implemented by `Wrapper`,
// `WrapperEnsemble`, raw `Query`s and all four baselines).
pub use wi_induction::{ExtractError, Extractor};

/// Why a wrapper's evaluation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakReason {
    /// The wrapper still worked on the last snapshot of the window (group a).
    SurvivedFullPeriod,
    /// The wrapper stopped selecting the intended nodes (groups b/c/d).
    WrapperBroke,
    /// The archive served a broken snapshot (group e).
    ArchiveIssue,
    /// The intended targets disappeared from the page (group f).
    TargetsRemoved,
    /// The extractor itself failed (empty wrapper, stale context, corrupt
    /// artifact) rather than merely selecting the wrong nodes.
    ExtractorFailed,
}

/// The outcome of replaying one wrapper over one task's snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessOutcome {
    /// Days the wrapper remained valid (from the induction snapshot).
    pub valid_days: i64,
    /// Why the run ended.
    pub reason: BreakReason,
    /// The day of the last snapshot on which the wrapper was still correct.
    pub last_valid_day: Day,
    /// Number of c-changes observed while the wrapper was valid.
    pub c_changes: usize,
    /// Number of snapshots the wrapper was evaluated on.
    pub snapshots_checked: usize,
}

/// Replays `wrapper` over the snapshots of `task` from `start` to `end` (at
/// the given interval) and reports when and why it stopped selecting the
/// intended nodes.
///
/// The intended nodes on each snapshot are re-identified by the task's
/// value-based ground-truth oracle; a wrapper is "still valid" on a snapshot
/// if it selects exactly those nodes.
pub fn run_robustness(
    task: &WrapperTask,
    wrapper: &dyn Extractor,
    start: Day,
    end: Day,
    interval: i64,
) -> RobustnessOutcome {
    let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
    let mut last_valid = start;
    let mut reason = BreakReason::SurvivedFullPeriod;
    let mut snapshots_checked = 0usize;
    let mut canonical_tracker: Option<(Query, Vec<NodeId>)> = None;
    let mut c_changes = 0usize;
    let mut day = start;
    // One pooled context for the whole replay: the wrapper extraction and
    // the c-change probe reuse the same buffers on every snapshot.
    let mut cx = EvalContext::new();

    while day <= end {
        let snapshot = archive.snapshot(day);
        snapshots_checked += 1;
        if snapshot.broken {
            reason = BreakReason::ArchiveIssue;
            break;
        }
        let doc = &snapshot.doc;
        let truth = task.targets_in(doc, day);
        if truth.is_empty() {
            reason = BreakReason::TargetsRemoved;
            break;
        }
        let mut selected = match wrapper.extract_with(&mut cx, doc, doc.root()) {
            Ok(selected) => selected,
            Err(_) => {
                reason = BreakReason::ExtractorFailed;
                break;
            }
        };
        doc.sort_document_order(&mut selected);
        let mut expected = truth.clone();
        doc.sort_document_order(&mut expected);
        if selected != expected {
            reason = BreakReason::WrapperBroke;
            break;
        }
        // c-change tracking on the first target node (Section 2 / 6.2).
        let first_target = expected[0];
        let canon_now = canonical_path(doc, first_target);
        if let Some((prev_canon, _)) = &canonical_tracker {
            let reselected = evaluate_with(&mut cx, prev_canon, doc, doc.root());
            if reselected != vec![first_target] {
                c_changes += 1;
                canonical_tracker = Some((canon_now, vec![first_target]));
            }
        } else {
            canonical_tracker = Some((canon_now, vec![first_target]));
        }

        last_valid = day;
        day = day.plus(interval);
    }

    RobustnessOutcome {
        valid_days: start.days_until(last_valid),
        reason,
        last_valid_day: last_valid,
        c_changes,
        snapshots_checked,
    }
}

/// Convenience wrapper for the paper's standard window (2008-01-01 to
/// 2013-12-31).
pub fn run_robustness_standard(
    task: &WrapperTask,
    wrapper: &dyn Extractor,
    interval: i64,
) -> RobustnessOutcome {
    run_robustness(task, wrapper, OBSERVATION_START, OBSERVATION_END, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_webgen::site::{PageKind, Site};
    use wi_webgen::style::Vertical;
    use wi_webgen::tasks::TargetRole;
    use wi_xpath::parse_query;

    fn task() -> WrapperTask {
        WrapperTask::new(
            Site::new(Vertical::Movies, 42),
            0,
            PageKind::Detail,
            TargetRole::MainHeadline,
        )
    }

    #[test]
    fn human_wrapper_survives_for_a_while() {
        let t = task();
        let human = parse_query(&t.human_wrapper).unwrap();
        let outcome = run_robustness(&t, &human, Day(0), Day(400), 40);
        assert!(outcome.valid_days >= 0);
        assert!(outcome.snapshots_checked > 0);
        assert!(outcome.valid_days <= 400);
    }

    #[test]
    fn canonical_wrapper_is_less_robust_than_human() {
        // Aggregate over several tasks: canonical wrappers must not outlive
        // human ones on average.
        let mut canonical_total = 0i64;
        let mut human_total = 0i64;
        for i in 0..6 {
            let t = WrapperTask::new(
                Site::new(Vertical::News, 60 + i),
                0,
                PageKind::Detail,
                TargetRole::PrimaryValue,
            );
            let (doc, targets) = t.page_with_targets(Day(0));
            let canonical = wi_baselines::CanonicalWrapper::induce(&doc, &targets);
            let human = parse_query(&t.human_wrapper).unwrap();
            canonical_total += run_robustness(&t, &canonical, Day(0), Day(1000), 50).valid_days;
            human_total += run_robustness(&t, &human, Day(0), Day(1000), 50).valid_days;
        }
        assert!(
            human_total >= canonical_total,
            "human {human_total} vs canonical {canonical_total}"
        );
    }

    #[test]
    fn broken_wrapper_breaks_immediately() {
        let t = task();
        let nonsense = parse_query("descendant::table[@id=\"does-not-exist\"]").unwrap();
        let outcome = run_robustness(&t, &nonsense, Day(0), Day(200), 20);
        assert_eq!(outcome.reason, BreakReason::WrapperBroke);
        assert_eq!(outcome.valid_days, 0);
    }

    #[test]
    fn outcome_reports_c_changes() {
        let t = task();
        let human = parse_query(&t.human_wrapper).unwrap();
        let outcome = run_robustness(&t, &human, Day(0), Day(2191), 20);
        // c-changes are bounded by the number of snapshots checked.
        assert!(outcome.c_changes <= outcome.snapshots_checked);
    }
}
