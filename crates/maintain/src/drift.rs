//! Drift classification: mapping a flagged wrapper onto the paper's
//! Section 6.2 break groups by diffing the failing step against the evolved
//! DOM.
//!
//! The classifier never sees ground truth.  Its tools are
//!
//! * **prefix evaluation** — walking the expression step by step to find the
//!   first step that selects nothing (or selects the wrong neighborhood),
//! * **anchor relaxation** — dropping one predicate of the failing step and
//!   collecting the candidate nodes the relaxed step reaches (a tag-index
//!   neighborhood search: `div[@class="gone"]` relaxes to the `div`s of the
//!   subtree, served by the document's tag index),
//! * **re-validation** — substituting each candidate's attribute value (or
//!   sibling position, read off the pre/post-order document index) back into
//!   the expression and accepting the substitution only if the *whole*
//!   expression then extracts a result whose cardinality is consistent with
//!   the last-known-good state.
//!
//! A successful substitution is simultaneously the classification (rename /
//! redesign / positional) and the repair ([`crate::Repairer`] installs the
//! fixed expression).  When no substitution survives re-validation, the
//! classifier distinguishes a diminishing target (the anchors themselves —
//! template label texts or attribute values — vanished from the page) from
//! an unknown break.

use crate::verify::{HealthReport, LastKnownGood};
use serde::{Deserialize, Serialize};
use wi_dom::{Document, NodeId};
use wi_induction::WrapperBundle;
use wi_xpath::eval::evaluate_step;
use wi_xpath::{
    parse_query, EvalContext, Predicate, PrefixEvaluator, Query, Step, StringFunction, TextSource,
};

/// The break groups of the paper's Section 6.2, as a drift classifier
/// reports them (compare `wi_webgen::ChangeClass`, the generated ground
/// truth the classifier is scored against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DriftClass {
    /// Positional churn: the expression's positional anchors point at the
    /// wrong sibling after inserts/removals (groups (b)/(c)).
    Positional,
    /// An anchor attribute value was renamed in place (groups (b)/(d)).
    AttributeRename,
    /// A site-wide redesign re-namespaced the anchors (group (d)).
    Redesign,
    /// The wrapper's target (and its anchors) disappeared from the page
    /// (group (f), diminishing targets).
    TargetRemoved,
    /// The snapshot is a broken archive capture (group (e)).
    PageBroken,
    /// The break resists classification.
    Unknown,
}

impl DriftClass {
    /// A short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DriftClass::Positional => "positional",
            DriftClass::AttributeRename => "attribute-rename",
            DriftClass::Redesign => "redesign",
            DriftClass::TargetRemoved => "target-removed",
            DriftClass::PageBroken => "page-broken",
            DriftClass::Unknown => "unknown",
        }
    }
}

/// One validated substitution inside an expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFix {
    /// Step index inside the expression.
    pub step: usize,
    /// Predicate index inside the step.
    pub predicate: usize,
    /// What was substituted.
    pub kind: FixKind,
}

/// The kinds of in-place substitution the classifier can validate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FixKind {
    /// An attribute anchor re-anchored onto a new value.
    Reanchor {
        /// The anchored attribute.
        attribute: String,
        /// The value the expression anchored on.
        from: String,
        /// The value found in the evolved neighborhood.
        to: String,
    },
    /// A positional predicate shifted to a new index.
    Reposition {
        /// The old 1-based position (or last()-offset).
        from: u32,
        /// The new 1-based position (or last()-offset).
        to: u32,
    },
}

impl FixKind {
    /// Whether this fix looks like a redesign re-namespacing rather than an
    /// individual rename: the new value is the old value with a short
    /// version-marker suffix (`content` → `content-r1`, `hp-price` →
    /// `hp-price-v2`).  An individual semantic rename replaces the value
    /// wholesale and shares no such prefix.
    pub fn is_redesign_style(&self) -> bool {
        match self {
            FixKind::Reanchor { from, to, .. } => to
                .strip_prefix(from.as_str())
                .and_then(|rest| rest.strip_prefix('-'))
                .is_some_and(|marker| {
                    let digits = marker.trim_start_matches(|c: char| c.is_ascii_alphabetic());
                    marker.len() <= 4
                        && marker.starts_with(|c: char| c.is_ascii_alphabetic())
                        && !digits.is_empty()
                        && digits.bytes().all(|b| b.is_ascii_digit())
                }),
            FixKind::Reposition { .. } => false,
        }
    }
}

/// The diagnosis of one bundle entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntryDiagnosis {
    /// Index of the entry inside the bundle.
    pub entry: usize,
    /// The fully fixed expression, when the fix search succeeded.
    pub fixed: Option<Query>,
    /// The substitutions that produced `fixed` (empty when the entry still
    /// evaluated acceptably on its own).
    pub fixes: Vec<QueryFix>,
    /// A template-text anchor of this entry no longer occurs on the page.
    pub text_anchor_gone: bool,
    /// An attribute anchor value of this entry no longer occurs on the page.
    pub attr_anchor_gone: bool,
    /// An attribute anchor still occurs, but the last-known-good
    /// **neighborhood fingerprint** recorded for it (see
    /// [`AnchorCarrier::neighborhood`](crate::verify::AnchorCarrier)) is
    /// gone from every surviving carrier — the sibling context the
    /// expression used to descend through was removed with its block, and
    /// only an unrelated carrier of the same value survives.
    #[serde(default)]
    pub neighborhood_gone: bool,
}

/// The classifier's verdict for one flagged snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftReport {
    /// The snapshot day.
    pub day: i64,
    /// The inferred break group.
    pub class: DriftClass,
    /// Per-entry diagnoses (empty for broken captures).
    pub entries: Vec<EntryDiagnosis>,
}

impl DriftReport {
    /// Whether at least one entry has a validated fixed expression.
    pub fn repairable_in_place(&self) -> bool {
        self.entries.iter().any(|e| e.fixed.is_some())
    }
}

/// Tuning knobs for classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Maximum substitutions per expression (a redesign renames several
    /// anchors at once).
    pub max_fixes: usize,
    /// Maximum candidate values tried per relaxed predicate.
    pub max_candidates: usize,
    /// Total evaluation budget of one entry's fix search.
    pub search_budget: usize,
    /// Allowed relative count drift when validating a fix against the
    /// last-known-good count (multi-node wrappers).
    pub cardinality_slack: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            max_fixes: 4,
            max_candidates: 6,
            search_budget: 96,
            cardinality_slack: 0.5,
        }
    }
}

/// Classifies flagged wrappers onto break groups.
#[derive(Debug, Clone, Default)]
pub struct DriftClassifier {
    /// The classification bounds.
    pub config: DriftConfig,
}

impl DriftClassifier {
    /// Creates a classifier with explicit bounds.
    pub fn new(config: DriftConfig) -> DriftClassifier {
        DriftClassifier { config }
    }

    /// Classifies one flagged snapshot, allocating a fresh evaluation
    /// context.
    pub fn classify(
        &self,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        health: &HealthReport,
    ) -> DriftReport {
        self.classify_with(&mut EvalContext::new(), bundle, doc, day, lkg, health)
    }

    /// Classifies one flagged snapshot, reusing the caller's evaluation
    /// context.
    ///
    /// All full-expression probes and prefix walks of the fix search run
    /// through one per-call [`PrefixEvaluator`]: the prefix node sets are
    /// memoized across the bundle's entries (ensemble members share
    /// anchors) and across the relaxation/backtracking attempts, which used
    /// to re-run every prefix per attempt.  The pooled context parameter is
    /// kept so the maintenance pipeline threads one context uniformly
    /// through verify → classify → repair (verification and repair replay
    /// extraction through it).
    pub fn classify_with(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        health: &HealthReport,
    ) -> DriftReport {
        if health.page_broken() {
            return DriftReport {
                day,
                class: DriftClass::PageBroken,
                entries: Vec::new(),
            };
        }

        // When the pooled context carries a cross-version cache (the
        // incremental maintenance loop enables one), prefix walks reuse
        // step results cached on earlier snapshots of the same site.
        let mut prefix = match cx.cross_version_mut() {
            Some(cache) => PrefixEvaluator::with_cache(doc, cache),
            None => PrefixEvaluator::new(doc),
        };
        let mut entries = Vec::new();
        for (entry_idx, entry) in bundle.entries.iter().enumerate() {
            let Ok(query) = parse_query(&entry.expression) else {
                continue;
            };
            let search = Search {
                doc,
                lkg,
                config: &self.config,
            };
            let acceptable = {
                let initial = prefix.evaluate(doc.root(), &query);
                search.acceptable(initial)
            };
            let (fixed, fixes) = if acceptable {
                (None, Vec::new())
            } else {
                let mut candidate = query.clone();
                let mut fixes = Vec::new();
                let mut budget = self.config.search_budget;
                if search.run(&mut prefix, &mut candidate, &mut fixes, &mut budget, 0) {
                    (Some(candidate), fixes)
                } else {
                    (None, Vec::new())
                }
            };
            entries.push(EntryDiagnosis {
                entry: entry_idx,
                fixed,
                text_anchor_gone: text_anchor_gone(&query, doc),
                attr_anchor_gone: attr_anchor_gone(&query, doc),
                neighborhood_gone: neighborhood_gone(&query, doc, lkg),
                fixes,
            });
        }

        let class = derive_class(&entries);
        DriftReport {
            day,
            class,
            entries,
        }
    }
}

/// Derives the break group from the per-entry diagnoses.
fn derive_class(entries: &[EntryDiagnosis]) -> DriftClass {
    // A validated substitution is the strongest evidence.
    if let Some(e) = entries
        .iter()
        .find(|e| e.fixed.is_some() && !e.fixes.is_empty())
    {
        if e.fixes.iter().any(|f| f.kind.is_redesign_style()) {
            return DriftClass::Redesign;
        }
        if e.fixes
            .iter()
            .any(|f| matches!(f.kind, FixKind::Reanchor { .. }))
        {
            return DriftClass::AttributeRename;
        }
        return DriftClass::Positional;
    }
    // No fix: the anchors themselves vanished ⇒ diminishing target.
    let broken: Vec<&EntryDiagnosis> = entries.iter().filter(|e| e.fixed.is_none()).collect();
    if !broken.is_empty()
        && broken
            .iter()
            .all(|e| e.text_anchor_gone || e.attr_anchor_gone || e.neighborhood_gone)
    {
        return DriftClass::TargetRemoved;
    }
    DriftClass::Unknown
}

/// Whether any template-text anchor of the query no longer occurs on the
/// page: no element's normalized text satisfies the anchor's comparison.
fn text_anchor_gone(query: &Query, doc: &Document) -> bool {
    query.steps.iter().any(|s| {
        s.predicates.iter().any(|p| match p {
            Predicate::StringCompare {
                source: TextSource::NormalizedText,
                func,
                value,
            } => !crate::verify::text_anchor_occurs(doc, value, *func),
            _ => false,
        })
    })
}

/// Whether any attribute anchor value of the query no longer occurs on the
/// page: no element matching the step's node test carries it.
fn attr_anchor_gone(query: &Query, doc: &Document) -> bool {
    query.steps.iter().any(|s| {
        s.predicates.iter().any(|p| match p {
            Predicate::StringCompare {
                source: TextSource::Attribute(name),
                func: func @ StringFunction::Equals,
                value,
            } => !crate::verify::attribute_value_occurs(doc, &s.test, name, value, *func),
            _ => false,
        })
    })
}

/// Whether an attribute anchor of the query *survives positionally masked*:
/// its value still occurs on the page, but the evidenced neighborhood
/// fingerprint the last-known-good state recorded for that anchor appears
/// in no surviving carrier.
///
/// This is the `target-removed → unknown` confusion fix: when a repeated
/// anchor value (`div[@class="blk"]` × N) loses the block the expression
/// descended through, a positional predicate silently re-binds to a
/// surviving sibling carrier.  `attr_anchor_gone` stays false — the value
/// is still on the page — and the break used to land in
/// [`DriftClass::Unknown`].  The fingerprint (the removed block's stable
/// labels, e.g. `"Director:"`) distinguishes the two: present ⇒ genuinely
/// ambiguous, gone ⇒ the target's block was removed.  The fingerprint only
/// counts once evidenced (`neighborhood_stable >= 2`), so list churn
/// inside a carrier never triggers a removal verdict.
fn neighborhood_gone(query: &Query, doc: &Document, lkg: Option<&LastKnownGood>) -> bool {
    let Some(lkg) = lkg else {
        return false;
    };
    query.steps.iter().any(|s| {
        s.predicates.iter().any(|p| match p {
            Predicate::StringCompare {
                source: TextSource::Attribute(name),
                func: StringFunction::Equals,
                value,
            } => lkg.anchor_census(name, value).is_some_and(|carrier| {
                !carrier.neighborhood.is_empty()
                    && carrier.neighborhood_stable >= 2
                    && !crate::verify::neighborhood_present(doc, name, value, &carrier.neighborhood)
            }),
            _ => false,
        })
    })
}

/// The bounded backtracking fix search.
struct Search<'a> {
    doc: &'a Document,
    lkg: Option<&'a LastKnownGood>,
    config: &'a DriftConfig,
}

impl Search<'_> {
    /// Whether a full-expression result is consistent with the last-known
    /// -good state: cardinality within tolerance *and* the same node shape
    /// (a substitution that lands on one `img` when the wrapper used to
    /// select one `span` is a wrong unique match, not a repair).
    fn acceptable(&self, result: &[NodeId]) -> bool {
        if result.is_empty() {
            return false;
        }
        let Some(lkg) = self.lkg else {
            return true;
        };
        let cardinality_ok = if lkg.count <= 1 {
            result.len() == lkg.count.max(1)
        } else {
            let slack = (lkg.count as f64 * self.config.cardinality_slack).max(1.0);
            (result.len() as f64 - lkg.count as f64).abs() <= slack && result.len() >= 2
        };
        if !cardinality_ok {
            return false;
        }
        let mut tags: Vec<String> = result
            .iter()
            .filter_map(|&n| self.doc.tag_name(n).map(str::to_string))
            .collect();
        tags.sort();
        tags.dedup();
        if tags != lkg.tags {
            return false;
        }
        // Evidently template-stable targets must be reproduced *verbatim*: a
        // substitution landing on a different unique node of the same shape
        // (the logo link instead of the "Next" link) is a wrong match, not a
        // repair.
        if lkg.texts_evidently_stable() {
            let mut texts: Vec<String> = result
                .iter()
                .map(|&n| self.doc.normalized_text(n))
                .collect();
            texts.sort();
            let mut expected = lkg.texts.clone();
            expected.sort();
            if texts != expected {
                return false;
            }
        }
        true
    }

    /// Tries to make `query` acceptable by substituting anchors, recursing
    /// over multiple broken steps (redesigns rename several at once).
    /// Returns `true` on success, with `query` mutated into the fixed
    /// expression and `fixes` describing every substitution.
    fn run(
        &self,
        prefix: &mut PrefixEvaluator<'_>,
        query: &mut Query,
        fixes: &mut Vec<QueryFix>,
        budget: &mut usize,
        depth: usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let acceptable = {
            let result = prefix.evaluate(self.doc.root(), query);
            self.acceptable(result)
        };
        if acceptable {
            return true;
        }
        if depth >= self.config.max_fixes {
            return false;
        }

        // Walk the prefix to the first step that selects nothing.  Fix sites
        // are tried from that step backwards: an earlier positional anchor
        // picking the wrong sibling surfaces as a later step coming up empty.
        let (failing, contexts_by_step) = self.prefix_contexts(prefix, query);
        for step_idx in (0..=failing.min(query.steps.len().saturating_sub(1))).rev() {
            let contexts = &contexts_by_step[step_idx];
            if contexts.is_empty() {
                continue;
            }
            for pred_idx in 0..query.steps[step_idx].predicates.len() {
                // One substitution per site and chain: re-fixing an anchor
                // this chain already rewrote would only undo or thrash it.
                if fixes
                    .iter()
                    .any(|f| f.step == step_idx && f.predicate == pred_idx)
                {
                    continue;
                }
                match query.steps[step_idx].predicates[pred_idx].clone() {
                    Predicate::StringCompare {
                        func: StringFunction::Equals,
                        source: TextSource::Attribute(name),
                        value: from,
                    } => {
                        for to in
                            self.candidate_values(query, step_idx, pred_idx, contexts, &name, &from)
                        {
                            set_compare_value(query, step_idx, pred_idx, &to);
                            fixes.push(QueryFix {
                                step: step_idx,
                                predicate: pred_idx,
                                kind: FixKind::Reanchor {
                                    attribute: name.clone(),
                                    from: from.clone(),
                                    to,
                                },
                            });
                            if self.run(prefix, query, fixes, budget, depth + 1) {
                                return true;
                            }
                            fixes.pop();
                            set_compare_value(query, step_idx, pred_idx, &from);
                        }
                    }
                    Predicate::Position(from) => {
                        for to in
                            self.candidate_positions(query, step_idx, pred_idx, contexts, from)
                        {
                            query.steps[step_idx].predicates[pred_idx] = Predicate::Position(to);
                            fixes.push(QueryFix {
                                step: step_idx,
                                predicate: pred_idx,
                                kind: FixKind::Reposition { from, to },
                            });
                            if self.run(prefix, query, fixes, budget, depth + 1) {
                                return true;
                            }
                            fixes.pop();
                            query.steps[step_idx].predicates[pred_idx] = Predicate::Position(from);
                        }
                    }
                    // Text anchors are template labels: a label does not get
                    // "renamed", it disappears with its block — that is a
                    // diminishing target, not something to re-anchor.
                    // `last()-n` anchors already track list-length churn.
                    _ => {}
                }
            }
        }
        false
    }

    /// Evaluates every prefix of the query, returning the index of the first
    /// empty step (or the last step when none is empty but the result is
    /// unacceptable) plus the context set *before* each step.
    ///
    /// Every prefix set comes out of the shared trie, so re-walking the same
    /// expression across relaxation attempts (which the backtracking search
    /// does constantly) costs one trie lookup per step instead of a fresh
    /// evaluation per attempt.
    fn prefix_contexts(
        &self,
        prefix: &mut PrefixEvaluator<'_>,
        query: &Query,
    ) -> (usize, Vec<Vec<NodeId>>) {
        let root = self.doc.root();
        let mut contexts_by_step: Vec<Vec<NodeId>> = Vec::with_capacity(query.steps.len());
        for k in 0..query.steps.len() {
            contexts_by_step.push(prefix.evaluate_prefix(root, query, k).to_vec());
            if prefix.evaluate_prefix(root, query, k + 1).is_empty() {
                // Later steps have no contexts at all.
                for _ in k + 1..query.steps.len() {
                    contexts_by_step.push(Vec::new());
                }
                return (k, contexts_by_step);
            }
        }
        (query.steps.len().saturating_sub(1), contexts_by_step)
    }

    /// The candidate replacement values for a relaxed attribute anchor: the
    /// values of `name` on the nodes the relaxed step reaches from the live
    /// contexts, deduplicated, ranked redesign-suffix first and then by
    /// token overlap with the old value.
    ///
    /// The relaxation drops the anchor *and* every positional predicate of
    /// the step — `[@class="gone"][1]` must offer the values of all
    /// candidates, not just of whatever node happens to be first once the
    /// anchor is gone.  On the final step, candidates whose tag the wrapper
    /// never extracted (per the last-known-good shape) are skipped: a
    /// unique `img` class is not a plausible re-anchor for a `span` wrapper.
    fn candidate_values(
        &self,
        query: &Query,
        step_idx: usize,
        pred_idx: usize,
        contexts: &[NodeId],
        name: &str,
        from: &str,
    ) -> Vec<String> {
        let mut relaxed: Step = query.steps[step_idx].clone();
        relaxed.predicates = query.steps[step_idx]
            .predicates
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != pred_idx && !p.is_positional())
            .map(|(_, p)| p.clone())
            .collect();
        let last_step = step_idx + 1 == query.steps.len();
        let shape_filter = self.lkg.filter(|_| last_step).map(|l| &l.tags);
        let mut values: Vec<String> = Vec::new();
        for &c in contexts {
            for node in evaluate_step(&relaxed, self.doc, c) {
                if let Some(tags) = shape_filter {
                    let plausible = self
                        .doc
                        .tag_name(node)
                        .is_some_and(|t| tags.iter().any(|known| known == t));
                    if !plausible {
                        continue;
                    }
                }
                if let Some(v) = self.doc.attribute(node, name) {
                    if v != from && !values.iter().any(|seen| seen == v) {
                        values.push(v.to_string());
                    }
                }
            }
        }

        // How many elements of the evolved page carry each candidate value
        // under this attribute: a rename moves the anchor's whole carrier
        // set to the new value, so the census recorded at the last healthy
        // snapshot is the expected carrier count.
        let mut carriers: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for n in self.doc.descendants(self.doc.root()) {
            if let Some(v) = self.doc.attribute(n, name) {
                *carriers.entry(v).or_insert(0) += 1;
            }
        }
        let census = self
            .lkg
            .and_then(|l| l.anchor_census(name, from))
            .map(|c| c.count);

        let redesign = |v: &str| {
            FixKind::Reanchor {
                attribute: name.to_string(),
                from: from.to_string(),
                to: v.to_string(),
            }
            .is_redesign_style()
        };
        // A renamed value is *new*: it did not exist anywhere on the last
        // healthy snapshot.  Candidates that were already present back then
        // are old neighbors (the rating class, the logo class), not renames
        // — re-anchoring onto one would silently hijack another element's
        // role, so novelty (or a redesign-style suffix) is a hard
        // requirement, not just a ranking signal.
        let novel = |v: &str| {
            self.lkg
                .map(|l| !l.attribute_values.contains(v))
                .unwrap_or(false)
        };
        if self.lkg.is_some() {
            values.retain(|v| novel(v) || redesign(v));
        }
        let census_distance = |v: &str| -> usize {
            let Some(expected) = census else {
                return 0;
            };
            carriers.get(v).copied().unwrap_or(0).abs_diff(expected)
        };
        let overlap = |v: &str| -> usize {
            let tokens: Vec<&str> = from.split(['-', '_', ' ']).collect();
            v.split(['-', '_', ' '])
                .filter(|t| tokens.contains(t))
                .count()
        };
        // Stable sort keeps document order among equally ranked candidates.
        values.sort_by_key(|v| {
            (
                !redesign(v),
                !novel(v),
                census_distance(v),
                usize::MAX - overlap(v),
            )
        });
        values.truncate(self.config.max_candidates);
        values
    }

    /// The candidate replacement indices for a relaxed positional anchor,
    /// ranked by distance from the old index.
    fn candidate_positions(
        &self,
        query: &Query,
        step_idx: usize,
        pred_idx: usize,
        contexts: &[NodeId],
        from: u32,
    ) -> Vec<u32> {
        let mut relaxed: Step = query.steps[step_idx].clone();
        relaxed.predicates.remove(pred_idx);
        let max_len = contexts
            .iter()
            .map(|&c| evaluate_step(&relaxed, self.doc, c).len())
            .max()
            .unwrap_or(0) as u32;
        let mut positions: Vec<u32> = (1..=max_len).filter(|&p| p != from).collect();
        positions.sort_by_key(|&p| (p.abs_diff(from), p));
        positions.truncate(self.config.max_candidates);
        positions
    }
}

/// Rewrites the string constant of a `StringCompare` predicate in place.
fn set_compare_value(query: &mut Query, step_idx: usize, pred_idx: usize, to: &str) {
    if let Predicate::StringCompare { value, .. } = &mut query.steps[step_idx].predicates[pred_idx]
    {
        *value = to.to_string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verifier;
    use wi_dom::Document;
    use wi_induction::WrapperInducer;
    use wi_scoring::ScoringParams;

    fn bundle_for(doc: &Document, targets: &[NodeId]) -> WrapperBundle {
        let wrapper = WrapperInducer::default()
            .try_induce_best(doc, targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
    }

    fn flag_and_classify(
        bundle: &WrapperBundle,
        healthy_doc: &Document,
        healthy_targets: &[NodeId],
        evolved: &Document,
    ) -> DriftReport {
        let lkg = LastKnownGood::capture(healthy_doc, 0, healthy_targets);
        let verifier = Verifier::default();
        let health = verifier.check(bundle, evolved, 20, Some(&lkg));
        assert!(!health.healthy(), "evolved page should break the wrapper");
        DriftClassifier::default().classify(bundle, evolved, 20, Some(&lkg), &health)
    }

    #[test]
    fn semantic_rename_is_classified_and_fixed() {
        let v1 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="main"><h4>Director:</h4>
               <span class="itemprop">Scorsese</span></div>
               <div id="side"><span class="other">x</span></div></body>"#,
        )
        .unwrap();
        let target = v1.elements_by_class("itemprop");
        let bundle = bundle_for(&v1, &target);
        // The class is renamed to something with no lexical overlap.
        let v2 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="main"><h4>Director:</h4>
               <span class="renamed-41-812">Coppola</span></div>
               <div id="side"><span class="other">x</span></div></body>"#,
        )
        .unwrap();
        let report = flag_and_classify(&bundle, &v1, &target, &v2);
        assert_eq!(report.class, DriftClass::AttributeRename);
        assert!(report.repairable_in_place());
        let fixed = report.entries[0].fixed.as_ref().unwrap();
        assert_eq!(
            wi_xpath::evaluate(fixed, &v2, v2.root()),
            v2.elements_by_class("renamed-41-812")
        );
    }

    #[test]
    fn redesign_suffix_is_classified_as_redesign() {
        let v1 = Document::parse(
            r#"<body><div id="header"><span>logo</span><span>search</span></div>
               <div id="content"><ul class="items">
               <li class="row">a</li><li class="row">b</li><li class="row">c</li>
               </ul></div></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("row");
        let bundle = bundle_for(&v1, &targets);
        let v2 = Document::parse(
            r#"<body><div id="header"><span>logo</span><span>search</span></div>
               <div id="content-r1"><ul class="items-r1">
               <li class="row-r1">a</li><li class="row-r1">b</li><li class="row-r1">c</li>
               </ul></div></body>"#,
        )
        .unwrap();
        let report = flag_and_classify(&bundle, &v1, &targets, &v2);
        assert_eq!(report.class, DriftClass::Redesign);
        let fixed = report.entries[0].fixed.as_ref().unwrap();
        assert_eq!(
            wi_xpath::evaluate(fixed, &v2, v2.root()).len(),
            3,
            "fixed: {fixed}"
        );
    }

    #[test]
    fn positional_shift_is_classified_via_the_order_index() {
        // A canonical, position-anchored wrapper: /html/body/div[2]/h1.
        let v1 = Document::parse(
            r#"<html><body><div>nav</div><div><h1>Title</h1><p>intro</p><p>more</p></div></body></html>"#,
        )
        .unwrap();
        let query = "child::html[1]/child::body[1]/child::div[2]/child::h1[1]";
        let mut bundle = bundle_for(&v1, &v1.elements_by_tag("h1"));
        bundle.entries[0].expression = query.to_string();
        // A promo block shifts the content div from position 2 to 3.
        let v2 = Document::parse(
            r#"<html><body><div>nav</div><div>promo!</div><div><h1>Title</h1><p>intro</p><p>more</p></div></body></html>"#,
        )
        .unwrap();
        let report = flag_and_classify(&bundle, &v1, &v1.elements_by_tag("h1"), &v2);
        assert_eq!(report.class, DriftClass::Positional);
        let fixed = report.entries[0].fixed.as_ref().unwrap();
        assert_eq!(
            wi_xpath::evaluate(fixed, &v2, v2.root()),
            v2.elements_by_tag("h1")
        );
        assert!(report.entries[0]
            .fixes
            .iter()
            .any(|f| matches!(f.kind, FixKind::Reposition { from: 2, to: 3 })));
    }

    #[test]
    fn removed_target_is_classified_as_target_removed() {
        let v1 = Document::parse(
            r#"<body><div class="blk"><h4>Director:</h4><span class="itemprop">S</span></div>
               <div class="blk"><h4>Stars:</h4><span class="itemprop">A</span>
               <span class="itemprop">B</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li></ul></body>"#,
        )
        .unwrap();
        // The director span: anchored through the "Director:" label.
        let director = vec![v1.elements_by_class("itemprop")[0]];
        let bundle = bundle_for(&v1, &director);
        // The whole director block disappears.
        let v2 = Document::parse(
            r#"<body><div class="blk"><h4>Stars:</h4><span class="itemprop">A</span>
               <span class="itemprop">B</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li></ul></body>"#,
        )
        .unwrap();
        let report = flag_and_classify(&bundle, &v1, &director, &v2);
        assert_eq!(
            report.class,
            DriftClass::TargetRemoved,
            "report: {report:?}"
        );
        assert!(!report.repairable_in_place());
    }

    #[test]
    fn broken_capture_is_classified_as_page_broken() {
        let v1 = Document::parse(
            r#"<body><div id="main"><h4>Label:</h4><span class="v">x</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li></ul></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("v");
        let bundle = bundle_for(&v1, &targets);
        let lkg = LastKnownGood::capture(&v1, 0, &targets);
        let broken = Document::parse("<html><body><p>gone</p></body></html>").unwrap();
        let health = Verifier::default().check(&bundle, &broken, 20, Some(&lkg));
        let report = DriftClassifier::default().classify(&bundle, &broken, 20, Some(&lkg), &health);
        assert_eq!(report.class, DriftClass::PageBroken);
        assert!(report.entries.is_empty());
    }
}
