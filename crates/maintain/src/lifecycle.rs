//! The maintenance loop: a per-wrapper state machine driven over a timeline
//! of page versions.
//!
//! ```text
//!             healthy                     flagged
//!   Monitoring ───────► Monitoring          │
//!        ▲                                  ▼
//!        │ repair validated        classify → repair
//!        └───────────────────┐              │ repair failed
//!                            │              ▼
//!                        Degraded ◄─────────┘
//!                            │ `retire_after` consecutive failures,
//!                            │ drift class TargetRemoved
//!                            ▼
//!                         Retired  (still verified, never repaired)
//! ```
//!
//! Broken captures bypass the machine entirely: the wrapper, its state and
//! its last-known-good pass through unchanged (see the repair-policy
//! contract in the crate docs).

use crate::drift::{DriftClass, DriftClassifier, DriftConfig, DriftReport};
use crate::incremental::IncrementalState;
use crate::repair::{RepairAction, RepairConfig, Repairer};
use crate::verify::{HealthReport, LastKnownGood, Verifier, VerifyConfig};
use crate::PageVersion;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_xpath::EvalContext;

/// The lifecycle state of a maintained wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WrapperState {
    /// Healthy (or freshly repaired) and being watched.
    Monitoring,
    /// Flagged and not (yet) successfully repaired; repair is retried on
    /// every subsequent snapshot.
    Degraded,
    /// Given up: the target is gone from the page.  Verification continues
    /// (the wrapper un-retires if a later snapshot is healthy again), repair
    /// does not.
    Retired,
}

/// Everything the loop decided about one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// The snapshot day.
    pub day: i64,
    /// Verifier verdict (signals included).
    pub health: HealthReport,
    /// `true` when the verifier flagged this snapshot (not healthy).
    pub flagged: bool,
    /// `true` when the flag was a broken capture (no classification beyond
    /// [`DriftClass::PageBroken`], no repair).
    pub page_broken: bool,
    /// Drift classification, when the snapshot was flagged.
    pub drift: Option<DriftClass>,
    /// The repair applied on this snapshot, if any.
    pub repair: Option<RepairAction>,
    /// `true` when a repair was validated and installed on this snapshot.
    pub repaired: bool,
    /// Bundle revision in force *after* this snapshot.
    pub revision: u32,
    /// Lifecycle state after this snapshot.
    pub state: WrapperState,
    /// The extraction this epoch ends with: the repaired bundle's when a
    /// repair was installed, the flagged bundle's otherwise.
    pub extracted: Vec<wi_dom::NodeId>,
}

/// A bundle revision recorded by a maintenance run.
#[derive(Debug, Clone)]
pub struct RevisionEvent {
    /// The day the revision was installed.
    pub day: i64,
    /// The revision number.
    pub revision: u32,
    /// Why (the repair's provenance).
    pub cause: String,
    /// The installed bundle.
    pub bundle: WrapperBundle,
}

/// The full record of one maintenance run.
#[derive(Debug, Clone)]
pub struct MaintenanceLog {
    /// The maintained site/wrapper label.
    pub label: String,
    /// One outcome per page version, in input order.
    pub outcomes: Vec<EpochOutcome>,
    /// Every revision installed during the run, oldest first.
    pub revisions: Vec<RevisionEvent>,
    /// The bundle in force after the last snapshot.
    pub bundle: WrapperBundle,
    /// The last-known-good state after the last snapshot.
    pub lkg: Option<LastKnownGood>,
    /// Consecutive failed `TargetRemoved` repairs at the end of the run (the
    /// retirement countdown).  Feed this back into
    /// [`Maintainer::run_resumed`] to continue the timeline later — e.g.
    /// after a registry restart — exactly where it stopped.
    pub target_gone_streak: u32,
}

impl MaintenanceLog {
    /// How many snapshots were flagged (excluding broken captures).
    pub fn wrapper_flags(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.flagged && !o.page_broken)
            .count()
    }

    /// How many repairs were installed.
    pub fn repairs(&self) -> usize {
        self.outcomes.iter().filter(|o| o.repaired).count()
    }
}

/// Configuration of the whole loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaintainConfig {
    /// Verification thresholds.
    pub verify: VerifyConfig,
    /// Classification bounds.
    pub drift: DriftConfig,
    /// Repair policies.
    pub repair: RepairConfig,
    /// Consecutive failed repairs with drift class
    /// [`DriftClass::TargetRemoved`] before the wrapper retires.
    pub retire_after: usize,
    /// Enables the incremental-replay caches: cross-version step caching in
    /// the evaluator, verify memoization and re-induction memoization keyed
    /// by content fingerprints (the `incremental` module).  Outcomes are
    /// byte-identical with the caches on or off; this switch exists for the
    /// equivalence battery and for bisecting.  Defaults to `true`.
    pub incremental: bool,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig {
            verify: VerifyConfig::default(),
            drift: DriftConfig::default(),
            repair: RepairConfig::default(),
            retire_after: 2,
            incremental: true,
        }
    }
}

/// Drives bundles through verify → classify → repair over page timelines.
#[derive(Debug, Clone, Default)]
pub struct Maintainer {
    /// Loop configuration.
    pub config: MaintainConfig,
    /// The inducer used for re-induction repairs (callers configure text
    /// policies etc. here).
    pub inducer: WrapperInducer,
}

impl Maintainer {
    /// Creates a maintainer with explicit configuration.
    pub fn new(config: MaintainConfig, inducer: WrapperInducer) -> Maintainer {
        Maintainer { config, inducer }
    }

    /// Runs the maintenance loop over a timeline, allocating a fresh
    /// evaluation context.
    pub fn run(
        &self,
        label: &str,
        bundle: WrapperBundle,
        pages: &[PageVersion],
        seed_lkg: Option<LastKnownGood>,
    ) -> MaintenanceLog {
        self.run_with(&mut EvalContext::new(), label, bundle, pages, seed_lkg)
    }

    /// Runs the maintenance loop over a timeline, reusing the caller's
    /// evaluation context (the batch driver passes one per worker).
    pub fn run_with(
        &self,
        cx: &mut EvalContext,
        label: &str,
        bundle: WrapperBundle,
        pages: &[PageVersion],
        seed_lkg: Option<LastKnownGood>,
    ) -> MaintenanceLog {
        self.run_with_inducer(cx, label, bundle, pages, seed_lkg, &self.inducer)
    }

    /// Like [`run_with`](Maintainer::run_with) with an explicit re-induction
    /// inducer: batch jobs override the shared maintainer's inducer when
    /// their site needs a different induction configuration (e.g. its own
    /// template-label text policy).
    pub fn run_with_inducer(
        &self,
        cx: &mut EvalContext,
        label: &str,
        bundle: WrapperBundle,
        pages: &[PageVersion],
        seed_lkg: Option<LastKnownGood>,
        inducer: &WrapperInducer,
    ) -> MaintenanceLog {
        self.run_resumed(
            cx,
            label,
            bundle,
            pages,
            seed_lkg,
            inducer,
            WrapperState::Monitoring,
            0,
        )
    }

    /// Like [`run_with_inducer`](Maintainer::run_with_inducer), but resuming
    /// from an explicit lifecycle position: the wrapper state and the
    /// consecutive-`TargetRemoved` failure streak a previous run ended with
    /// (see [`MaintenanceLog::target_gone_streak`]).  This is what makes a
    /// timeline *splittable*: running the first half, persisting
    /// `(bundle, lkg, state, streak)`, and resuming over the second half is
    /// byte-identical to one uninterrupted run — the persistent registry's
    /// restart guarantee is built on it.  A wrapper resumed as
    /// [`WrapperState::Retired`] keeps being verified but not repaired,
    /// exactly as if it had retired mid-run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_resumed(
        &self,
        cx: &mut EvalContext,
        label: &str,
        bundle: WrapperBundle,
        pages: &[PageVersion],
        seed_lkg: Option<LastKnownGood>,
        inducer: &WrapperInducer,
        seed_state: WrapperState,
        seed_target_gone_streak: u32,
    ) -> MaintenanceLog {
        let verifier = Verifier::new(self.config.verify.clone());
        let classifier = DriftClassifier::new(self.config.drift.clone());
        let repairer = Repairer::new(self.config.repair.clone(), verifier.clone());

        let run_started = Instant::now();
        let mut inc = self.config.incremental.then(IncrementalState::new);
        if inc.is_some() {
            // Step results cached across snapshots survive in the context,
            // keyed by subtree fingerprints (sound across documents).
            cx.enable_cross_version();
        }

        let mut bundle = bundle;
        let mut lkg = seed_lkg;
        let mut state = seed_state;
        let mut consecutive_target_gone = seed_target_gone_streak as usize;
        let mut outcomes: Vec<EpochOutcome> = Vec::with_capacity(pages.len());
        let mut revisions: Vec<RevisionEvent> = Vec::new();
        let obs = crate::telemetry::maintain_metrics();

        for page in pages {
            let epoch_started = Instant::now();
            obs.epochs.inc();
            let prev_state = state;

            let verify_started = Instant::now();
            let doc_fp = inc.as_ref().map(|_| page.doc.content_hash());
            let health = match (inc.as_mut(), doc_fp) {
                (Some(state), Some(fp)) => state.verify(
                    cx,
                    &verifier,
                    &bundle,
                    &page.doc,
                    fp,
                    page.day,
                    lkg.as_ref(),
                ),
                _ => verifier.check_with(cx, &bundle, &page.doc, page.day, lkg.as_ref()),
            };
            obs.verify_latency_us.observe_us(verify_started.elapsed());

            if health.page_broken() {
                obs.drift_counter(DriftClass::PageBroken).inc();
                wi_obs::record_span("maintain.epoch", epoch_started, &[("flagged", 1)]);
                // Archive artifact: pass through untouched.
                outcomes.push(EpochOutcome {
                    day: page.day,
                    flagged: true,
                    page_broken: true,
                    drift: Some(DriftClass::PageBroken),
                    repair: None,
                    repaired: false,
                    revision: bundle.revision,
                    state,
                    extracted: Vec::new(),
                    health,
                });
                continue;
            }

            if health.healthy() {
                let identical = match (inc.as_ref(), doc_fp, lkg.as_ref()) {
                    (Some(state), Some(fp), Some(_)) => state.lkg_unchanged(fp, bundle.revision),
                    _ => false,
                };
                lkg = if identical {
                    // Same document, same bundle: a fresh capture would
                    // reproduce the live state field for field.
                    Some(lkg.as_ref().unwrap().advance_identical(page.day))
                } else {
                    let fresh = match (inc.as_mut(), doc_fp) {
                        (Some(state), Some(fp)) => {
                            state.record_lkg_origin(fp, bundle.revision);
                            state.capture_for(&bundle, &page.doc, fp, page.day, &health.extracted)
                        }
                        _ => LastKnownGood::capture_for(
                            &bundle,
                            &page.doc,
                            page.day,
                            &health.extracted,
                        ),
                    };
                    Some(match lkg.as_ref() {
                        Some(previous) => LastKnownGood::advance(previous, fresh),
                        None => fresh,
                    })
                };
                if let (Some(state), Some(fp)) = (inc.as_mut(), doc_fp) {
                    state.record_echo(fp, bundle.revision, &health, &page.doc);
                }
                state = WrapperState::Monitoring;
                consecutive_target_gone = 0;
                if state != prev_state {
                    obs.transition_counter(state).inc();
                }
                obs.target_gone_streak.set(0);
                wi_obs::record_span("maintain.epoch", epoch_started, &[("flagged", 0)]);
                outcomes.push(EpochOutcome {
                    day: page.day,
                    flagged: false,
                    page_broken: false,
                    drift: None,
                    repair: None,
                    repaired: false,
                    revision: bundle.revision,
                    state,
                    extracted: health.extracted.clone(),
                    health,
                });
                continue;
            }

            // Flagged: classify, then (unless retired) try to repair.
            let classify_started = Instant::now();
            let drift: DriftReport =
                classifier.classify_with(cx, &bundle, &page.doc, page.day, lkg.as_ref(), &health);
            obs.classify_latency_us
                .observe_us(classify_started.elapsed());
            obs.drift_counter(drift.class).inc();
            if drift.class == DriftClass::Redesign {
                // A redesign breaks the recurring-page-shape assumption;
                // drop the memos rather than let them grow cold.
                if let Some(state) = inc.as_mut() {
                    state.invalidate();
                }
                if let Some(cache) = cx.cross_version_mut() {
                    cache.invalidate();
                }
            }
            let mut repair_action = None;
            let mut repaired = false;
            let mut extracted = health.extracted.clone();

            if state != WrapperState::Retired {
                let repair_started = Instant::now();
                let repair_outcome = repairer.repair_with_cached(
                    cx,
                    &bundle,
                    &page.doc,
                    page.day,
                    lkg.as_ref(),
                    &drift,
                    inducer,
                    inc.as_mut(),
                );
                obs.repair_latency_us.observe_us(repair_started.elapsed());
                match repair_outcome {
                    Some(outcome) => {
                        bundle = outcome.bundle;
                        revisions.push(RevisionEvent {
                            day: page.day,
                            revision: bundle.revision,
                            cause: outcome.action.provenance(page.day),
                            bundle: bundle.clone(),
                        });
                        let fresh = match (inc.as_mut(), doc_fp) {
                            (Some(state), Some(fp)) => {
                                state.record_lkg_origin(fp, bundle.revision);
                                state.capture_for(
                                    &bundle,
                                    &page.doc,
                                    fp,
                                    page.day,
                                    &outcome.extracted,
                                )
                            }
                            _ => LastKnownGood::capture_for(
                                &bundle,
                                &page.doc,
                                page.day,
                                &outcome.extracted,
                            ),
                        };
                        lkg = Some(match lkg.as_ref() {
                            Some(previous) => LastKnownGood::advance(previous, fresh),
                            None => fresh,
                        });
                        extracted = outcome.extracted.clone();
                        repair_action = Some(outcome.action);
                        repaired = true;
                        state = WrapperState::Monitoring;
                        consecutive_target_gone = 0;
                    }
                    None => {
                        if drift.class == DriftClass::TargetRemoved {
                            consecutive_target_gone += 1;
                        } else {
                            consecutive_target_gone = 0;
                        }
                        state = if consecutive_target_gone >= self.config.retire_after {
                            WrapperState::Retired
                        } else {
                            WrapperState::Degraded
                        };
                    }
                }
            }

            if state != prev_state {
                obs.transition_counter(state).inc();
            }
            obs.target_gone_streak.set(consecutive_target_gone as u64);
            wi_obs::record_span("maintain.epoch", epoch_started, &[("flagged", 1)]);

            outcomes.push(EpochOutcome {
                day: page.day,
                flagged: true,
                page_broken: false,
                drift: Some(drift.class),
                repair: repair_action,
                repaired,
                revision: bundle.revision,
                state,
                extracted,
                health,
            });
        }

        if let Some(mut state) = inc {
            let memo = state.take_stats();
            let xv = cx
                .cross_version_mut()
                .map(|cache| cache.take_stats())
                .unwrap_or_default();
            let hits = memo.hits + xv.hits;
            let misses = memo.misses + xv.misses;
            let invalidations = memo.invalidations + xv.invalidations;
            obs.cache_hits.add(hits);
            obs.cache_misses.add(misses);
            obs.cache_invalidations.add(invalidations);
            wi_obs::record_span(
                "maintain.incremental",
                run_started,
                &[
                    ("epochs", pages.len() as u64),
                    ("hits", hits),
                    ("misses", misses),
                    ("invalidations", invalidations),
                ],
            );
        }

        MaintenanceLog {
            label: label.to_string(),
            outcomes,
            revisions,
            bundle,
            lkg,
            target_gone_streak: consecutive_target_gone as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::Document;
    use wi_scoring::ScoringParams;

    fn page(class: &str, values: &[&str]) -> Document {
        let items: String = values
            .iter()
            .map(|v| format!(r#"<span class="{class}">{v}</span>"#))
            .collect();
        Document::parse(&format!(
            r#"<html><body><div id="main"><h4>Prices:</h4>{items}</div>
               <div id="side"><ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></div>
               </body></html>"#
        ))
        .unwrap()
    }

    fn induced(doc: &Document) -> WrapperBundle {
        let targets = doc
            .descendants(doc.root())
            .filter(|&n| doc.tag_name(n) == Some("span"))
            .collect::<Vec<_>>();
        let wrapper = WrapperInducer::default()
            .try_induce_best(doc, &targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label("p")
    }

    #[test]
    fn healthy_timeline_stays_monitoring_with_zero_repairs() {
        let v1 = page("p", &["1", "2", "3"]);
        let bundle = induced(&v1);
        let pages: Vec<PageVersion> = [
            page("p", &["1", "2", "3"]),
            page("p", &["4", "5", "6"]),
            page("p", &["7", "8", "9"]),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, doc)| PageVersion {
            day: 20 * i as i64,
            doc,
        })
        .collect();
        let log = Maintainer::default().run("site", bundle, &pages, None);
        assert_eq!(log.wrapper_flags(), 0);
        assert_eq!(log.repairs(), 0);
        assert!(log
            .outcomes
            .iter()
            .all(|o| o.state == WrapperState::Monitoring));
        assert_eq!(log.bundle.revision, 0);
        assert_eq!(log.lkg.as_ref().unwrap().texts, vec!["7", "8", "9"]);
    }

    #[test]
    fn rename_mid_timeline_is_flagged_classified_and_hot_swapped() {
        let v1 = page("p", &["1", "2", "3"]);
        let bundle = induced(&v1);
        let pages = vec![
            PageVersion {
                day: 0,
                doc: page("p", &["1", "2", "3"]),
            },
            PageVersion {
                day: 20,
                doc: page("price", &["4", "5", "6"]),
            },
            PageVersion {
                day: 40,
                doc: page("price", &["7", "8", "9"]),
            },
        ];
        let log = Maintainer::default().run("site", bundle, &pages, None);
        assert_eq!(log.wrapper_flags(), 1);
        assert_eq!(log.repairs(), 1);
        let o = &log.outcomes[1];
        assert!(o.repaired);
        assert_eq!(o.drift, Some(DriftClass::AttributeRename));
        assert_eq!(o.revision, 1);
        // After the hot swap day 40 is healthy again under the new anchor.
        assert!(!log.outcomes[2].flagged);
        assert_eq!(log.revisions.len(), 1);
        assert!(log.revisions[0].cause.contains("re-anchored"));
    }

    #[test]
    fn gone_target_degrades_then_retires_and_repair_stops() {
        let v1 = Document::parse(
            r#"<body><div class="blk"><h4>Director:</h4><span class="v">S</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("v");
        let wrapper = WrapperInducer::default()
            .try_induce_best(&v1, &targets)
            .unwrap();
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults());
        let gone = Document::parse(
            r#"<body><ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        let pages = vec![
            PageVersion {
                day: 0,
                doc: v1.clone(),
            },
            PageVersion {
                day: 20,
                doc: gone.clone(),
            },
            PageVersion {
                day: 40,
                doc: gone.clone(),
            },
            PageVersion {
                day: 60,
                doc: gone.clone(),
            },
        ];
        let log = Maintainer::default().run("site", bundle, &pages, None);
        assert_eq!(log.repairs(), 0);
        assert_eq!(log.outcomes[1].state, WrapperState::Degraded);
        assert_eq!(log.outcomes[1].drift, Some(DriftClass::TargetRemoved));
        assert_eq!(log.outcomes[2].state, WrapperState::Retired);
        assert_eq!(log.outcomes[3].state, WrapperState::Retired);
        assert_eq!(log.bundle.revision, 0);
    }

    #[test]
    fn broken_capture_passes_through_without_state_change() {
        let v1 = page("p", &["1", "2", "3"]);
        let bundle = induced(&v1);
        let broken =
            Document::parse("<html><body><p>Page cannot be crawled or displayed</p></body></html>")
                .unwrap();
        let pages = vec![
            PageVersion {
                day: 0,
                doc: page("p", &["1", "2", "3"]),
            },
            PageVersion {
                day: 20,
                doc: broken,
            },
            PageVersion {
                day: 40,
                doc: page("p", &["4", "5", "6"]),
            },
        ];
        let log = Maintainer::default().run("site", bundle, &pages, None);
        let o = &log.outcomes[1];
        assert!(o.page_broken);
        assert_eq!(o.drift, Some(DriftClass::PageBroken));
        assert!(!o.repaired);
        // The broken capture neither repaired nor poisoned the LKG: day 40
        // verifies healthy against the day-0 state.
        assert!(!log.outcomes[2].flagged);
        assert_eq!(log.repairs(), 0);
    }
}
