//! Shard compaction: bounding log growth without losing what matters.
//!
//! An append-only log grows with every maintenance run — one lifecycle
//! record per batch plus one record per installed revision.  Compaction
//! keeps, per site:
//!
//! * the **current revision** and the last
//!   [`retain_revisions`](CompactionPolicy::retain_revisions) superseded
//!   ones (the audit tail),
//! * the **last-known-good** verification state,
//! * the **lifecycle position** (state + retirement streak).
//!
//! Unlike the v1 whole-shard rewrite, compaction is now *copy-based and
//! segment-bounded*: every segment is scanned with the cheap metadata
//! decoder, each record is judged live or dead against the live map, and
//! only segments whose live-record ratio falls below the policy's
//! [`min_live_ratio`](CompactionPolicy::min_live_ratio) floor are
//! rewritten — by copying their live lines byte-identically into a fresh
//! file.  Work is therefore bounded by the number of *dirty* segments, not
//! by shard size, and a mostly-live shard costs one metadata scan.
//!
//! Everything observable through the registry API is invariant under
//! compaction: current bundles, revision counters, last-known-good states
//! and retired flags are bit-identical before and after, and a recovery
//! from the compacted segments reproduces the same live map (minus the
//! trimmed history).  Each rewrite is atomic (temp file + rename + parent
//! fsync), and the shard manifest's compaction generation is bumped
//! afterwards.
//!
//! Compaction is also the object store's garbage collector: after the
//! scan it knows exactly which bundle digests remain referenced and
//! removes the rest.  A digest is *reachable* if any surviving line
//! mentions it — including dead lines of segments that were **not**
//! rewritten, because recovery decodes every line still on disk and would
//! truncate its replay prefix at a dangling digest.

use super::log::{decode_line_meta, RecordKind, RecordMeta, RegistryError};
use super::objects::ObjectStore;
use super::shard::{
    list_segments, read_shard_manifest, segment_path, shard_dir, sync_dir, write_atomic,
    write_shard_manifest,
};
use super::SiteEntry;
use crate::lifecycle::WrapperState;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// How much history a compaction keeps, and how dirty a segment must get
/// before it is rewritten.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Superseded revisions kept per site *behind* the current one.  `0`
    /// keeps only the revision in force.
    pub retain_revisions: usize,
    /// The live-record ratio floor: a segment is rewritten only when
    /// `live / total < min_live_ratio`.  The default `1.0` rewrites any
    /// segment holding at least one dead record (the v1 behaviour: no dead
    /// record survives a compaction); lowering it trades disk for write
    /// amplification — `0.5` leaves segments alone until half their
    /// records are dead.  An empty segment counts as fully live.
    pub min_live_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            retain_revisions: 2,
            min_live_ratio: 1.0,
        }
    }
}

impl CompactionPolicy {
    /// The hard per-site record ceiling a fully compacted shard obeys: the
    /// retained revision tail plus the current revision, one last-known-good
    /// record and one lifecycle record.
    pub fn max_records_per_site(&self) -> usize {
        self.retain_revisions + 3
    }

    /// The index of the first *retained* revision in a history of
    /// `revisions` entries.  The single source of the retention rule: both
    /// the segment liveness judgment and the live-map trim use this, so the
    /// two can never silently disagree record-for-record.
    pub fn keep_from(&self, revisions: usize) -> usize {
        revisions.saturating_sub(self.retain_revisions + 1)
    }
}

/// What a compaction did, per [`PersistentRegistry::compact`] call.
///
/// [`PersistentRegistry::compact`]: super::PersistentRegistry::compact
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Shards scanned.
    pub shards: usize,
    /// Log records across all segments before the rewrite.
    pub records_before: usize,
    /// Log records across all segments after the rewrite.
    pub records_after: usize,
    /// Log bytes across all segments before the rewrite.
    pub bytes_before: u64,
    /// Log bytes across all segments after the rewrite.
    pub bytes_after: u64,
    /// Segments whose metadata was scanned (all of them).
    pub segments_scanned: usize,
    /// Segments actually rewritten (live ratio below the policy floor).
    pub segments_rewritten: usize,
    /// Pre-rewrite byte length summed over the rewritten segments only —
    /// the write-amplification bound: skipped segments contribute nothing,
    /// so this is at most `segments_rewritten` segments' worth of bytes no
    /// matter how large the shard is.
    pub bytes_rewritten: u64,
    /// Unreferenced bundle objects garbage-collected from the object store.
    pub objects_removed: usize,
}

/// One scanned segment: its id, raw lines, decoded metadata and per-line
/// liveness verdicts.
struct ScannedSegment {
    id: u64,
    lines: Vec<String>,
    meta: Vec<RecordMeta>,
    live: Vec<bool>,
}

/// Rewrites the dirty segments of every shard under `policy` and
/// garbage-collects the object store.
pub(crate) fn compact_registry(
    root: &Path,
    shards: usize,
    sites: &BTreeMap<String, SiteEntry>,
    policy: &CompactionPolicy,
    objects: &ObjectStore,
) -> Result<CompactionStats, RegistryError> {
    let compact_started = std::time::Instant::now();
    let mut stats = CompactionStats {
        shards,
        records_before: 0,
        records_after: 0,
        bytes_before: 0,
        bytes_after: 0,
        segments_scanned: 0,
        segments_rewritten: 0,
        bytes_rewritten: 0,
        objects_removed: 0,
    };
    let mut reachable: BTreeSet<u64> = BTreeSet::new();

    for shard in 0..shards {
        let ids = list_segments(root, shard)?;
        let highest = ids.last().copied();

        // Pass 1: scan every segment's metadata (no object loads), and find
        // each site's *last* last-known-good and lifecycle record — only the
        // final occurrence can be live, exactly as replay's last-wins rule.
        let mut scanned: Vec<ScannedSegment> = Vec::with_capacity(ids.len());
        let mut last_lkg: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        let mut last_state: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for &id in &ids {
            let path = segment_path(root, shard, id);
            let raw = std::fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
            stats.bytes_before += raw.len() as u64;
            let mut lines = Vec::new();
            let mut meta = Vec::new();
            for (line_no, line) in raw.lines().enumerate() {
                let m = decode_line_meta(line).map_err(|message| RegistryError::Record {
                    shard,
                    line: line_no + 1,
                    message: format!("segment {id}: {message} (recover before compacting)"),
                })?;
                lines.push(line.to_string());
                meta.push(m);
            }
            let live = vec![false; lines.len()];
            scanned.push(ScannedSegment {
                id,
                lines,
                meta,
                live,
            });
            stats.segments_scanned += 1;
        }
        for (seg_index, seg) in scanned.iter().enumerate() {
            for (line_index, m) in seg.meta.iter().enumerate() {
                stats.records_before += 1;
                match m.kind {
                    RecordKind::Lkg => {
                        last_lkg.insert(m.site.clone(), (seg_index, line_index));
                    }
                    RecordKind::State => {
                        last_state.insert(m.site.clone(), (seg_index, line_index));
                    }
                    RecordKind::Revision => {}
                }
            }
        }

        // Pass 2: judge liveness against the live map.  Records of sites the
        // map does not know are kept — compaction must never invent deletes
        // the replay would not.
        for (seg_index, seg) in scanned.iter_mut().enumerate() {
            for line_index in 0..seg.meta.len() {
                let m = &seg.meta[line_index];
                let verdict = match m.kind {
                    RecordKind::Revision => match sites.get(&m.site) {
                        Some(entry) if !entry.versions.is_empty() => {
                            let threshold =
                                entry.versions[policy.keep_from(entry.versions.len())].revision;
                            m.revision.is_some_and(|r| r >= threshold)
                        }
                        _ => true,
                    },
                    RecordKind::Lkg => last_lkg.get(&m.site) == Some(&(seg_index, line_index)),
                    RecordKind::State => {
                        last_state.get(&m.site) == Some(&(seg_index, line_index))
                            && match sites.get(&m.site) {
                                // The replay defaults are Monitoring, zero
                                // streak, no maintained day: a site still on
                                // them needs no lifecycle record at all.
                                Some(entry) => {
                                    entry.state != WrapperState::Monitoring
                                        || entry.target_gone_streak > 0
                                        || entry.last_day.is_some()
                                }
                                None => true,
                            }
                    }
                };
                seg.live[line_index] = verdict;
            }
        }

        // Pass 3: rewrite only segments below the live-ratio floor, copying
        // live lines byte-identically.  Everything a surviving line
        // references — dead lines of *skipped* segments included — keeps its
        // object reachable.
        for seg in &scanned {
            let total = seg.lines.len();
            let live_count = seg.live.iter().filter(|&&l| l).count();
            let ratio = if total == 0 {
                1.0
            } else {
                live_count as f64 / total as f64
            };
            if ratio >= policy.min_live_ratio {
                for m in &seg.meta {
                    if let Some(digest) = m.bundle_digest {
                        reachable.insert(digest);
                    }
                }
                stats.records_after += total;
                stats.bytes_after += seg.lines.iter().map(|l| l.len() as u64 + 1).sum::<u64>();
                continue;
            }

            let mut rewritten = String::new();
            for (line, (&live, m)) in seg.lines.iter().zip(seg.live.iter().zip(seg.meta.iter())) {
                if live {
                    rewritten.push_str(line);
                    rewritten.push('\n');
                    if let Some(digest) = m.bundle_digest {
                        reachable.insert(digest);
                    }
                    stats.records_after += 1;
                }
            }
            stats.segments_rewritten += 1;
            stats.bytes_rewritten += seg.lines.iter().map(|l| l.len() as u64 + 1).sum::<u64>();
            let path = segment_path(root, shard, seg.id);
            if rewritten.is_empty() && Some(seg.id) != highest {
                // A fully dead, non-active segment disappears outright; the
                // highest (active) segment is kept even when emptied so
                // appends always have a file to land in.
                std::fs::remove_file(&path).map_err(|e| RegistryError::io(&path, e))?;
                sync_dir(&shard_dir(root, shard))?;
            } else {
                write_atomic(&path, &rewritten)?;
                stats.bytes_after += rewritten.len() as u64;
            }
        }

        let generation = read_shard_manifest(root, shard)?;
        write_shard_manifest(root, shard, generation.saturating_add(1))?;
    }

    // Object garbage collection: drop every digest no surviving line
    // references.
    for digest in objects.list()? {
        if !reachable.contains(&digest) {
            objects.remove(digest)?;
            stats.objects_removed += 1;
        }
    }

    let obs = crate::telemetry::registry_metrics();
    obs.compaction_bytes_in.add(stats.bytes_before);
    obs.compaction_bytes_out.add(stats.bytes_after);
    obs.segments_rewritten.add(stats.segments_rewritten as u64);
    wi_obs::record_span(
        "registry.compact",
        compact_started,
        &[
            ("bytes_in", stats.bytes_before),
            ("bytes_out", stats.bytes_after),
            ("segments_rewritten", stats.segments_rewritten as u64),
            ("objects_removed", stats.objects_removed as u64),
        ],
    );
    Ok(stats)
}
