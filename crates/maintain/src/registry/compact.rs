//! Shard compaction: bounding log growth without losing what matters.
//!
//! An append-only log grows with every maintenance run — one lifecycle
//! record per batch plus one record per installed revision.  Compaction
//! rewrites a shard down to the state a service actually needs going
//! forward:
//!
//! * per site, the **current revision** and the last
//!   [`retain_revisions`](CompactionPolicy::retain_revisions) superseded
//!   ones (the audit tail),
//! * the **last-known-good** verification state,
//! * the **lifecycle position** (state + retirement streak).
//!
//! Everything observable through the registry API is invariant under
//! compaction: current bundles, revision counters, last-known-good states
//! and retired flags are bit-identical before and after, and a recovery
//! from the compacted log reproduces the same live map (minus the trimmed
//! history).  The rewrite is atomic per shard (temp file + rename), and the
//! shard manifest's compaction generation is bumped afterwards.

use super::log::{encode_record_ref, RecordRef, RegistryError};
use super::shard::{log_path, read_shard_manifest, shard_of, write_atomic, write_shard_manifest};
use super::SiteEntry;
use crate::lifecycle::WrapperState;
use std::collections::BTreeMap;
use std::path::Path;

/// How much history a compaction keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Superseded revisions kept per site *behind* the current one.  `0`
    /// keeps only the revision in force.
    pub retain_revisions: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            retain_revisions: 2,
        }
    }
}

impl CompactionPolicy {
    /// The hard per-site record ceiling a compacted shard obeys: the
    /// retained revision tail plus the current revision, one last-known-good
    /// record and one lifecycle record.
    pub fn max_records_per_site(&self) -> usize {
        self.retain_revisions + 3
    }

    /// The index of the first *retained* revision in a history of
    /// `revisions` entries.  The single source of the retention rule: both
    /// the shard-log rewrite and the live-map trim use this, so the two can
    /// never silently disagree record-for-record.
    pub fn keep_from(&self, revisions: usize) -> usize {
        revisions.saturating_sub(self.retain_revisions + 1)
    }
}

/// What a compaction did, per [`PersistentRegistry::compact`] call.
///
/// [`PersistentRegistry::compact`]: super::PersistentRegistry::compact
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Shards rewritten.
    pub shards: usize,
    /// Log records across all shards before the rewrite.
    pub records_before: usize,
    /// Log records across all shards after the rewrite.
    pub records_after: usize,
    /// Log bytes across all shards before the rewrite.
    pub bytes_before: u64,
    /// Log bytes across all shards after the rewrite.
    pub bytes_after: u64,
}

/// Rewrites every shard log from the live map under `policy`.
pub(crate) fn compact_registry(
    root: &Path,
    shards: usize,
    sites: &BTreeMap<String, SiteEntry>,
    policy: &CompactionPolicy,
) -> Result<CompactionStats, RegistryError> {
    let compact_started = std::time::Instant::now();
    let mut stats = CompactionStats {
        shards,
        records_before: 0,
        records_after: 0,
        bytes_before: 0,
        bytes_after: 0,
    };
    // One pass over the (sorted, so deterministically ordered) live map to
    // group sites by shard — hashing every site once, not once per shard.
    let mut shard_sites: Vec<Vec<(&String, &SiteEntry)>> = vec![Vec::new(); shards];
    for (site, entry) in sites {
        shard_sites[shard_of(site, shards)].push((site, entry));
    }

    for (shard, members) in shard_sites.iter().enumerate() {
        let path = log_path(root, shard);
        match std::fs::read(&path) {
            Ok(old) => {
                stats.bytes_before += old.len() as u64;
                stats.records_before += old.iter().filter(|&&b| b == b'\n').count();
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(RegistryError::io(&path, e)),
        }

        let mut rewritten = String::new();
        let mut records = 0usize;
        for &(site, entry) in members {
            let keep_from = policy.keep_from(entry.versions.len());
            for version in &entry.versions[keep_from..] {
                rewritten.push_str(&encode_record_ref(RecordRef::Revision {
                    site,
                    day: version.day,
                    revision: version.revision,
                    cause: &version.cause,
                    bundle: &version.bundle,
                }));
                records += 1;
            }
            if let Some(lkg) = &entry.lkg {
                rewritten.push_str(&encode_record_ref(RecordRef::Lkg { site, lkg }));
                records += 1;
            }
            // The replay defaults are Monitoring, zero streak, no
            // maintained day, so the lifecycle record is only needed when
            // the site deviates from them — unconditional state records
            // would make compaction *grow* an install-only registry.  The
            // recorded day is the persisted last-maintained day, not some
            // revision's: the audit trail must keep saying when maintenance
            // last ran.
            if entry.state != WrapperState::Monitoring
                || entry.target_gone_streak > 0
                || entry.last_day.is_some()
            {
                rewritten.push_str(&encode_record_ref(RecordRef::State {
                    site,
                    day: entry
                        .last_day
                        .or_else(|| entry.versions.last().map(|v| v.day))
                        .unwrap_or(0),
                    state: entry.state,
                    target_gone_streak: entry.target_gone_streak,
                }));
                records += 1;
            }
        }

        write_atomic(&path, &rewritten)?;
        let generation = read_shard_manifest(root, shard)?;
        write_shard_manifest(root, shard, generation.saturating_add(1))?;
        stats.bytes_after += rewritten.len() as u64;
        stats.records_after += records;
    }
    let obs = crate::telemetry::registry_metrics();
    obs.compaction_bytes_in.add(stats.bytes_before);
    obs.compaction_bytes_out.add(stats.bytes_after);
    wi_obs::record_span(
        "registry.compact",
        compact_started,
        &[
            ("bytes_in", stats.bytes_before),
            ("bytes_out", stats.bytes_after),
        ],
    );
    Ok(stats)
}
