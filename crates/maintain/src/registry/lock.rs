//! Per-shard advisory file locks: one daemon process per shard.
//!
//! A lock is a `lock` file inside the shard directory holding the owning
//! process id.  It is acquired at [`PersistentRegistry::create`],
//! [`open`](PersistentRegistry::open) and
//! [`recover`](PersistentRegistry::recover) time and released when the
//! registry is dropped, so two *processes* can never append to the same
//! shard log concurrently — interleaved appends from two writers would be
//! indistinguishable from corruption at recovery time.
//!
//! The lock is **advisory and per-process**:
//!
//! * A second acquisition from the *same* process (e.g. a test holding a
//!   live registry while probing a fresh `recover`) is granted as a
//!   borrowed, non-owning handle; single-process exclusion stays the
//!   caller's responsibility, exactly as before locks existed.
//! * A lock whose recorded holder is no longer alive (checked via
//!   `/proc/<pid>` where procfs exists) is stale — e.g. a daemon killed
//!   with SIGKILL — and is silently reclaimed, so a crashed service can
//!   always restart over its own registry.
//! * Without procfs the liveness probe is undecidable and stale locks are
//!   reclaimed optimistically: a crashed daemon must never brick its
//!   registry, and the lock remains advisory either way.
//!
//! [`PersistentRegistry::create`]: super::PersistentRegistry::create
//! [`PersistentRegistry::open`]: super::PersistentRegistry::open
//! [`PersistentRegistry::recover`]: super::PersistentRegistry::recover

// lint:allow-file(R6, the pid-stamped advisory lock is this module's whole job — it reads and records std::process::id)
use super::log::RegistryError;
use super::shard::sync_dir;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// How many acquire attempts to make before giving up: each failed attempt
/// means another process raced us between staleness check and reclaim.
const MAX_ATTEMPTS: usize = 4;

/// An acquired shard lock.  Owning handles delete the lock file on drop;
/// borrowed (same-process re-entrant) handles leave it to the owner.
#[derive(Debug)]
pub(crate) struct ShardLock {
    path: PathBuf,
    owned: bool,
}

impl ShardLock {
    /// Acquires the lock at `path`, failing with [`RegistryError::Locked`]
    /// when another live process holds it.
    pub(crate) fn acquire(path: PathBuf) -> Result<ShardLock, RegistryError> {
        for _ in 0..MAX_ATTEMPTS {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // Best-effort pid stamp: an empty lock file (crash
                    // between create and write) reads as stale below.
                    let _ = writeln!(file, "{}", std::process::id());
                    let _ = file.sync_all();
                    // The created directory entry must survive a crash too:
                    // a lock that silently vanishes on power loss would let
                    // a second process in (best-effort, like the stamp —
                    // the lock stays advisory either way).
                    if let Some(parent) = path.parent() {
                        let _ = sync_dir(parent);
                    }
                    return Ok(ShardLock { path, owned: true });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_holder(&path) {
                        Some(pid) if pid == std::process::id() => {
                            return Ok(ShardLock { path, owned: false });
                        }
                        Some(pid) if holder_alive(pid) => {
                            return Err(RegistryError::Locked { path, pid });
                        }
                        // Dead holder or unreadable stamp: reclaim and retry.
                        _ => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(RegistryError::io(&path, e)),
            }
        }
        // Every attempt lost a reclaim race to another process.
        Err(RegistryError::Locked { path, pid: 0 })
    }
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// The pid recorded in a lock file, if it can be read and parsed.
fn read_holder(path: &Path) -> Option<u32> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Whether the recorded holder is still alive.  Decided via procfs; where
/// procfs is unavailable the holder is assumed gone (see the module docs).
fn holder_alive(pid: u32) -> bool {
    if !Path::new("/proc/self").exists() {
        return false;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_lock(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wi-lock-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn acquire_is_reentrant_within_one_process() {
        let path = temp_lock("reentrant");
        let _ = std::fs::remove_file(&path);
        let first = ShardLock::acquire(path.clone()).unwrap();
        assert!(first.owned);
        let second = ShardLock::acquire(path.clone()).unwrap();
        assert!(!second.owned, "same-process re-acquire is borrowed");
        // Dropping the borrowed handle leaves the lock in place …
        drop(second);
        assert!(path.exists());
        // … dropping the owner releases it.
        drop(first);
        assert!(!path.exists());
    }

    #[test]
    fn lock_held_by_a_live_foreign_process_is_refused() {
        let path = temp_lock("foreign");
        // pid 1 is init and always alive where procfs exists; without
        // procfs the probe degrades to "assume gone", so skip there.
        if !Path::new("/proc/1").exists() {
            return;
        }
        std::fs::write(&path, "1\n").unwrap();
        match ShardLock::acquire(path.clone()) {
            Err(RegistryError::Locked { pid, .. }) => assert_eq!(pid, 1),
            other => panic!("expected Locked, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_reclaimed() {
        let path = temp_lock("stale");
        // A pid that cannot be alive: far beyond any default pid_max.
        std::fs::write(&path, "4294000000\n").unwrap();
        let lock = ShardLock::acquire(path.clone()).unwrap();
        assert!(lock.owned, "stale lock is taken over");
        drop(lock);
        assert!(!path.exists());
    }
}
