//! Snapshots and replication: moving a registry between machines.
//!
//! A **snapshot** is a named, self-describing copy of a registry's durable
//! state under `<root>/snapshots/<name>/`: the root manifest, every shard
//! manifest and segment, and every referenced object, plus a
//! `snapshot.json` checksum manifest written last (its presence is the
//! commit marker — a crash mid-snapshot leaves a directory without one,
//! which `restore` refuses).  Segments and objects are immutable once
//! sealed — appends only ever touch the *active* segment, and rewrites go
//! through rename — so the copies are hard links where the filesystem
//! allows, making a snapshot O(metadata), not O(data).  The active segment
//! of every shard is sealed (rotated away) first so no linked file can
//! receive post-snapshot appends through the shared inode; the fresh,
//! empty active segment the seal leaves behind is the one file still
//! append-mutable, so it alone is copied rather than linked.
//!
//! **Replication** ships a registry to another directory incrementally:
//! objects are content-addressed, so any digest already present at the
//! destination is skipped outright; segments are copied only when their
//! length or checksum differs; stale destination segments and objects
//! (removed at the source by compaction or rotation repair) are deleted.
//! Manifests are always rewritten, the root manifest last, so an
//! interrupted replication leaves the destination recoverable.
//!
//! **Restore** validates every file of a snapshot against its checksum
//! manifest, materializes them into a fresh root, and opens the result
//! through the normal recovery path — so a restored registry is, by
//! construction, byte-identical to the snapshot and semantically identical
//! to the source at seal time.

use super::log::{checksum, RegistryError};
use super::shard::{
    list_segments, root_manifest_path, segment_path, shard_dir, shard_manifest_path, sync_dir,
    write_atomic,
};
use super::PersistentRegistry;
use std::path::{Path, PathBuf};
use wi_induction::json::{parse_json, JsonValue};

/// The format marker of a snapshot manifest.
pub(crate) const SNAPSHOT_FORMAT: &str = "wrapper-induction/registry-snapshot";

/// What a [`PersistentRegistry::snapshot`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// The snapshot directory.
    pub path: PathBuf,
    /// Files captured (manifests + segments + objects).
    pub files: usize,
    /// Their summed byte length.
    pub bytes: u64,
}

/// What a [`PersistentRegistry::replicate_to`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Files written at the destination (differing or absent).
    pub files_copied: usize,
    /// Files already identical at the destination.
    pub files_skipped: usize,
    /// Bytes written at the destination.
    pub bytes_copied: u64,
    /// Stale destination files deleted (absent at the source).
    pub files_deleted: usize,
}

/// A snapshot name: one path component, no hidden files, no separators.
fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::Manifest {
            path: PathBuf::from(name),
            message: "snapshot names are one path component of [A-Za-z0-9._-], \
                      not starting with a dot, at most 64 bytes"
                .into(),
        })
    }
}

/// Links `src` to `dst` (when `link` is set and the filesystem supports
/// it), falling back to a synced copy.  Linking is only sound for files
/// that will never be written again, so callers pass `link: false` for the
/// one mutable file a registry has — the active segment.  Returns the
/// file's byte length.
fn link_or_copy(src: &Path, dst: &Path, link: bool) -> Result<u64, RegistryError> {
    match if link {
        std::fs::hard_link(src, dst)
    } else {
        Err(std::io::Error::other("copy requested"))
    } {
        Ok(()) => {}
        Err(_) => {
            std::fs::copy(src, dst).map_err(|e| RegistryError::io(dst, e))?;
            let file = std::fs::File::open(dst).map_err(|e| RegistryError::io(dst, e))?;
            file.sync_all().map_err(|e| RegistryError::io(dst, e))?;
        }
    }
    std::fs::metadata(dst)
        .map(|m| m.len())
        .map_err(|e| RegistryError::io(dst, e))
}

/// The relative paths of every durable registry file: root manifest, shard
/// manifests, segments, objects.  Lock files, temp files and the snapshots
/// directory itself are never part of a snapshot or replication.
fn durable_files(registry: &PersistentRegistry) -> Result<Vec<PathBuf>, RegistryError> {
    let mut files = Vec::new();
    for shard in 0..registry.shard_count() {
        let dir = PathBuf::from(format!("shard-{shard:03}"));
        files.push(dir.join("manifest.json"));
        for id in list_segments(registry.root(), shard)? {
            files.push(dir.join(format!("seg-{id:06}.log")));
        }
    }
    for digest in registry.objects().list()? {
        files.push(PathBuf::from("objects").join(format!("{digest:016x}.json")));
    }
    // The root manifest goes last: both snapshot verification and
    // replication want it written/checked after everything it governs.
    files.push(PathBuf::from("registry.json"));
    Ok(files)
}

impl PersistentRegistry {
    /// Captures the registry's durable state into
    /// `<root>/snapshots/<name>/`: seals every shard's active segment,
    /// hard-links segments + objects + manifests, and commits the snapshot
    /// by writing its checksum manifest (`snapshot.json`) last.
    pub fn snapshot(&mut self, name: &str) -> Result<SnapshotStats, RegistryError> {
        let started = std::time::Instant::now();
        self.check_poisoned()?;
        validate_name(name)?;
        let snap_root = self.root().join("snapshots").join(name);
        if snap_root.exists() {
            return Err(RegistryError::Manifest {
                path: snap_root,
                message: "snapshot already exists".into(),
            });
        }

        // Flush and seal: linked files must never see another append.  The
        // seal leaves each shard with a fresh *empty* active segment; that
        // one file stays append-mutable, so it is copied below instead of
        // hard-linked.
        self.sync()?;
        for shard in 0..self.shard_count() {
            self.seal_active(shard)?;
        }
        let active_rel: std::collections::BTreeSet<PathBuf> = (0..self.shard_count())
            .map(|shard| {
                PathBuf::from(format!("shard-{shard:03}"))
                    .join(format!("seg-{:06}.log", self.active[shard].id))
            })
            .collect();

        let files = durable_files(self)?;
        std::fs::create_dir_all(&snap_root).map_err(|e| RegistryError::io(&snap_root, e))?;
        sync_dir(&snap_root)?;
        let mut entries = Vec::new();
        let mut total_bytes = 0u64;
        for rel in &files {
            let src = self.root().join(rel);
            let dst = snap_root.join(rel);
            if let Some(parent) = dst.parent() {
                std::fs::create_dir_all(parent).map_err(|e| RegistryError::io(parent, e))?;
            }
            let bytes = link_or_copy(&src, &dst, !active_rel.contains(rel))?;
            let text = std::fs::read_to_string(&dst).map_err(|e| RegistryError::io(&dst, e))?;
            entries.push(JsonValue::Object(vec![
                (
                    "path".into(),
                    JsonValue::String(rel.to_string_lossy().into_owned()),
                ),
                ("bytes".into(), JsonValue::Number(bytes as f64)),
                (
                    "sum".into(),
                    JsonValue::String(format!("{:016x}", checksum(&text))),
                ),
            ]));
            total_bytes += bytes;
        }
        // Make every directory entry durable before the commit marker.
        for shard in 0..self.shard_count() {
            sync_dir(&snap_root.join(format!("shard-{shard:03}")))?;
        }
        let objects_dir = snap_root.join("objects");
        if objects_dir.exists() {
            sync_dir(&objects_dir)?;
        }

        let manifest = JsonValue::Object(vec![
            ("format".into(), JsonValue::String(SNAPSHOT_FORMAT.into())),
            (
                "version".into(),
                JsonValue::Number(f64::from(super::shard::REGISTRY_FORMAT_VERSION)),
            ),
            ("name".into(), JsonValue::String(name.into())),
            ("files".into(), JsonValue::Array(entries)),
        ]);
        let mut text = manifest.to_pretty();
        text.push('\n');
        write_atomic(&snap_root.join("snapshot.json"), &text)?;

        let stats = SnapshotStats {
            path: snap_root,
            files: files.len(),
            bytes: total_bytes,
        };
        wi_obs::record_span(
            "registry.snapshot",
            started,
            &[("files", stats.files as u64), ("bytes", stats.bytes)],
        );
        Ok(stats)
    }

    /// Ships the registry's durable state to another directory,
    /// incrementally: content-addressed objects already present are
    /// skipped, segments are copied only when they differ, and stale
    /// destination segments/objects are deleted.  The destination ends up
    /// openable by [`PersistentRegistry::recover`].
    pub fn replicate_to(&self, dest: &Path) -> Result<ReplicationStats, RegistryError> {
        self.check_poisoned()?;
        let mut stats = ReplicationStats {
            files_copied: 0,
            files_skipped: 0,
            bytes_copied: 0,
            files_deleted: 0,
        };
        std::fs::create_dir_all(dest).map_err(|e| RegistryError::io(dest, e))?;

        // Objects: absence is the only question — digests are content.
        let src_objects = self.objects().list()?;
        let dst_store = super::objects::ObjectStore::open(dest);
        let dst_objects = dst_store.list()?;
        if !src_objects.is_empty() {
            std::fs::create_dir_all(dst_store.dir())
                .map_err(|e| RegistryError::io(dst_store.dir(), e))?;
        }
        for &digest in &src_objects {
            let dst = dst_store.object_path(digest);
            if dst.exists() {
                stats.files_skipped += 1;
                continue;
            }
            let text = std::fs::read_to_string(self.objects().object_path(digest))
                .map_err(|e| RegistryError::io(self.objects().object_path(digest), e))?;
            write_atomic(&dst, &text)?;
            stats.files_copied += 1;
            stats.bytes_copied += text.len() as u64;
        }
        for &digest in &dst_objects {
            if src_objects.binary_search(&digest).is_err() {
                dst_store.remove(digest)?;
                stats.files_deleted += 1;
            }
        }

        // Segments: copy on length/checksum mismatch, delete stale ids.
        for shard in 0..self.shard_count() {
            let dst_dir = shard_dir(dest, shard);
            std::fs::create_dir_all(&dst_dir).map_err(|e| RegistryError::io(&dst_dir, e))?;
            let src_ids = list_segments(self.root(), shard)?;
            let dst_ids = list_segments(dest, shard)?;
            for &id in &src_ids {
                let src = segment_path(self.root(), shard, id);
                let dst = segment_path(dest, shard, id);
                let text = std::fs::read_to_string(&src).map_err(|e| RegistryError::io(&src, e))?;
                let identical = match std::fs::read_to_string(&dst) {
                    Ok(existing) => existing == text,
                    Err(_) => false,
                };
                if identical {
                    stats.files_skipped += 1;
                } else {
                    write_atomic(&dst, &text)?;
                    stats.files_copied += 1;
                    stats.bytes_copied += text.len() as u64;
                }
            }
            for &id in &dst_ids {
                if src_ids.binary_search(&id).is_err() {
                    let stale = segment_path(dest, shard, id);
                    std::fs::remove_file(&stale).map_err(|e| RegistryError::io(&stale, e))?;
                    sync_dir(&dst_dir)?;
                    stats.files_deleted += 1;
                }
            }
            let text = std::fs::read_to_string(shard_manifest_path(self.root(), shard))
                .map_err(|e| RegistryError::io(shard_manifest_path(self.root(), shard), e))?;
            write_atomic(&shard_manifest_path(dest, shard), &text)?;
            stats.files_copied += 1;
            stats.bytes_copied += text.len() as u64;
        }

        // Root manifest last: its presence marks the destination complete.
        let text = std::fs::read_to_string(root_manifest_path(self.root()))
            .map_err(|e| RegistryError::io(root_manifest_path(self.root()), e))?;
        write_atomic(&root_manifest_path(dest), &text)?;
        stats.files_copied += 1;
        stats.bytes_copied += text.len() as u64;
        Ok(stats)
    }

    /// Materializes a snapshot directory into a fresh registry root —
    /// verifying every file against the snapshot's checksum manifest —
    /// and opens the result through normal recovery.  Refuses a
    /// destination that already holds a registry.
    pub fn restore(snapshot: &Path, dest: &Path) -> Result<PersistentRegistry, RegistryError> {
        let manifest_path = snapshot.join("snapshot.json");
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| RegistryError::io(&manifest_path, e))?;
        let manifest = parse_json(&text).map_err(|e| RegistryError::Manifest {
            path: manifest_path.clone(),
            message: format!("malformed JSON: {e}"),
        })?;
        let bad = |message: String| RegistryError::Manifest {
            path: manifest_path.clone(),
            message,
        };
        if manifest.get("format").and_then(JsonValue::as_str) != Some(SNAPSHOT_FORMAT) {
            return Err(bad("not a snapshot manifest".into()));
        }
        match manifest.get("version").and_then(JsonValue::as_u32) {
            Some(super::shard::REGISTRY_FORMAT_VERSION) => {}
            other => return Err(bad(format!("unsupported version {other:?}"))),
        }
        let files = manifest
            .get("files")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing file list".into()))?;
        if root_manifest_path(dest).exists() {
            return Err(RegistryError::Manifest {
                path: root_manifest_path(dest),
                message: "restore destination already holds a registry".into(),
            });
        }
        std::fs::create_dir_all(dest).map_err(|e| RegistryError::io(dest, e))?;

        for entry in files {
            let rel = entry
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("file entry without path".into()))?;
            if rel.starts_with('/') || rel.split('/').any(|part| part == "..") {
                return Err(bad(format!("unsafe file path {rel:?}")));
            }
            let bytes = entry
                .get("bytes")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| bad(format!("file entry {rel:?} without byte length")))?;
            let sum = entry
                .get("sum")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad(format!("file entry {rel:?} without checksum")))?;
            let src = snapshot.join(rel);
            let content = std::fs::read_to_string(&src).map_err(|e| RegistryError::io(&src, e))?;
            if content.len() as u64 != u64::from(bytes)
                || format!("{:016x}", checksum(&content)) != sum
            {
                return Err(bad(format!(
                    "snapshot file {rel:?} fails verification (got {} bytes, sum {:016x})",
                    content.len(),
                    checksum(&content)
                )));
            }
            let dst = dest.join(rel);
            if let Some(parent) = dst.parent() {
                std::fs::create_dir_all(parent).map_err(|e| RegistryError::io(parent, e))?;
            }
            write_atomic(&dst, &content)?;
        }
        PersistentRegistry::recover(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_are_one_safe_path_component() {
        for ok in ["nightly", "v2", "2026-08-08_0", "a.b"] {
            assert!(validate_name(ok).is_ok(), "{ok}");
        }
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a b", "ü"] {
            assert!(validate_name(bad).is_err(), "{bad:?}");
        }
        let long = "x".repeat(65);
        assert!(validate_name(&long).is_err());
    }
}
