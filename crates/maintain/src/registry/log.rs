//! The on-disk record schema of a shard's append-only version log.
//!
//! A shard log is a JSON-lines file: one record per line, each line the
//! compact rendering (no whitespace, see `JsonValue::to_compact`) of
//!
//! ```json
//! {"sum":"<16 hex digits>","record":{...}}
//! ```
//!
//! where `sum` is the FxHash64 of the compact rendering of `record`.  The
//! trailing `\n` is the commit marker: a line without it was torn by a
//! crash mid-write and is never replayed, even if its bytes happen to parse.
//! The checksum catches the other corruption mode — bytes altered in place —
//! so recovery can stop at the *longest valid record prefix* and report
//! exactly what it dropped.
//!
//! Three record types exist (see [`LogRecord`]):
//!
//! * `revision` — a bundle revision entered service for a site: the initial
//!   install (cause `"installed"`) or a validated maintenance repair.  The
//!   bundle itself lives in the content-addressed object store (see
//!   `registry::objects`); the record carries its 16-hex FxHash64 content
//!   digest, so identical bundles across sites and compaction generations
//!   are stored once.  Decoding resolves the digest back to the full
//!   [`WrapperBundle`]; a missing or corrupt object invalidates the record
//!   exactly like a checksum mismatch would.
//! * `lkg` — the [`LastKnownGood`] verification state after a maintenance
//!   run, so a restarted service verifies the next snapshot against exactly
//!   the evidence the previous process had accumulated.
//! * `state` — the lifecycle position after a maintenance run: the
//!   [`WrapperState`] plus the consecutive-`TargetRemoved` failure streak
//!   that drives retirement.
//!
//! Revisions of one site must be strictly increasing along the log; a
//! record that violates this is treated as corruption (the valid prefix
//! ends before it).

use super::objects::ObjectStore;
use crate::lifecycle::WrapperState;
use crate::verify::{AnchorCarrier, LastKnownGood};
use std::hash::Hasher as _;
use std::path::PathBuf;
use wi_induction::json::{parse_json, JsonValue};
use wi_induction::WrapperBundle;
use wi_xpath::fx::FxHasher;

/// A typed failure of the persistent registry.
#[derive(Debug)]
pub enum RegistryError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A registry or shard manifest is missing, unreadable or inconsistent.
    Manifest {
        /// The manifest path.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
    /// A version-log record failed validation: torn line, checksum
    /// mismatch, malformed JSON, unknown schema, an embedded bundle that
    /// does not load, or a revision that does not follow its predecessor.
    /// Recovery truncates the log back to the last record before this one.
    Record {
        /// The shard whose log carries the record.
        shard: usize,
        /// 1-based line number inside the shard log.
        line: usize,
        /// What failed to validate.
        message: String,
    },
    /// An operation conflicts with the live registry state (installing an
    /// already-installed site, committing a non-monotonic revision, …).
    Conflict {
        /// The site the operation addressed.
        site: String,
        /// Why it was rejected.
        message: String,
    },
    /// A previous append failed partway, so the live map may be behind what
    /// reached the logs; writing on would risk committing duplicate
    /// revisions that a later recovery would discard as corruption.  Drop
    /// this instance and [`PersistentRegistry::recover`] a fresh one.
    ///
    /// [`PersistentRegistry::recover`]: super::PersistentRegistry::recover
    Poisoned,
    /// A shard's advisory lock file is held by another live process: two
    /// processes appending to one shard log would interleave records in a
    /// way recovery must treat as corruption, so the open is refused (see
    /// the `registry::lock` module docs; a lock whose holder is dead is
    /// reclaimed silently instead).
    Locked {
        /// The lock file that is held.
        path: PathBuf,
        /// The pid recorded in it (0 when the holder could not be read
        /// after repeated reclaim races).
        pid: u32,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "registry I/O error at {}: {source}", path.display())
            }
            RegistryError::Manifest { path, message } => {
                write!(f, "registry manifest {}: {message}", path.display())
            }
            RegistryError::Record {
                shard,
                line,
                message,
            } => {
                write!(f, "shard {shard} log line {line}: {message}")
            }
            RegistryError::Conflict { site, message } => {
                write!(f, "registry conflict on site {site:?}: {message}")
            }
            RegistryError::Poisoned => write!(
                f,
                "registry poisoned by an earlier failed append; recover a fresh instance"
            ),
            RegistryError::Locked { path, pid } => write!(
                f,
                "shard lock {} held by live process {pid}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl RegistryError {
    /// Convenience constructor for I/O failures.
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> RegistryError {
        RegistryError::Io {
            path: path.into(),
            source,
        }
    }
}

/// One committed line of a shard's version log.
///
/// Records are serialized to JSON lines immediately; the in-memory size
/// skew between `Revision` (full bundle) and the slimmer variants is
/// irrelevant to the log's access pattern.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// A bundle revision entered service for a site (install or repair).
    Revision {
        /// The site key.
        site: String,
        /// The day the revision was installed.
        day: i64,
        /// The bundle's revision number.
        revision: u32,
        /// `"installed"` for the initial induction, the repair provenance
        /// otherwise.
        cause: String,
        /// The full bundle at this revision.
        bundle: WrapperBundle,
    },
    /// The verifier's last-known-good state after a maintenance run.
    Lkg {
        /// The site key.
        site: String,
        /// The state to verify the next snapshot against.
        lkg: LastKnownGood,
    },
    /// The lifecycle position after a maintenance run.
    State {
        /// The site key.
        site: String,
        /// The last maintained day.
        day: i64,
        /// The wrapper state the run ended in.
        state: WrapperState,
        /// Consecutive failed `TargetRemoved` repairs (retirement countdown).
        target_gone_streak: u32,
    },
}

impl LogRecord {
    /// The site this record belongs to.
    pub fn site(&self) -> &str {
        match self {
            LogRecord::Revision { site, .. }
            | LogRecord::Lkg { site, .. }
            | LogRecord::State { site, .. } => site,
        }
    }
}

/// A borrowed [`LogRecord`]: the encoding paths (batch commit, compaction)
/// serialize records straight out of live registry state, and an owned
/// record would deep-clone every last-known-good state just to render and
/// drop it.  A revision carries the **already-stored** content digest of
/// its bundle — callers store the bundle first ([`ObjectStore::store`]),
/// then encode — so encoding a record can never reference an object that
/// is not yet durable.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordRef<'a> {
    /// See [`LogRecord::Revision`].
    Revision {
        site: &'a str,
        day: i64,
        revision: u32,
        cause: &'a str,
        bundle_digest: u64,
    },
    /// See [`LogRecord::Lkg`].
    Lkg {
        site: &'a str,
        lkg: &'a LastKnownGood,
    },
    /// See [`LogRecord::State`].
    State {
        site: &'a str,
        day: i64,
        state: WrapperState,
        target_gone_streak: u32,
    },
}

/// FxHash64 of a rendered record body — the per-line checksum, and the
/// content digest of the object store and the snapshot manifest.
pub(crate) fn checksum(body: &str) -> u64 {
    checksum_bytes(body.as_bytes())
}

/// [`checksum`] over raw bytes (snapshot manifests hash whole files).
pub(crate) fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    hasher.finish()
}

/// Parses a 16-hex-digit content digest (the serialized form: u64 digests
/// do not survive the JSON number path's f64 precision).
fn digest_from_hex(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

fn state_name(state: WrapperState) -> &'static str {
    match state {
        WrapperState::Monitoring => "monitoring",
        WrapperState::Degraded => "degraded",
        WrapperState::Retired => "retired",
    }
}

fn state_from_name(name: &str) -> Option<WrapperState> {
    match name {
        "monitoring" => Some(WrapperState::Monitoring),
        "degraded" => Some(WrapperState::Degraded),
        "retired" => Some(WrapperState::Retired),
        _ => None,
    }
}

fn strings_to_json<'a>(items: impl IntoIterator<Item = &'a String>) -> JsonValue {
    JsonValue::Array(
        items
            .into_iter()
            .map(|s| JsonValue::String(s.clone()))
            .collect(),
    )
}

fn lkg_to_json(lkg: &LastKnownGood) -> JsonValue {
    JsonValue::Object(vec![
        ("day".into(), JsonValue::Number(lkg.day as f64)),
        ("count".into(), JsonValue::Number(lkg.count as f64)),
        ("texts".into(), strings_to_json(&lkg.texts)),
        ("tags".into(), strings_to_json(&lkg.tags)),
        (
            "doc_elements".into(),
            JsonValue::Number(lkg.doc_elements as f64),
        ),
        ("rotates".into(), JsonValue::Bool(lkg.rotates)),
        (
            "stable_observations".into(),
            JsonValue::Number(f64::from(lkg.stable_observations)),
        ),
        (
            "attribute_values".into(),
            strings_to_json(lkg.attribute_values.iter()),
        ),
        (
            "anchor_carriers".into(),
            JsonValue::Array(
                lkg.anchor_carriers
                    .iter()
                    .map(|c| {
                        JsonValue::Object(vec![
                            ("attribute".into(), JsonValue::String(c.attribute.clone())),
                            ("value".into(), JsonValue::String(c.value.clone())),
                            ("count".into(), JsonValue::Number(c.count as f64)),
                            (
                                "stable_observations".into(),
                                JsonValue::Number(f64::from(c.stable_observations)),
                            ),
                            ("neighborhood".into(), strings_to_json(&c.neighborhood)),
                            (
                                "neighborhood_stable".into(),
                                JsonValue::Number(f64::from(c.neighborhood_stable)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn json_strings(value: Option<&JsonValue>, what: &str) -> Result<Vec<String>, String> {
    value
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing {what}"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("non-string entry in {what}"))
        })
        .collect()
}

fn json_i64(value: Option<&JsonValue>, what: &str) -> Result<i64, String> {
    let n = value
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing {what}"))?;
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        Ok(n as i64)
    } else {
        Err(format!("non-integral {what}"))
    }
}

fn json_usize(value: Option<&JsonValue>, what: &str) -> Result<usize, String> {
    let n = json_i64(value, what)?;
    usize::try_from(n).map_err(|_| format!("negative {what}"))
}

fn lkg_from_json(value: &JsonValue) -> Result<LastKnownGood, String> {
    let carriers = value
        .get("anchor_carriers")
        .and_then(JsonValue::as_array)
        .ok_or("missing anchor_carriers")?
        .iter()
        .map(|c| {
            Ok(AnchorCarrier {
                attribute: c
                    .get("attribute")
                    .and_then(JsonValue::as_str)
                    .ok_or("carrier without attribute")?
                    .to_string(),
                value: c
                    .get("value")
                    .and_then(JsonValue::as_str)
                    .ok_or("carrier without value")?
                    .to_string(),
                count: json_usize(c.get("count"), "carrier count")?,
                stable_observations: c
                    .get("stable_observations")
                    .and_then(JsonValue::as_u32)
                    .ok_or("carrier without stable_observations")?,
                neighborhood: json_strings(c.get("neighborhood"), "carrier neighborhood")?,
                neighborhood_stable: c
                    .get("neighborhood_stable")
                    .and_then(JsonValue::as_u32)
                    .ok_or("carrier without neighborhood_stable")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LastKnownGood {
        day: json_i64(value.get("day"), "lkg day")?,
        count: json_usize(value.get("count"), "lkg count")?,
        texts: json_strings(value.get("texts"), "lkg texts")?,
        tags: json_strings(value.get("tags"), "lkg tags")?,
        doc_elements: json_usize(value.get("doc_elements"), "lkg doc_elements")?,
        rotates: value
            .get("rotates")
            .and_then(JsonValue::as_bool)
            .ok_or("missing lkg rotates")?,
        stable_observations: value
            .get("stable_observations")
            .and_then(JsonValue::as_u32)
            .ok_or("missing lkg stable_observations")?,
        attribute_values: std::sync::Arc::new(
            json_strings(value.get("attribute_values"), "lkg attribute_values")?
                .into_iter()
                .collect(),
        ),
        anchor_carriers: carriers,
    })
}

fn record_to_json(record: RecordRef<'_>) -> JsonValue {
    match record {
        RecordRef::Revision {
            site,
            day,
            revision,
            cause,
            bundle_digest,
        } => JsonValue::Object(vec![
            ("type".into(), JsonValue::String("revision".into())),
            ("site".into(), JsonValue::String(site.to_string())),
            ("day".into(), JsonValue::Number(day as f64)),
            ("revision".into(), JsonValue::Number(f64::from(revision))),
            ("cause".into(), JsonValue::String(cause.to_string())),
            (
                "bundle_digest".into(),
                JsonValue::String(format!("{bundle_digest:016x}")),
            ),
        ]),
        RecordRef::Lkg { site, lkg } => JsonValue::Object(vec![
            ("type".into(), JsonValue::String("lkg".into())),
            ("site".into(), JsonValue::String(site.to_string())),
            ("lkg".into(), lkg_to_json(lkg)),
        ]),
        RecordRef::State {
            site,
            day,
            state,
            target_gone_streak,
        } => JsonValue::Object(vec![
            ("type".into(), JsonValue::String("state".into())),
            ("site".into(), JsonValue::String(site.to_string())),
            ("day".into(), JsonValue::Number(day as f64)),
            ("state".into(), JsonValue::String(state_name(state).into())),
            (
                "target_gone_streak".into(),
                JsonValue::Number(f64::from(target_gone_streak)),
            ),
        ]),
    }
}

fn record_from_json(value: &JsonValue, objects: &ObjectStore) -> Result<LogRecord, String> {
    let kind = value
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("record without type")?;
    let site = value
        .get("site")
        .and_then(JsonValue::as_str)
        .ok_or("record without site")?
        .to_string();
    match kind {
        "revision" => Ok(LogRecord::Revision {
            site,
            day: json_i64(value.get("day"), "revision day")?,
            revision: value
                .get("revision")
                .and_then(JsonValue::as_u32)
                .ok_or("revision record without revision number")?,
            cause: value
                .get("cause")
                .and_then(JsonValue::as_str)
                .ok_or("revision record without cause")?
                .to_string(),
            bundle: objects.load(
                value
                    .get("bundle_digest")
                    .and_then(JsonValue::as_str)
                    .and_then(digest_from_hex)
                    .ok_or("revision record without bundle_digest")?,
            )?,
        }),
        "lkg" => Ok(LogRecord::Lkg {
            site,
            lkg: lkg_from_json(value.get("lkg").ok_or("lkg record without lkg")?)?,
        }),
        "state" => Ok(LogRecord::State {
            site,
            day: json_i64(value.get("day"), "state day")?,
            state: value
                .get("state")
                .and_then(JsonValue::as_str)
                .and_then(state_from_name)
                .ok_or("state record with unknown state")?,
            target_gone_streak: value
                .get("target_gone_streak")
                .and_then(JsonValue::as_u32)
                .ok_or("state record without target_gone_streak")?,
        }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

/// Renders a record as one committed log line, trailing `\n` included.  A
/// revision's bundle is stored into `objects` first (idempotent), so the
/// returned line only ever references a durable object.
pub fn encode_record(record: &LogRecord, objects: &ObjectStore) -> Result<String, RegistryError> {
    Ok(match record {
        LogRecord::Revision {
            site,
            day,
            revision,
            cause,
            bundle,
        } => encode_record_ref(RecordRef::Revision {
            site,
            day: *day,
            revision: *revision,
            cause,
            bundle_digest: objects.store(bundle)?,
        }),
        LogRecord::Lkg { site, lkg } => encode_record_ref(RecordRef::Lkg { site, lkg }),
        LogRecord::State {
            site,
            day,
            state,
            target_gone_streak,
        } => encode_record_ref(RecordRef::State {
            site,
            day: *day,
            state: *state,
            target_gone_streak: *target_gone_streak,
        }),
    })
}

/// [`encode_record`] over a borrowed record: the commit and compaction
/// paths render straight out of live registry state without cloning the
/// embedded bundle.
pub(crate) fn encode_record_ref(record: RecordRef<'_>) -> String {
    let body = record_to_json(record).to_compact();
    format!(
        "{{\"sum\":\"{:016x}\",\"record\":{body}}}\n",
        checksum(&body)
    )
}

/// Splits and checksums the canonical line envelope, returning the record
/// body.  Lines are only ever produced by [`encode_record`], so the
/// envelope shape is exact, not merely JSON-equivalent.
fn checked_body(line: &str) -> Result<&str, String> {
    let rest = line
        .strip_prefix("{\"sum\":\"")
        .ok_or("line does not start with the checksum envelope")?;
    let (sum, rest) = rest
        .split_at_checked(16)
        .ok_or("truncated checksum envelope")?;
    let body = rest
        .strip_prefix("\",\"record\":")
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("malformed checksum envelope")?;
    let expected = format!("{:016x}", checksum(body));
    if sum != expected {
        return Err(format!(
            "checksum mismatch (stored {sum}, computed {expected})"
        ));
    }
    Ok(body)
}

/// Decodes one log line (without its trailing `\n`): verifies the envelope
/// checksum over the *raw* record bytes, and only then pays for parsing
/// the record — including resolving a revision's bundle digest through the
/// object store, which must load and verify.  The error is a bare message;
/// the caller adds shard/line coordinates.
pub fn decode_line(line: &str, objects: &ObjectStore) -> Result<LogRecord, String> {
    let body = checked_body(line)?;
    let record = parse_json(body).map_err(|e| format!("malformed JSON: {e}"))?;
    record_from_json(&record, objects)
}

/// The cheap metadata of one log line: what compaction's liveness scan
/// needs, without resolving (or even touching) the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RecordMeta {
    /// The site the record belongs to.
    pub site: String,
    /// Which record type the line holds.
    pub kind: RecordKind,
    /// The revision number (revision records only).
    pub revision: Option<u32>,
    /// The bundle content digest (revision records only).
    pub bundle_digest: Option<u64>,
}

/// The record type tag of a [`RecordMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordKind {
    Revision,
    Lkg,
    State,
}

/// Decodes one line down to its [`RecordMeta`]: envelope checksum + JSON
/// parse, but no object-store resolution — compaction scans whole shards
/// with this, then copies live lines byte-identically.
pub(crate) fn decode_line_meta(line: &str) -> Result<RecordMeta, String> {
    let body = checked_body(line)?;
    let value = parse_json(body).map_err(|e| format!("malformed JSON: {e}"))?;
    let site = value
        .get("site")
        .and_then(JsonValue::as_str)
        .ok_or("record without site")?
        .to_string();
    match value.get("type").and_then(JsonValue::as_str) {
        Some("revision") => Ok(RecordMeta {
            site,
            kind: RecordKind::Revision,
            revision: Some(
                value
                    .get("revision")
                    .and_then(JsonValue::as_u32)
                    .ok_or("revision record without revision number")?,
            ),
            bundle_digest: Some(
                value
                    .get("bundle_digest")
                    .and_then(JsonValue::as_str)
                    .and_then(digest_from_hex)
                    .ok_or("revision record without bundle_digest")?,
            ),
        }),
        Some("lkg") => Ok(RecordMeta {
            site,
            kind: RecordKind::Lkg,
            revision: None,
            bundle_digest: None,
        }),
        Some("state") => Ok(RecordMeta {
            site,
            kind: RecordKind::State,
            revision: None,
            bundle_digest: None,
        }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_scoring::ScoringParams;

    fn temp_store(tag: &str) -> (std::path::PathBuf, ObjectStore) {
        let root = std::env::temp_dir().join(format!("wi-log-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ObjectStore::open(&root);
        (root, store)
    }

    fn bundle() -> WrapperBundle {
        let doc = wi_dom::Document::parse(
            r#"<body><p class="x">a</p><p class="x">b</p><div>c</div></body>"#,
        )
        .unwrap();
        let targets = doc.elements_by_class("x");
        let wrapper = wi_induction::WrapperInducer::default()
            .try_induce_best(&doc, &targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label("site-a")
    }

    #[test]
    fn records_round_trip_byte_identically() {
        let b = bundle();
        let lkg = LastKnownGood::capture_for(
            &b,
            &wi_dom::Document::parse("<body><p>x</p></body>").unwrap(),
            3,
            &[],
        );
        let records = [
            LogRecord::Revision {
                site: "site-a".into(),
                day: 40,
                revision: 2,
                cause: "re-anchored".into(),
                bundle: b.clone(),
            },
            LogRecord::Lkg {
                site: "site-a".into(),
                lkg,
            },
            LogRecord::State {
                site: "site-a".into(),
                day: 40,
                state: WrapperState::Degraded,
                target_gone_streak: 1,
            },
        ];
        let (root, store) = temp_store("roundtrip");
        for record in &records {
            let line = encode_record(record, &store).unwrap();
            assert!(line.ends_with('\n'));
            let trimmed = line.trim_end_matches('\n');
            let decoded = decode_line(trimmed, &store).unwrap();
            // Round trip is byte-identical (the equality proxy for every
            // field, including the bundle resolved back through the object
            // store and the f64 scores).
            assert_eq!(encode_record(&decoded, &store).unwrap(), line);
            assert_eq!(decoded.site(), "site-a");
            // The cheap meta decode agrees on identity fields.
            let meta = decode_line_meta(trimmed).unwrap();
            assert_eq!(meta.site, "site-a");
            match record {
                LogRecord::Revision { revision, .. } => {
                    assert_eq!(meta.kind, RecordKind::Revision);
                    assert_eq!(meta.revision, Some(*revision));
                    assert!(store.contains(meta.bundle_digest.unwrap()));
                }
                LogRecord::Lkg { .. } => assert_eq!(meta.kind, RecordKind::Lkg),
                LogRecord::State { .. } => assert_eq!(meta.kind, RecordKind::State),
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_harmless() {
        let (root, store) = temp_store("corrupt");
        let line = encode_record(
            &LogRecord::State {
                site: "s".into(),
                day: 7,
                state: WrapperState::Monitoring,
                target_gone_streak: 0,
            },
            &store,
        )
        .unwrap();
        let trimmed = line.trim_end_matches('\n');
        for i in 0..trimmed.len() {
            let mut bytes = trimmed.as_bytes().to_vec();
            bytes[i] ^= 0x04;
            let Ok(corrupted) = String::from_utf8(bytes) else {
                continue; // invalid UTF-8 is rejected before decode_line
            };
            match decode_line(&corrupted, &store) {
                Err(_) => {}
                Ok(decoded) => {
                    // A flip may survive only by rendering an equivalent
                    // record (e.g. flipping a byte back is impossible, but a
                    // semantically identical number form could slip through).
                    assert_eq!(
                        encode_record(&decoded, &store).unwrap(),
                        line,
                        "byte {i} corrupted the record silently"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lkg_serialization_is_exact() {
        let b = bundle();
        let doc = wi_dom::Document::parse(
            r#"<body><div class="blk"><p class="x">a</p><p class="x">b</p></div></body>"#,
        )
        .unwrap();
        let targets = doc.elements_by_class("x");
        let first = LastKnownGood::capture_for(&b, &doc, 0, &targets);
        let advanced =
            LastKnownGood::advance(&first, LastKnownGood::capture_for(&b, &doc, 20, &targets));
        let (root, store) = temp_store("lkg");
        let line = encode_record(
            &LogRecord::Lkg {
                site: "s".into(),
                lkg: advanced.clone(),
            },
            &store,
        )
        .unwrap();
        let LogRecord::Lkg { lkg, .. } = decode_line(line.trim_end_matches('\n'), &store).unwrap()
        else {
            panic!("wrong record type");
        };
        assert_eq!(lkg, advanced);
        let _ = std::fs::remove_dir_all(&root);
    }
}
