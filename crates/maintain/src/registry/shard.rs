//! Shard layout and recovery: the on-disk anatomy of a persistent registry.
//!
//! ```text
//! <root>/
//!   registry.json        root manifest: format marker + shard count
//!   objects/
//!     <16 hex>.json      content-addressed bundle bodies (see `objects`)
//!   shard-000/
//!     manifest.json      shard manifest: index + compaction generation
//!     seg-000000.log     numbered, size-bounded record segments
//!     seg-000001.log     … (see `registry::log` for the record schema)
//!   shard-001/ …
//!   snapshots/
//!     <name>/            hard-linked snapshots (see `registry::snapshot`)
//! ```
//!
//! Sites are partitioned by FxHash of the site key modulo the shard count
//! ([`shard_of`]), so one site's whole history lives in exactly one shard and
//! shards can be recovered, compacted and audited independently.  Within a
//! shard the log is a sequence of **segments**: appends go to the
//! highest-numbered segment and roll to a fresh one at a byte threshold, so
//! compaction can rewrite cold segments without touching the hot tail.
//!
//! **Recovery** reads a shard's segments in numeric order and replays the
//! longest prefix of valid records: each line must be `\n`-terminated (the
//! commit marker), checksum-clean, schema-valid, resolvable against the
//! object store, and revision-monotonic per site.  The first violation ends
//! the prefix; the offending segment is truncated back to it and every later
//! segment is dropped, so the next append continues from known-good state,
//! and the dropped tail is reported as a typed [`RegistryError`] — never a
//! panic.
//!
//! **Durability**: every rename and file creation in this directory tree is
//! followed by an fsync of the parent directory ([`sync_dir`]), so a crash
//! after a committed rename cannot resurrect the old directory entry (the
//! rule is machine-checked as wi-lint R9).

use super::log::{decode_line, LogRecord, RegistryError};
use super::objects::ObjectStore;
use std::collections::HashMap;
use std::hash::Hasher as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use wi_induction::json::{parse_json, JsonValue};
use wi_xpath::fx::FxHasher;

/// The format marker of the root manifest.
pub(crate) const REGISTRY_FORMAT: &str = "wrapper-induction/registry";
/// The format marker of a shard manifest.
pub(crate) const SHARD_FORMAT: &str = "wrapper-induction/registry-shard";
/// The registry layout version this build reads and writes.  Version 1 was
/// the single `log.jsonl`-per-shard layout with bundles embedded in revision
/// records; version 2 introduced segments and the content-addressed object
/// store.
pub(crate) const REGISTRY_FORMAT_VERSION: u32 = 2;

/// The shard a site key lives in: FxHash64 of the key, finalized and taken
/// modulo `shards`.
///
/// FxHash is a bare multiply-xor: for short keys that differ only in a few
/// byte positions, the difference never reaches the low bits, so a naive
/// `hash % shards` collapses whole key families onto one shard.  A full
/// avalanche finalizer (murmur3's fmix64) spreads every input bit across
/// the word first; the partition is part of the on-disk format, so this
/// function must never change.
pub fn shard_of(site: &str, shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    hasher.write(site.as_bytes());
    let mut hash = hasher.finish();
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    (hash % shards.max(1) as u64) as usize
}

/// Directory of one shard under the registry root.
pub(crate) fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Path of one numbered segment of a shard's version log.
pub(crate) fn segment_path(root: &Path, shard: usize, id: u64) -> PathBuf {
    shard_dir(root, shard).join(format!("seg-{id:06}.log"))
}

/// Parses a segment file name back to its id (`None` for foreign files).
pub(crate) fn segment_id(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The segment ids present in a shard directory, ascending.  A missing
/// shard directory is an empty shard.
pub(crate) fn list_segments(root: &Path, shard: usize) -> Result<Vec<u64>, RegistryError> {
    let dir = shard_dir(root, shard);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(RegistryError::io(&dir, e)),
    };
    let mut ids = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| RegistryError::io(&dir, e))?;
        if let Some(id) = segment_id(&entry.file_name().to_string_lossy()) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Path of a shard's manifest.
pub(crate) fn shard_manifest_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("manifest.json")
}

/// Path of a shard's advisory lock file (see the `lock` module).
pub(crate) fn lock_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("lock")
}

/// Path of the root manifest.
pub(crate) fn root_manifest_path(root: &Path) -> PathBuf {
    root.join("registry.json")
}

/// Fsyncs a directory, making its entries (renames, creations, removals)
/// durable.  A rename that is fsynced only at the file level can still be
/// lost when the crash takes the directory block with it; every
/// rename/create site in `registry/` therefore pairs with a `sync_dir` of
/// the parent (wi-lint R9 enforces the pairing).
pub(crate) fn sync_dir(dir: &Path) -> Result<(), RegistryError> {
    let handle = std::fs::File::open(dir).map_err(|e| RegistryError::io(dir, e))?;
    handle.sync_all().map_err(|e| RegistryError::io(dir, e))
}

/// Writes `text` to `path` atomically: a sibling temp file is written in
/// full and fsynced, then renamed over the target, then the parent
/// directory entry is fsynced — so a crash leaves either the old or the new
/// content, never a torn mix, and the committed rename survives power loss.
pub(crate) fn write_atomic(path: &Path, text: &str) -> Result<(), RegistryError> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| RegistryError::io(&tmp, e))?;
    file.write_all(text.as_bytes())
        .map_err(|e| RegistryError::io(&tmp, e))?;
    file.sync_all().map_err(|e| RegistryError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| RegistryError::io(path, e))?;
    match path.parent() {
        Some(parent) => sync_dir(parent),
        None => Ok(()),
    }
}

/// Creates a fresh, empty segment and makes its directory entry durable.
/// Rotation calls this *before* switching appends over, so a crash between
/// the two leaves only a harmless empty segment behind.
pub(crate) fn create_segment(root: &Path, shard: usize, id: u64) -> Result<(), RegistryError> {
    let path = segment_path(root, shard, id);
    let file = std::fs::File::create(&path).map_err(|e| RegistryError::io(&path, e))?;
    file.sync_all().map_err(|e| RegistryError::io(&path, e))?;
    drop(file);
    sync_dir(&shard_dir(root, shard))
}

pub(crate) fn write_root_manifest(root: &Path, shards: usize) -> Result<(), RegistryError> {
    let manifest = JsonValue::Object(vec![
        ("format".into(), JsonValue::String(REGISTRY_FORMAT.into())),
        (
            "version".into(),
            JsonValue::Number(f64::from(REGISTRY_FORMAT_VERSION)),
        ),
        ("shards".into(), JsonValue::Number(shards as f64)),
    ]);
    let mut text = manifest.to_pretty();
    text.push('\n');
    write_atomic(&root_manifest_path(root), &text)
}

/// Reads and validates the root manifest; returns the shard count.
pub(crate) fn read_root_manifest(root: &Path) -> Result<usize, RegistryError> {
    let path = root_manifest_path(root);
    let text = std::fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
    let manifest = parse_json(&text).map_err(|e| RegistryError::Manifest {
        path: path.clone(),
        message: format!("malformed JSON: {e}"),
    })?;
    let bad = |message: String| RegistryError::Manifest {
        path: path.clone(),
        message,
    };
    match manifest.get("format").and_then(JsonValue::as_str) {
        Some(REGISTRY_FORMAT) => {}
        other => return Err(bad(format!("not a registry manifest (format {other:?})"))),
    }
    match manifest.get("version").and_then(JsonValue::as_u32) {
        Some(REGISTRY_FORMAT_VERSION) => {}
        other => return Err(bad(format!("unsupported version {other:?}"))),
    }
    let shards = manifest
        .get("shards")
        .and_then(JsonValue::as_u32)
        .ok_or_else(|| bad("missing shard count".into()))?;
    if shards == 0 {
        return Err(bad("shard count must be positive".into()));
    }
    Ok(shards as usize)
}

pub(crate) fn write_shard_manifest(
    root: &Path,
    shard: usize,
    compactions: u32,
) -> Result<(), RegistryError> {
    let manifest = JsonValue::Object(vec![
        ("format".into(), JsonValue::String(SHARD_FORMAT.into())),
        (
            "version".into(),
            JsonValue::Number(f64::from(REGISTRY_FORMAT_VERSION)),
        ),
        ("shard".into(), JsonValue::Number(shard as f64)),
        (
            "compactions".into(),
            JsonValue::Number(f64::from(compactions)),
        ),
    ]);
    let mut text = manifest.to_pretty();
    text.push('\n');
    write_atomic(&shard_manifest_path(root, shard), &text)
}

/// Reads and validates a shard manifest; returns its compaction generation.
pub(crate) fn read_shard_manifest(root: &Path, shard: usize) -> Result<u32, RegistryError> {
    let path = shard_manifest_path(root, shard);
    let text = std::fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
    let manifest = parse_json(&text).map_err(|e| RegistryError::Manifest {
        path: path.clone(),
        message: format!("malformed JSON: {e}"),
    })?;
    if manifest.get("format").and_then(JsonValue::as_str) != Some(SHARD_FORMAT) {
        return Err(RegistryError::Manifest {
            path,
            message: "not a shard manifest".into(),
        });
    }
    match manifest.get("version").and_then(JsonValue::as_u32) {
        Some(REGISTRY_FORMAT_VERSION) => {}
        other => {
            return Err(RegistryError::Manifest {
                path,
                message: format!("unsupported version {other:?}"),
            })
        }
    }
    if manifest.get("shard").and_then(JsonValue::as_u32) != Some(shard as u32) {
        return Err(RegistryError::Manifest {
            path,
            message: "shard index does not match its directory".into(),
        });
    }
    Ok(manifest
        .get("compactions")
        .and_then(JsonValue::as_u32)
        .unwrap_or(0))
}

/// Appends pre-encoded record lines to a shard's **active segment**.  With
/// `sync` set ([`Durability::Always`]) the file is fsynced, so the records
/// survive an OS crash or power loss once this returns (the torn-tail
/// recovery covers a crash *during* the write); without it
/// ([`Durability::Batch`]) the bytes only reach the OS page cache — an
/// application crash loses nothing, an OS crash loses at most the un-synced
/// suffix, and recovery still restores the longest valid prefix.
///
/// The segment must already exist ([`create_segment`] made its directory
/// entry durable); appends never create files, so a missing segment is an
/// invariant break, not a lazy-initialisation case.
///
/// [`Durability::Always`]: super::Durability::Always
/// [`Durability::Batch`]: super::Durability::Batch
pub(crate) fn append_lines(
    root: &Path,
    shard: usize,
    segment: u64,
    lines: &str,
    sync: bool,
) -> Result<(), RegistryError> {
    if lines.is_empty() {
        return Ok(());
    }
    let obs = crate::telemetry::registry_metrics();
    let append_started = std::time::Instant::now();
    let path = segment_path(root, shard, segment);
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| RegistryError::io(&path, e))?;
    file.write_all(lines.as_bytes())
        .map_err(|e| RegistryError::io(&path, e))?;
    if sync {
        let sync_started = std::time::Instant::now();
        file.sync_data().map_err(|e| RegistryError::io(&path, e))?;
        obs.fsync_latency_us.observe_us(sync_started.elapsed());
    }
    obs.append_latency_us.observe_us(append_started.elapsed());
    Ok(())
}

/// Fsyncs every segment of a shard (no-op for an empty shard): the
/// batch-durability flush point.
pub(crate) fn sync_segments(root: &Path, shard: usize) -> Result<(), RegistryError> {
    for id in list_segments(root, shard)? {
        let path = segment_path(root, shard, id);
        let file = match std::fs::OpenOptions::new().write(true).open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(RegistryError::io(&path, e)),
        };
        let sync_started = std::time::Instant::now();
        file.sync_data().map_err(|e| RegistryError::io(&path, e))?;
        crate::telemetry::registry_metrics()
            .fsync_latency_us
            .observe_us(sync_started.elapsed());
    }
    Ok(())
}

/// What recovery found in one shard's segments.
pub(crate) struct RecoveredShard {
    /// The longest valid record prefix, in log order across segments.
    pub records: Vec<LogRecord>,
    /// Byte length of that prefix (summed over segments).
    pub valid_bytes: u64,
    /// Bytes dropped behind the prefix (0 for a clean shard), including
    /// every byte of segments behind the first invalid record.
    pub dropped_bytes: u64,
    /// Why the prefix ended, when it ended before the end of the shard.
    pub error: Option<RegistryError>,
    /// The highest surviving segment id — where the next append goes.
    pub active_segment: u64,
    /// Byte length of that segment (the rotation threshold accumulates
    /// from here).
    pub active_bytes: u64,
}

/// Replays a shard's segments in numeric order: decodes the longest valid
/// record prefix and reports a torn or corrupt tail as a typed error.  With
/// `repair` set the offending segment is truncated back to its valid prefix
/// and every later segment is deleted, so subsequent appends commit
/// cleanly; without it the segments are left byte-for-byte untouched (the
/// strict `open` path inspects without destroying forensic evidence).  A
/// shard with no segments at all is empty (a crash can land between
/// `create_dir_all` and the first segment creation); under `repair` its
/// initial segment is re-created so appends have somewhere to land.
pub(crate) fn recover_shard(
    root: &Path,
    shard: usize,
    repair: bool,
    objects: &ObjectStore,
) -> Result<RecoveredShard, RegistryError> {
    let mut ids = list_segments(root, shard)?;
    if ids.is_empty() {
        if repair {
            create_segment(root, shard, 0)?;
        }
        return Ok(RecoveredShard {
            records: Vec::new(),
            valid_bytes: 0,
            dropped_bytes: 0,
            error: None,
            active_segment: 0,
            active_bytes: 0,
        });
    }

    let mut records = Vec::new();
    let mut last_revision: HashMap<String, u32> = HashMap::new();
    let mut valid_total = 0u64;
    let mut dropped_total = 0u64;
    let mut line_no = 0usize;
    let mut error = None;
    // Set when a segment's prefix ends early: (index into `ids`, valid
    // bytes inside that segment).
    let mut broken: Option<(usize, u64)> = None;

    'segments: for (k, &id) in ids.iter().enumerate() {
        let path = segment_path(root, shard, id);
        let bytes = std::fs::read(&path).map_err(|e| RegistryError::io(&path, e))?;
        let mut seg_valid = 0usize;
        let mut rest: &[u8] = &bytes;
        while !rest.is_empty() {
            line_no += 1;
            let Some(newline) = rest.iter().position(|&b| b == b'\n') else {
                // No commit marker: the final record was torn mid-write.
                error = Some(RegistryError::Record {
                    shard,
                    line: line_no,
                    message: format!("torn record ({} bytes without commit marker)", rest.len()),
                });
                broken = Some((k, seg_valid as u64));
                dropped_total += (bytes.len() - seg_valid) as u64;
                break 'segments;
            };
            let line = &rest[..newline];
            let decoded = std::str::from_utf8(line)
                .map_err(|_| "invalid UTF-8".to_string())
                .and_then(|text| decode_line(text, objects));
            let record = match decoded {
                Ok(record) => record,
                Err(message) => {
                    error = Some(RegistryError::Record {
                        shard,
                        line: line_no,
                        message,
                    });
                    broken = Some((k, seg_valid as u64));
                    dropped_total += (bytes.len() - seg_valid) as u64;
                    break 'segments;
                }
            };
            if let LogRecord::Revision { site, revision, .. } = &record {
                if let Some(&last) = last_revision.get(site.as_str()) {
                    if *revision <= last {
                        error = Some(RegistryError::Record {
                            shard,
                            line: line_no,
                            message: format!(
                                "revision {revision} for site {site:?} does not follow {last}"
                            ),
                        });
                        broken = Some((k, seg_valid as u64));
                        dropped_total += (bytes.len() - seg_valid) as u64;
                        break 'segments;
                    }
                }
                last_revision.insert(site.clone(), *revision);
            }
            records.push(record);
            seg_valid += newline + 1;
            rest = &rest[newline + 1..];
        }
        valid_total += seg_valid as u64;
    }

    let mut active_index = ids.len() - 1;
    let active_bytes;
    if let Some((k, seg_valid)) = broken {
        valid_total += seg_valid;
        // Everything behind the first invalid record is unreachable by
        // replay: count the later segments into the dropped tail.
        for &id in &ids[k + 1..] {
            let path = segment_path(root, shard, id);
            dropped_total += std::fs::metadata(&path)
                .map(|m| m.len())
                .map_err(|e| RegistryError::io(&path, e))?;
        }
        active_index = k;
        active_bytes = seg_valid;
        if repair {
            let path = segment_path(root, shard, ids[k]);
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| RegistryError::io(&path, e))?;
            file.set_len(seg_valid)
                .map_err(|e| RegistryError::io(&path, e))?;
            file.sync_all().map_err(|e| RegistryError::io(&path, e))?;
            for &id in &ids[k + 1..] {
                let path = segment_path(root, shard, id);
                std::fs::remove_file(&path).map_err(|e| RegistryError::io(&path, e))?;
            }
            sync_dir(&shard_dir(root, shard))?;
            ids.truncate(k + 1);
        }
    } else {
        let path = segment_path(root, shard, ids[active_index]);
        active_bytes = std::fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| RegistryError::io(&path, e))?;
    }

    if dropped_total > 0 {
        crate::telemetry::registry_metrics()
            .recovery_dropped_bytes
            .add(dropped_total);
    }
    Ok(RecoveredShard {
        records,
        valid_bytes: valid_total,
        dropped_bytes: dropped_total,
        error,
        active_segment: ids[active_index.min(ids.len() - 1)],
        active_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_in_range() {
        for shards in [1usize, 4, 16] {
            for site in ["", "a", "movies-0017", "hotels-0101"] {
                let s = shard_of(site, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(site, shards), "stable");
            }
        }
        // The partition actually spreads keys (not all in one shard).
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("site-{i}"), 8)).collect();
        assert!(hits.len() > 4, "degenerate partition: {hits:?}");
    }

    #[test]
    fn manifests_round_trip_and_reject_foreign_files() {
        let root = std::env::temp_dir().join(format!("wi-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(shard_dir(&root, 0)).unwrap();
        write_root_manifest(&root, 8).unwrap();
        assert_eq!(read_root_manifest(&root).unwrap(), 8);
        write_shard_manifest(&root, 0, 3).unwrap();
        assert_eq!(read_shard_manifest(&root, 0).unwrap(), 3);

        std::fs::write(root_manifest_path(&root), "{\"format\": \"other\"}").unwrap();
        assert!(matches!(
            read_root_manifest(&root),
            Err(RegistryError::Manifest { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn segment_names_parse_and_list_in_order() {
        assert_eq!(segment_id("seg-000000.log"), Some(0));
        assert_eq!(segment_id("seg-000142.log"), Some(142));
        assert_eq!(segment_id("seg-9999999.log"), Some(9_999_999));
        for foreign in [
            "seg-.log",
            "seg-12a.log",
            "manifest.json",
            "lock",
            "seg-000001.tmp",
            "log.jsonl",
        ] {
            assert_eq!(segment_id(foreign), None, "{foreign}");
        }

        let root = std::env::temp_dir().join(format!("wi-seglist-test-{}", std::process::id()));
        std::fs::create_dir_all(shard_dir(&root, 0)).unwrap();
        for id in [3u64, 0, 11] {
            create_segment(&root, 0, id).unwrap();
        }
        std::fs::write(shard_dir(&root, 0).join("manifest.json"), "{}").unwrap();
        assert_eq!(list_segments(&root, 0).unwrap(), vec![0, 3, 11]);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
