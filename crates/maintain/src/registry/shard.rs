//! Shard layout and recovery: the on-disk anatomy of a persistent registry.
//!
//! ```text
//! <root>/
//!   registry.json        root manifest: format marker + shard count
//!   shard-000/
//!     manifest.json      shard manifest: index + compaction generation
//!     log.jsonl          append-only version log (see `registry::log`)
//!   shard-001/ …
//! ```
//!
//! Sites are partitioned by FxHash of the site key modulo the shard count
//! ([`shard_of`]), so one site's whole history lives in exactly one log and
//! shards can be recovered, compacted and audited independently.
//!
//! **Recovery** reads a shard log front to back and replays the longest
//! prefix of valid records: each line must be `\n`-terminated (the commit
//! marker), checksum-clean, schema-valid, and revision-monotonic per site.
//! The first violation ends the prefix; the file is truncated back to it so
//! the next append continues from known-good state, and the dropped tail is
//! reported as a typed [`RegistryError`] — never a panic.

use super::log::{decode_line, LogRecord, RegistryError};
use std::collections::HashMap;
use std::hash::Hasher as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use wi_induction::json::{parse_json, JsonValue};
use wi_xpath::fx::FxHasher;

/// The format marker of the root manifest.
pub(crate) const REGISTRY_FORMAT: &str = "wrapper-induction/registry";
/// The format marker of a shard manifest.
pub(crate) const SHARD_FORMAT: &str = "wrapper-induction/registry-shard";
/// The registry layout version this build reads and writes.
pub(crate) const REGISTRY_FORMAT_VERSION: u32 = 1;

/// The shard a site key lives in: FxHash64 of the key, finalized and taken
/// modulo `shards`.
///
/// FxHash is a bare multiply-xor: for short keys that differ only in a few
/// byte positions, the difference never reaches the low bits, so a naive
/// `hash % shards` collapses whole key families onto one shard.  A full
/// avalanche finalizer (murmur3's fmix64) spreads every input bit across
/// the word first; the partition is part of the on-disk format, so this
/// function must never change for version 1 registries.
pub fn shard_of(site: &str, shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    hasher.write(site.as_bytes());
    let mut hash = hasher.finish();
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    (hash % shards.max(1) as u64) as usize
}

/// Directory of one shard under the registry root.
pub(crate) fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Path of a shard's append-only version log.
pub(crate) fn log_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("log.jsonl")
}

/// Path of a shard's manifest.
pub(crate) fn shard_manifest_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("manifest.json")
}

/// Path of a shard's advisory lock file (see the `lock` module).
pub(crate) fn lock_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("lock")
}

/// Path of the root manifest.
pub(crate) fn root_manifest_path(root: &Path) -> PathBuf {
    root.join("registry.json")
}

/// Writes `text` to `path` atomically: a sibling temp file is written in
/// full and fsynced, then renamed over the target, so a crash leaves either
/// the old or the new content, never a torn mix.  (Directory entries are
/// not fsynced; see the ROADMAP's durability follow-up.)
pub(crate) fn write_atomic(path: &Path, text: &str) -> Result<(), RegistryError> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| RegistryError::io(&tmp, e))?;
    file.write_all(text.as_bytes())
        .map_err(|e| RegistryError::io(&tmp, e))?;
    file.sync_all().map_err(|e| RegistryError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| RegistryError::io(path, e))
}

pub(crate) fn write_root_manifest(root: &Path, shards: usize) -> Result<(), RegistryError> {
    let manifest = JsonValue::Object(vec![
        ("format".into(), JsonValue::String(REGISTRY_FORMAT.into())),
        (
            "version".into(),
            JsonValue::Number(f64::from(REGISTRY_FORMAT_VERSION)),
        ),
        ("shards".into(), JsonValue::Number(shards as f64)),
    ]);
    let mut text = manifest.to_pretty();
    text.push('\n');
    write_atomic(&root_manifest_path(root), &text)
}

/// Reads and validates the root manifest; returns the shard count.
pub(crate) fn read_root_manifest(root: &Path) -> Result<usize, RegistryError> {
    let path = root_manifest_path(root);
    let text = std::fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
    let manifest = parse_json(&text).map_err(|e| RegistryError::Manifest {
        path: path.clone(),
        message: format!("malformed JSON: {e}"),
    })?;
    let bad = |message: String| RegistryError::Manifest {
        path: path.clone(),
        message,
    };
    match manifest.get("format").and_then(JsonValue::as_str) {
        Some(REGISTRY_FORMAT) => {}
        other => return Err(bad(format!("not a registry manifest (format {other:?})"))),
    }
    match manifest.get("version").and_then(JsonValue::as_u32) {
        Some(REGISTRY_FORMAT_VERSION) => {}
        other => return Err(bad(format!("unsupported version {other:?}"))),
    }
    let shards = manifest
        .get("shards")
        .and_then(JsonValue::as_u32)
        .ok_or_else(|| bad("missing shard count".into()))?;
    if shards == 0 {
        return Err(bad("shard count must be positive".into()));
    }
    Ok(shards as usize)
}

pub(crate) fn write_shard_manifest(
    root: &Path,
    shard: usize,
    compactions: u32,
) -> Result<(), RegistryError> {
    let manifest = JsonValue::Object(vec![
        ("format".into(), JsonValue::String(SHARD_FORMAT.into())),
        (
            "version".into(),
            JsonValue::Number(f64::from(REGISTRY_FORMAT_VERSION)),
        ),
        ("shard".into(), JsonValue::Number(shard as f64)),
        (
            "compactions".into(),
            JsonValue::Number(f64::from(compactions)),
        ),
    ]);
    let mut text = manifest.to_pretty();
    text.push('\n');
    write_atomic(&shard_manifest_path(root, shard), &text)
}

/// Reads and validates a shard manifest; returns its compaction generation.
pub(crate) fn read_shard_manifest(root: &Path, shard: usize) -> Result<u32, RegistryError> {
    let path = shard_manifest_path(root, shard);
    let text = std::fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
    let manifest = parse_json(&text).map_err(|e| RegistryError::Manifest {
        path: path.clone(),
        message: format!("malformed JSON: {e}"),
    })?;
    if manifest.get("format").and_then(JsonValue::as_str) != Some(SHARD_FORMAT) {
        return Err(RegistryError::Manifest {
            path,
            message: "not a shard manifest".into(),
        });
    }
    match manifest.get("version").and_then(JsonValue::as_u32) {
        Some(REGISTRY_FORMAT_VERSION) => {}
        other => {
            return Err(RegistryError::Manifest {
                path,
                message: format!("unsupported version {other:?}"),
            })
        }
    }
    if manifest.get("shard").and_then(JsonValue::as_u32) != Some(shard as u32) {
        return Err(RegistryError::Manifest {
            path,
            message: "shard index does not match its directory".into(),
        });
    }
    Ok(manifest
        .get("compactions")
        .and_then(JsonValue::as_u32)
        .unwrap_or(0))
}

/// Appends pre-encoded record lines to a shard log.  With `sync` set
/// ([`Durability::Always`]) the file is fsynced, so the records survive an
/// OS crash or power loss once this returns (the torn-tail recovery covers
/// a crash *during* the write); without it ([`Durability::Batch`]) the
/// bytes only reach the OS page cache — an application crash loses nothing,
/// an OS crash loses at most the un-synced suffix, and recovery still
/// restores the longest valid prefix.
///
/// [`Durability::Always`]: super::Durability::Always
/// [`Durability::Batch`]: super::Durability::Batch
pub(crate) fn append_lines(
    root: &Path,
    shard: usize,
    lines: &str,
    sync: bool,
) -> Result<(), RegistryError> {
    if lines.is_empty() {
        return Ok(());
    }
    let obs = crate::telemetry::registry_metrics();
    let append_started = std::time::Instant::now();
    let path = log_path(root, shard);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| RegistryError::io(&path, e))?;
    file.write_all(lines.as_bytes())
        .map_err(|e| RegistryError::io(&path, e))?;
    if sync {
        let sync_started = std::time::Instant::now();
        file.sync_data().map_err(|e| RegistryError::io(&path, e))?;
        obs.fsync_latency_us.observe_us(sync_started.elapsed());
    }
    obs.append_latency_us.observe_us(append_started.elapsed());
    Ok(())
}

/// Fsyncs a shard log (no-op for a shard that never received an append):
/// the batch-durability flush point.
pub(crate) fn sync_log(root: &Path, shard: usize) -> Result<(), RegistryError> {
    let path = log_path(root, shard);
    let file = match std::fs::OpenOptions::new().write(true).open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(RegistryError::io(&path, e)),
    };
    let sync_started = std::time::Instant::now();
    file.sync_data().map_err(|e| RegistryError::io(&path, e))?;
    crate::telemetry::registry_metrics()
        .fsync_latency_us
        .observe_us(sync_started.elapsed());
    Ok(())
}

/// What recovery found in one shard log.
pub(crate) struct RecoveredShard {
    /// The longest valid record prefix, in log order.
    pub records: Vec<LogRecord>,
    /// Byte length of that prefix (the log is truncated to this).
    pub valid_bytes: u64,
    /// Bytes dropped behind the prefix (0 for a clean log).
    pub dropped_bytes: u64,
    /// Why the prefix ended, when it ended before the end of the file.
    pub error: Option<RegistryError>,
}

/// Replays a shard log: decodes the longest valid record prefix and reports
/// a torn or corrupt tail as a typed error.  With `repair` set the file is
/// additionally truncated back to the valid prefix so subsequent appends
/// commit cleanly; without it the log is left byte-for-byte untouched (the
/// strict `open` path inspects without destroying forensic evidence).
/// Missing log files are an empty shard (a crash can land between
/// `create_dir_all` and the first append).
pub(crate) fn recover_shard(
    root: &Path,
    shard: usize,
    repair: bool,
) -> Result<RecoveredShard, RegistryError> {
    let path = log_path(root, shard);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveredShard {
                records: Vec::new(),
                valid_bytes: 0,
                dropped_bytes: 0,
                error: None,
            })
        }
        Err(e) => return Err(RegistryError::io(&path, e)),
    };

    let mut records = Vec::new();
    let mut last_revision: HashMap<String, u32> = HashMap::new();
    let mut valid_bytes = 0usize;
    let mut line_no = 0usize;
    let mut error = None;

    let mut rest: &[u8] = &bytes;
    while !rest.is_empty() {
        line_no += 1;
        let Some(newline) = rest.iter().position(|&b| b == b'\n') else {
            // No commit marker: the final record was torn mid-write.
            error = Some(RegistryError::Record {
                shard,
                line: line_no,
                message: format!("torn record ({} bytes without commit marker)", rest.len()),
            });
            break;
        };
        let line = &rest[..newline];
        let decoded = std::str::from_utf8(line)
            .map_err(|_| "invalid UTF-8".to_string())
            .and_then(decode_line);
        let record = match decoded {
            Ok(record) => record,
            Err(message) => {
                error = Some(RegistryError::Record {
                    shard,
                    line: line_no,
                    message,
                });
                break;
            }
        };
        if let LogRecord::Revision { site, revision, .. } = &record {
            if let Some(&last) = last_revision.get(site.as_str()) {
                if *revision <= last {
                    error = Some(RegistryError::Record {
                        shard,
                        line: line_no,
                        message: format!(
                            "revision {revision} for site {site:?} does not follow {last}"
                        ),
                    });
                    break;
                }
            }
            last_revision.insert(site.clone(), *revision);
        }
        records.push(record);
        valid_bytes += newline + 1;
        rest = &rest[newline + 1..];
    }

    let dropped_bytes = (bytes.len() - valid_bytes) as u64;
    if dropped_bytes > 0 {
        crate::telemetry::registry_metrics()
            .recovery_dropped_bytes
            .add(dropped_bytes);
    }
    if dropped_bytes > 0 && repair {
        // Truncate the torn tail so subsequent appends commit cleanly.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| RegistryError::io(&path, e))?;
        file.set_len(valid_bytes as u64)
            .map_err(|e| RegistryError::io(&path, e))?;
    }
    Ok(RecoveredShard {
        records,
        valid_bytes: valid_bytes as u64,
        dropped_bytes,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_in_range() {
        for shards in [1usize, 4, 16] {
            for site in ["", "a", "movies-0017", "hotels-0101"] {
                let s = shard_of(site, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(site, shards), "stable");
            }
        }
        // The partition actually spreads keys (not all in one shard).
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("site-{i}"), 8)).collect();
        assert!(hits.len() > 4, "degenerate partition: {hits:?}");
    }

    #[test]
    fn manifests_round_trip_and_reject_foreign_files() {
        let root = std::env::temp_dir().join(format!("wi-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(shard_dir(&root, 0)).unwrap();
        write_root_manifest(&root, 8).unwrap();
        assert_eq!(read_root_manifest(&root).unwrap(), 8);
        write_shard_manifest(&root, 0, 3).unwrap();
        assert_eq!(read_shard_manifest(&root, 0).unwrap(), 3);

        std::fs::write(root_manifest_path(&root), "{\"format\": \"other\"}").unwrap();
        assert!(matches!(
            read_root_manifest(&root),
            Err(RegistryError::Manifest { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
