//! The bundle registry: versioned wrapper history per site, plus the
//! parallel batch driver that runs many sites' timelines through the
//! maintenance loop.
//!
//! Two registries share one contract:
//!
//! * [`Registry`] — the in-memory reference: a plain map from site key to
//!   version history.  Fast, simple, forgets everything on drop.  It is the
//!   semantic baseline the persistent path is tested against.
//! * [`PersistentRegistry`] — the production shape: site histories
//!   partitioned into N shards by FxHash of the site key, each shard backed
//!   by numbered, size-bounded, checksummed JSON-lines **segments** plus a
//!   manifest, with wrapper bundles deduplicated into a content-addressed
//!   object store (see [`log`](self::log) for the record schema, [`shard`]
//!   for the on-disk layout and [`objects`](self::objects) for the bundle
//!   store).  [`recover`](PersistentRegistry::recover) replays the segments
//!   back into the live map, tolerating a torn final record;
//!   [`compact`](PersistentRegistry::compact) rewrites only segments below
//!   a live-record ratio floor (see [`compact`](self::compact) module
//!   docs); and [`snapshot`](PersistentRegistry::snapshot) /
//!   [`replicate_to`](PersistentRegistry::replicate_to) /
//!   [`restore`](PersistentRegistry::restore) move whole registries between
//!   directories and machines.
//!
//! The persistent [`maintain_batch`](PersistentRegistry::maintain_batch)
//! additionally persists each site's *maintenance position* — last-known
//! -good state, lifecycle state and retirement streak — so a restarted
//! service resumes a timeline byte-identically to a process that never
//! stopped (`Maintainer::run_resumed` does the splicing).

pub mod compact;
mod lock;
pub mod log;
pub mod objects;
pub mod shard;
mod snapshot;

pub use compact::{CompactionPolicy, CompactionStats};
pub use log::{LogRecord, RegistryError};
pub use objects::ObjectStore;
pub use shard::shard_of;
pub use snapshot::{ReplicationStats, SnapshotStats};

use crate::lifecycle::{Maintainer, MaintenanceLog, WrapperState};
use crate::verify::LastKnownGood;
use crate::PageVersion;
use log::encode_record;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wi_induction::WrapperBundle;
use wi_xpath::EvalContext;

/// Number of jobs below which [`Registry::maintain_batch`] stays on the
/// calling thread (mirrors `Extractor::extract_batch`).
const PARALLEL_THRESHOLD: usize = 4;

/// Minimum jobs per worker: spawning a thread for fewer jobs than this costs
/// more than it saves, so the fan-out is clamped to
/// `jobs / MIN_JOBS_PER_WORKER` workers even when more cores are available.
const MIN_JOBS_PER_WORKER: usize = 2;

/// One versioned install of a bundle for a site.
#[derive(Debug, Clone)]
pub struct VersionRecord {
    /// Revision number (the bundle's own `revision`).
    pub revision: u32,
    /// The day this revision was installed.
    pub day: i64,
    /// Why: `"installed"` for the initial induction, the repair provenance
    /// otherwise.
    pub cause: String,
    /// The bundle at this revision.
    pub bundle: WrapperBundle,
}

/// The work order for one site in a batch run.
#[derive(Debug, Clone)]
pub struct MaintenanceJob {
    /// The site key (must have a bundle installed in the registry).
    pub site: String,
    /// The site's page timeline, oldest first.
    pub pages: Vec<PageVersion>,
    /// Optional seed last-known-good state (e.g. from the induction
    /// snapshot); without one the first healthy snapshot bootstraps it.
    pub seed_lkg: Option<LastKnownGood>,
    /// Optional re-induction inducer override for this site (e.g. carrying
    /// the site's template-label text policy); the shared maintainer's
    /// inducer is used otherwise.
    pub inducer: Option<wi_induction::WrapperInducer>,
}

/// Versioned bundle storage per site.
///
/// The registry is the single source of truth for "which wrapper extracts
/// site X right now": [`install`](Registry::install) records revision 0,
/// every validated repair appends a new [`VersionRecord`], and
/// [`current`](Registry::current) always answers with the newest revision.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    sites: BTreeMap<String, Vec<VersionRecord>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Installs a (freshly induced) bundle for a site.
    pub fn install(&mut self, site: impl Into<String>, bundle: WrapperBundle, day: i64) {
        let site = site.into();
        let record = VersionRecord {
            revision: bundle.revision,
            day,
            cause: "installed".to_string(),
            bundle,
        };
        self.sites.entry(site).or_default().push(record);
    }

    /// The bundle currently in force for a site.
    pub fn current(&self, site: &str) -> Option<&WrapperBundle> {
        self.sites
            .get(site)
            .and_then(|versions| versions.last())
            .map(|record| &record.bundle)
    }

    /// The full version history of a site, oldest first.
    pub fn history(&self, site: &str) -> &[VersionRecord] {
        self.sites.get(site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The registered site keys, sorted.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Runs every job's timeline through the maintenance loop and commits
    /// the resulting revisions, fanning the jobs out over the available
    /// cores.  One [`EvalContext`] is created per worker and reused for the
    /// worker's whole chunk, mirroring `Extractor::extract_batch`; the
    /// results (and the committed history) are exactly those of
    /// [`maintain_batch_sequential`](Registry::maintain_batch_sequential).
    ///
    /// The fan-out is **adaptive**: on a single-core machine
    /// (`available_parallelism() == 1`), or when the batch is too small to
    /// amortize thread spawns (fewer than [`PARALLEL_THRESHOLD`] jobs, or
    /// fewer than [`MIN_JOBS_PER_WORKER`] jobs per would-be worker), the
    /// batch stays on the calling thread — scoped threads on one core can
    /// only add overhead (the 0.83× regression recorded in the pre-adaptive
    /// `BENCH_maintain.json`).
    ///
    /// Returns one log per job, in job order.  A job whose site has no
    /// installed bundle yields an empty log.
    pub fn maintain_batch(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Vec<MaintenanceLog> {
        self.maintain_batch_with_workers(jobs, maintainer, adaptive_workers(jobs.len()))
    }

    /// The sequential reference implementation of
    /// [`maintain_batch`](Registry::maintain_batch).
    pub fn maintain_batch_sequential(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Vec<MaintenanceLog> {
        self.maintain_batch_with_workers(jobs, maintainer, 1)
    }

    /// Batch maintenance with an explicit worker count (the throughput bench
    /// compares 1 vs N).
    ///
    /// A site may appear in at most one job per batch: two concurrent runs
    /// from the same starting revision would commit conflicting histories.
    /// Only the first job for a site runs; duplicates yield empty logs.
    pub fn maintain_batch_with_workers(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
        workers: usize,
    ) -> Vec<MaintenanceLog> {
        // Snapshot the current bundle of every job up front so the run is
        // independent of commit order; duplicate sites get no bundle (and
        // therefore an empty log) so they cannot fork the version history.
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let bundles: Vec<Option<WrapperBundle>> = jobs
            .iter()
            .map(|job| {
                if !seen.insert(&job.site) {
                    return None;
                }
                self.current(&job.site).cloned()
            })
            .collect();

        let logs = fan_out(jobs, &bundles, workers, &|cx,
                                                      job,
                                                      bundle: &Option<
            WrapperBundle,
        >| {
            run_job(cx, maintainer, job, bundle.as_ref())
        });

        // Commit the new revisions, in job order.
        for (job, log) in jobs.iter().zip(&logs) {
            let Some(versions) = self.sites.get_mut(&job.site) else {
                continue;
            };
            for revision in &log.revisions {
                versions.push(VersionRecord {
                    revision: revision.revision,
                    day: revision.day,
                    cause: revision.cause.clone(),
                    bundle: revision.bundle.clone(),
                });
            }
        }
        logs
    }
}

/// The per-worker fan-out shared by the in-memory and persistent batch
/// drivers: one reusable [`EvalContext`] per worker, chunked scoped threads
/// above the adaptive thresholds, strictly sequential below them.  `run` is
/// called once per `(job, seed)` pair; the logs come back in job order.
fn fan_out<S: Sync>(
    jobs: &[MaintenanceJob],
    seeds: &[S],
    workers: usize,
    run: &(dyn Fn(&mut EvalContext, &MaintenanceJob, &S) -> MaintenanceLog + Sync),
) -> Vec<MaintenanceLog> {
    if jobs.len() < PARALLEL_THRESHOLD || workers < 2 {
        let mut cx = EvalContext::new();
        return jobs
            .iter()
            .zip(seeds)
            .map(|(job, seed)| run(&mut cx, job, seed))
            .collect();
    }
    let chunk_size = jobs.len().div_ceil(workers);
    let mut logs = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk_size)
            .zip(seeds.chunks(chunk_size))
            .map(|(job_chunk, seed_chunk)| {
                scope.spawn(move || {
                    let mut cx = EvalContext::new();
                    job_chunk
                        .iter()
                        .zip(seed_chunk)
                        .map(|(job, seed)| run(&mut cx, job, seed))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            logs.extend(handle.join().expect("maintenance worker panicked"));
        }
    });
    logs
}

/// The adaptive worker count for a batch of `jobs` (see
/// [`Registry::maintain_batch`] for the rationale).
fn adaptive_workers(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(jobs / MIN_JOBS_PER_WORKER).max(1)
}

/// The log of a job that could not run (uninstalled or duplicate site).
fn empty_log(site: &str) -> MaintenanceLog {
    MaintenanceLog {
        label: site.to_string(),
        outcomes: Vec::new(),
        revisions: Vec::new(),
        bundle: WrapperBundle::from_instances(&[], Default::default()),
        lkg: None,
        target_gone_streak: 0,
    }
}

/// Runs one job (an uninstalled site yields an empty log).
fn run_job(
    cx: &mut EvalContext,
    maintainer: &Maintainer,
    job: &MaintenanceJob,
    bundle: Option<&WrapperBundle>,
) -> MaintenanceLog {
    match bundle {
        Some(bundle) => maintainer.run_with_inducer(
            cx,
            &job.site,
            bundle.clone(),
            &job.pages,
            job.seed_lkg.clone(),
            job.inducer.as_ref().unwrap_or(&maintainer.inducer),
        ),
        None => empty_log(&job.site),
    }
}

/// Everything the registry holds about one site: the version history, the
/// maintenance position, and the verifier's reference state.
#[derive(Debug, Clone)]
pub(crate) struct SiteEntry {
    pub(crate) versions: Vec<VersionRecord>,
    pub(crate) state: WrapperState,
    pub(crate) target_gone_streak: u32,
    pub(crate) lkg: Option<LastKnownGood>,
    /// The last maintained day (`None` until the first maintenance run):
    /// re-submitted pages at or before it are skipped, and compaction
    /// preserves it in the rewritten lifecycle record.
    pub(crate) last_day: Option<i64>,
}

impl SiteEntry {
    fn new() -> SiteEntry {
        SiteEntry {
            versions: Vec::new(),
            state: WrapperState::Monitoring,
            target_gone_streak: 0,
            lkg: None,
            last_day: None,
        }
    }
}

/// When appended records are forced to stable storage.
///
/// The default, [`Always`](Durability::Always), fsyncs every append: once a
/// write returns, the records survive an OS crash or power loss.  Bulk
/// ingestion — installing thousands of bundles, or a service's batch
/// endpoints — pays one `sync_data` round trip per append for durability it
/// only needs at the end of the batch; [`Batch`](Durability::Batch) skips
/// the per-append fsync and leaves flushing to an explicit
/// [`PersistentRegistry::sync`] (or the OS writeback).  In `Batch` mode an
/// *application* crash still loses nothing (the bytes reached the page
/// cache), an OS crash loses at most the un-synced suffix, and recovery
/// restores the longest valid record prefix either way — relaxing
/// durability never relaxes consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Fsync every append (the default).
    #[default]
    Always,
    /// Skip per-append fsyncs; callers flush at batch boundaries via
    /// [`PersistentRegistry::sync`].
    Batch,
}

/// Per-shard registry statistics, as exposed by
/// [`PersistentRegistry::shard_stats`] (the `/metrics` endpoint of
/// `wi-serve` renders these).
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Sites living in this shard.
    pub sites: usize,
    /// Retained version records across those sites.
    pub revisions: usize,
    /// Summed byte length of the shard's log segments.
    pub log_bytes: u64,
    /// Number of log segments in the shard.
    pub segments: usize,
}

/// One dropped log tail, as found by [`PersistentRegistry::recover`].
#[derive(Debug)]
pub struct TornTail {
    /// The shard whose log was torn.
    pub shard: usize,
    /// Records restored from this shard (the longest valid prefix).
    pub valid_records: usize,
    /// Byte length of the valid prefix (the log was truncated to this).
    pub valid_bytes: u64,
    /// Bytes dropped behind the prefix.
    pub dropped_bytes: u64,
    /// The typed validation failure that ended the prefix.
    pub error: RegistryError,
}

/// What [`PersistentRegistry::recover`] found on disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Shards replayed.
    pub shards: usize,
    /// Records restored across all shards.
    pub records_replayed: usize,
    /// Every shard whose log ended in a torn or corrupt tail.  Empty for a
    /// cleanly shut-down registry.
    pub torn_tails: Vec<TornTail>,
}

impl RecoveryReport {
    /// `true` when every shard log replayed cleanly to its end.
    pub fn clean(&self) -> bool {
        self.torn_tails.is_empty()
    }
}

/// The durable, sharded registry: [`Registry`] semantics over append-only
/// version logs (see the module docs for the layout and guarantees).
///
/// ```no_run
/// use wi_maintain::{PersistentRegistry, CompactionPolicy};
/// # fn main() -> Result<(), wi_maintain::RegistryError> {
/// # let bundle = wi_maintain::WrapperBundle::from_instances(&[], Default::default());
/// let dir = std::env::temp_dir().join("registry");
/// let mut registry = PersistentRegistry::create(&dir, 16)?;
/// registry.install("movies-0001", bundle, 0)?;
/// drop(registry);
///
/// // A later process — or the same one after a crash — replays the logs.
/// let mut registry = PersistentRegistry::recover(&dir)?;
/// assert!(registry.current("movies-0001").is_some());
/// registry.compact(&CompactionPolicy::default())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PersistentRegistry {
    root: PathBuf,
    shards: usize,
    sites: BTreeMap<String, SiteEntry>,
    report: RecoveryReport,
    /// Set when an append failed partway (bytes of unknown extent may have
    /// reached a log the live map never advanced past).  Every further
    /// write returns [`RegistryError::Poisoned`]: writing on could append
    /// duplicate revisions behind a torn line, which a later recovery would
    /// truncate away as corruption — silently discarding committed work.
    poisoned: bool,
    /// When appends are forced to stable storage (see [`Durability`]).
    durability: Durability,
    /// The advisory per-shard locks held for the lifetime of this instance
    /// (released on drop; see the `lock` module docs).  Pure RAII: the
    /// field exists only for its `Drop`.
    #[allow(dead_code)]
    locks: Vec<lock::ShardLock>,
    /// The content-addressed bundle store under `<root>/objects/`.
    objects: ObjectStore,
    /// Per shard: the segment appends currently go to, and its byte length
    /// (the rotation threshold accumulates here).
    active: Vec<ActiveSegment>,
    /// The rotation threshold: an append that would push the active segment
    /// *past* this many bytes rolls to a fresh segment first.  One append
    /// batch is never split, so segments can exceed the threshold by up to
    /// one batch.
    segment_bytes: u64,
}

/// A shard's append cursor: which segment is active and how full it is.
#[derive(Debug, Clone, Copy)]
struct ActiveSegment {
    id: u64,
    bytes: u64,
}

/// The default rotation threshold (see
/// [`PersistentRegistry::set_segment_bytes`]).
const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

impl PersistentRegistry {
    /// Initialises an empty registry at `root` with `shards` shards.
    ///
    /// The directory is created if needed; a root that already holds a
    /// registry manifest is rejected (recover it instead of clobbering it).
    pub fn create(root: impl Into<PathBuf>, shards: usize) -> Result<Self, RegistryError> {
        let root = root.into();
        if shards == 0 {
            return Err(RegistryError::Manifest {
                path: shard::root_manifest_path(&root),
                message: "shard count must be positive".into(),
            });
        }
        std::fs::create_dir_all(&root).map_err(|e| RegistryError::io(&root, e))?;
        if shard::root_manifest_path(&root).exists() {
            return Err(RegistryError::Manifest {
                path: shard::root_manifest_path(&root),
                message: "a registry already exists here (use recover)".into(),
            });
        }
        let mut locks = Vec::with_capacity(shards);
        for index in 0..shards {
            let dir = shard::shard_dir(&root, index);
            std::fs::create_dir_all(&dir).map_err(|e| RegistryError::io(&dir, e))?;
            locks.push(lock::ShardLock::acquire(shard::lock_path(&root, index))?);
            shard::write_shard_manifest(&root, index, 0)?;
            shard::create_segment(&root, index, 0)?;
        }
        // The root manifest last: its presence marks a fully initialised
        // layout.
        shard::write_root_manifest(&root, shards)?;
        let objects = ObjectStore::open(&root);
        Ok(PersistentRegistry {
            root,
            shards,
            sites: BTreeMap::new(),
            report: RecoveryReport {
                shards,
                ..RecoveryReport::default()
            },
            poisoned: false,
            durability: Durability::Always,
            locks,
            objects,
            active: vec![ActiveSegment { id: 0, bytes: 0 }; shards],
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        })
    }

    /// Opens a registry, replaying every shard log into the live map and
    /// tolerating torn or corrupt log tails: each shard is restored to its
    /// longest valid record prefix, the file is truncated back to it, and
    /// the drop is reported (typed error included) in
    /// [`recovery_report`](PersistentRegistry::recovery_report).  Only
    /// structural damage — missing or invalid manifests, unreadable files —
    /// is an `Err`.
    pub fn recover(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        Self::replay(root.into(), true)
    }

    /// Like [`recover`](PersistentRegistry::recover), but strict: a torn or
    /// corrupt log tail is returned as its typed error instead of being
    /// dropped, and — unlike `recover` — the damaged log is left
    /// byte-for-byte untouched, so the evidence survives for inspection.
    /// Use this when unacknowledged data loss must stop the service.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let mut registry = Self::replay(root.into(), false)?;
        if !registry.report.torn_tails.is_empty() {
            return Err(registry.report.torn_tails.remove(0).error);
        }
        Ok(registry)
    }

    /// The shared log replay behind [`recover`](PersistentRegistry::recover)
    /// (`repair` — truncates torn tails) and
    /// [`open`](PersistentRegistry::open) (read-only).
    fn replay(root: PathBuf, repair: bool) -> Result<Self, RegistryError> {
        let shards = shard::read_root_manifest(&root)?;
        // Take every shard lock before touching any log: replaying (and,
        // for `recover`, truncating) a log another live process is
        // appending to would read — or destroy — a moving tail.
        let mut locks = Vec::with_capacity(shards);
        for index in 0..shards {
            locks.push(lock::ShardLock::acquire(shard::lock_path(&root, index))?);
        }
        let mut sites: BTreeMap<String, SiteEntry> = BTreeMap::new();
        let mut report = RecoveryReport {
            shards,
            ..RecoveryReport::default()
        };
        let objects = ObjectStore::open(&root);
        let mut active = Vec::with_capacity(shards);
        for index in 0..shards {
            shard::read_shard_manifest(&root, index)?;
            let recovered = shard::recover_shard(&root, index, repair, &objects)?;
            report.records_replayed += recovered.records.len();
            active.push(ActiveSegment {
                id: recovered.active_segment,
                bytes: recovered.active_bytes,
            });
            if let Some(error) = recovered.error {
                report.torn_tails.push(TornTail {
                    shard: index,
                    valid_records: recovered.records.len(),
                    valid_bytes: recovered.valid_bytes,
                    dropped_bytes: recovered.dropped_bytes,
                    error,
                });
            }
            for record in recovered.records {
                apply_record(&mut sites, record);
            }
        }
        Ok(PersistentRegistry {
            root,
            shards,
            sites,
            report,
            poisoned: false,
            durability: Durability::Always,
            locks,
            objects,
            active,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        })
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shard count fixed at [`create`](PersistentRegistry::create) time.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard a site key lives in.
    pub fn shard_of(&self, site: &str) -> usize {
        shard_of(site, self.shards)
    }

    /// What the last [`recover`](PersistentRegistry::recover) found.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The content-addressed bundle store backing revision records.
    pub fn objects(&self) -> &ObjectStore {
        &self.objects
    }

    /// The segment rotation threshold in bytes (see
    /// [`set_segment_bytes`](PersistentRegistry::set_segment_bytes)).
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Sets the rotation threshold: an append that would push a shard's
    /// active segment past `bytes` rolls to a fresh segment first.  One
    /// append batch is never split across segments, so a segment can exceed
    /// the threshold by up to one batch.  Affects future appends only.
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(1);
    }

    /// Builder form of
    /// [`set_segment_bytes`](PersistentRegistry::set_segment_bytes).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.set_segment_bytes(bytes);
        self
    }

    /// Installs a (freshly induced) bundle for a new site.  Re-installing an
    /// existing site is a [`RegistryError::Conflict`] — its history already
    /// exists and revisions never rewind.
    pub fn install(
        &mut self,
        site: impl Into<String>,
        bundle: WrapperBundle,
        day: i64,
    ) -> Result<(), RegistryError> {
        let site = site.into();
        if self.sites.contains_key(&site) {
            return Err(RegistryError::Conflict {
                site,
                message: "already installed (commit a revision instead)".into(),
            });
        }
        let record = LogRecord::Revision {
            site: site.clone(),
            day,
            revision: bundle.revision,
            cause: "installed".to_string(),
            bundle,
        };
        let line = encode_record(&record, &self.objects)?;
        self.append_guarded(shard_of(&site, self.shards), &line)?;
        apply_record(&mut self.sites, record);
        Ok(())
    }

    /// Commits a new revision for an installed site (e.g. a repair produced
    /// outside [`maintain_batch`](PersistentRegistry::maintain_batch)).  The
    /// bundle's revision must be strictly greater than the current one; the
    /// bundle's provenance note becomes the recorded cause.
    pub fn commit_revision(
        &mut self,
        site: &str,
        bundle: WrapperBundle,
        day: i64,
    ) -> Result<(), RegistryError> {
        let Some(entry) = self.sites.get(site) else {
            return Err(RegistryError::Conflict {
                site: site.to_string(),
                message: "not installed".into(),
            });
        };
        let last = entry.versions.last().map(|v| v.revision).unwrap_or(0);
        if bundle.revision <= last {
            return Err(RegistryError::Conflict {
                site: site.to_string(),
                message: format!(
                    "revision {} does not follow current revision {last}",
                    bundle.revision
                ),
            });
        }
        let record = LogRecord::Revision {
            site: site.to_string(),
            day,
            revision: bundle.revision,
            cause: bundle
                .provenance
                .clone()
                .unwrap_or_else(|| "committed".to_string()),
            bundle,
        };
        let line = encode_record(&record, &self.objects)?;
        self.append_guarded(shard_of(site, self.shards), &line)?;
        apply_record(&mut self.sites, record);
        Ok(())
    }

    /// The bundle currently in force for a site.
    pub fn current(&self, site: &str) -> Option<&WrapperBundle> {
        self.sites
            .get(site)
            .and_then(|entry| entry.versions.last())
            .map(|record| &record.bundle)
    }

    /// The full retained version history of a site, oldest first.
    pub fn history(&self, site: &str) -> &[VersionRecord] {
        self.sites
            .get(site)
            .map(|entry| entry.versions.as_slice())
            .unwrap_or(&[])
    }

    /// The registered site keys, sorted.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The persisted lifecycle state of a site.
    pub fn state(&self, site: &str) -> Option<WrapperState> {
        self.sites.get(site).map(|entry| entry.state)
    }

    /// The persisted last-known-good verification state of a site.
    pub fn lkg(&self, site: &str) -> Option<&LastKnownGood> {
        self.sites.get(site).and_then(|entry| entry.lkg.as_ref())
    }

    /// Whether a failed append has poisoned this instance (see
    /// [`RegistryError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The durability mode in force (see [`Durability`]).
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Switches the durability mode (see [`Durability`]).  Switching from
    /// [`Batch`](Durability::Batch) back to [`Always`](Durability::Always)
    /// does not retroactively flush earlier relaxed appends — call
    /// [`sync`](PersistentRegistry::sync) for that.
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
    }

    /// Builder form of [`set_durability`](PersistentRegistry::set_durability).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Forces every shard log to stable storage: the flush point of
    /// [`Durability::Batch`] (a no-op under `Always`, where each append
    /// already synced).  Callers in `Batch` mode should sync at batch
    /// boundaries and before a graceful shutdown.
    pub fn sync(&mut self) -> Result<(), RegistryError> {
        for index in 0..self.shards {
            shard::sync_segments(&self.root, index)?;
        }
        Ok(())
    }

    /// Per-shard statistics of the live registry: how the site partition
    /// spreads sites, retained revisions and log bytes over the shards.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut stats: Vec<ShardStats> = (0..self.shards)
            .map(|shard| ShardStats {
                shard,
                sites: 0,
                revisions: 0,
                log_bytes: 0,
                segments: 0,
            })
            .collect();
        for (site, entry) in &self.sites {
            let stat = &mut stats[shard_of(site, self.shards)];
            stat.sites += 1;
            stat.revisions += entry.versions.len();
        }
        for stat in &mut stats {
            let ids = shard::list_segments(&self.root, stat.shard).unwrap_or_default();
            stat.segments = ids.len();
            stat.log_bytes = ids
                .iter()
                .map(|&id| {
                    std::fs::metadata(shard::segment_path(&self.root, stat.shard, id))
                        .map(|m| m.len())
                        .unwrap_or(0)
                })
                .sum();
        }
        stats
    }

    /// Appends lines to a shard, poisoning the registry on failure: a
    /// failed append may have left bytes of unknown extent on the log while
    /// the live map never advanced, so any further write from this instance
    /// could commit duplicate revisions behind a torn line — which a later
    /// recovery would truncate away as corruption.  Refusing here turns
    /// silent future data loss into an immediate, recoverable error.
    fn append_guarded(&mut self, shard: usize, lines: &str) -> Result<(), RegistryError> {
        if self.poisoned {
            return Err(RegistryError::Poisoned);
        }
        if lines.is_empty() {
            return Ok(());
        }
        // Roll to a fresh segment *before* the append when this batch would
        // push the active segment past the threshold — a batch is never
        // split, so the records of one commit always share a segment.  A
        // failed rotation does not poison: nothing has been appended yet,
        // so the live map and the logs still agree.
        let active = self.active[shard];
        if active.bytes > 0 && active.bytes + lines.len() as u64 > self.segment_bytes {
            self.seal_active(shard)?;
        }
        let sync = self.durability == Durability::Always;
        let segment = self.active[shard].id;
        shard::append_lines(&self.root, shard, segment, lines, sync)
            .inspect_err(|_| self.poisoned = true)?;
        self.active[shard].bytes += lines.len() as u64;
        Ok(())
    }

    /// Rotates a shard's appends to a fresh, durable segment (no-op when
    /// the active segment is still empty).  Used by the threshold roll in
    /// [`append_guarded`](Self::append_guarded) and by `snapshot`, which
    /// must never hard-link a file that could still receive appends.
    pub(crate) fn seal_active(&mut self, shard: usize) -> Result<(), RegistryError> {
        if self.active[shard].bytes == 0 {
            return Ok(());
        }
        let next = self.active[shard].id + 1;
        shard::create_segment(&self.root, shard, next)?;
        self.active[shard] = ActiveSegment { id: next, bytes: 0 };
        crate::telemetry::registry_metrics()
            .segment_rotations
            .add(1);
        Ok(())
    }

    /// [`RegistryError::Poisoned`] when a failed append has poisoned this
    /// instance, `Ok` otherwise.
    pub(crate) fn check_poisoned(&self) -> Result<(), RegistryError> {
        if self.poisoned {
            Err(RegistryError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// [`Registry::maintain_batch`] over the persisted histories: identical
    /// fan-out, identical logs — plus every committed revision, final
    /// last-known-good state and lifecycle position is appended (and
    /// fsynced) to the site's shard log before the live map advances, so a
    /// crash after this returns loses nothing and a restart resumes each
    /// timeline exactly where it stopped.  The persisted last-known-good
    /// state takes precedence over a job's `seed_lkg` — the persisted one
    /// carries all evidence accumulated across committed epochs; the job's
    /// seed only bootstraps a never-maintained site.
    ///
    /// Re-submission is **idempotent per day**: pages at or before a site's
    /// persisted last-maintained day are skipped (their outcomes are simply
    /// absent from the returned log), so a service that crashes mid-batch
    /// and replays the whole batch cannot double-apply a timeline — the
    /// already-committed sites fast-forward to the genuinely new snapshots.
    /// Pages must be oldest-first, as [`MaintenanceJob::pages`] requires.
    pub fn maintain_batch(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Result<Vec<MaintenanceLog>, RegistryError> {
        self.maintain_batch_with_workers(jobs, maintainer, adaptive_workers(jobs.len()))
    }

    /// The sequential reference implementation of
    /// [`maintain_batch`](PersistentRegistry::maintain_batch).
    pub fn maintain_batch_sequential(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Result<Vec<MaintenanceLog>, RegistryError> {
        self.maintain_batch_with_workers(jobs, maintainer, 1)
    }

    /// Batch maintenance with an explicit worker count.  Duplicate sites in
    /// one batch are skipped exactly like the in-memory driver.
    pub fn maintain_batch_with_workers(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
        workers: usize,
    ) -> Result<Vec<MaintenanceLog>, RegistryError> {
        if self.poisoned {
            return Err(RegistryError::Poisoned);
        }
        // Seed every job from the persisted position: current bundle, the
        // job's explicit last-known-good (or the stored one), lifecycle
        // state, retirement streak, and the index of the first page *after*
        // the persisted last-maintained day (idempotent re-submission).
        // Duplicates and uninstalled sites get no seed and therefore an
        // empty log.
        struct Seed {
            bundle: WrapperBundle,
            lkg: Option<LastKnownGood>,
            state: WrapperState,
            streak: u32,
            skip_pages: usize,
        }
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let seeds: Vec<Option<Seed>> = jobs
            .iter()
            .map(|job| {
                if !seen.insert(&job.site) {
                    return None;
                }
                self.sites.get(&job.site).map(|entry| Seed {
                    bundle: entry
                        .versions
                        .last()
                        .expect("installed site")
                        .bundle
                        .clone(),
                    // The persisted LKG is strictly an advancement of any
                    // seed the job carries (rotation evidence, stability
                    // counts, anchor censuses accumulated across committed
                    // epochs), so it wins; the job's seed only bootstraps a
                    // never-maintained site.  A stale job seed overriding it
                    // would silently reset that evidence on replay.
                    lkg: entry.lkg.clone().or_else(|| job.seed_lkg.clone()),
                    state: entry.state,
                    streak: entry.target_gone_streak,
                    skip_pages: match entry.last_day {
                        Some(last_day) => job
                            .pages
                            .iter()
                            .position(|page| page.day > last_day)
                            .unwrap_or(job.pages.len()),
                        None => 0,
                    },
                })
            })
            .collect();

        let logs = fan_out(
            jobs,
            &seeds,
            workers,
            &|cx, job, seed: &Option<Seed>| match seed {
                Some(seed) => maintainer.run_resumed(
                    cx,
                    &job.site,
                    seed.bundle.clone(),
                    &job.pages[seed.skip_pages..],
                    seed.lkg.clone(),
                    job.inducer.as_ref().unwrap_or(&maintainer.inducer),
                    seed.state,
                    seed.streak,
                ),
                None => empty_log(&job.site),
            },
        );

        // Persist first, then advance the live map: per shard, one append
        // holding every new revision plus the final last-known-good and
        // lifecycle records of each job that ran.
        let mut appends: BTreeMap<usize, String> = BTreeMap::new();
        for ((job, seed), log) in jobs.iter().zip(&seeds).zip(&logs) {
            if seed.is_none() || log.outcomes.is_empty() {
                continue;
            }
            let mut encoded = String::new();
            for revision in &log.revisions {
                // Store the bundle body first: objects are idempotent, so a
                // crash between here and the append leaves at worst an
                // unreferenced object for the next compaction to collect.
                let bundle_digest = self.objects.store(&revision.bundle)?;
                encoded.push_str(&log::encode_record_ref(log::RecordRef::Revision {
                    site: &job.site,
                    day: revision.day,
                    revision: revision.revision,
                    cause: &revision.cause,
                    bundle_digest,
                }));
            }
            let lines = appends.entry(shard_of(&job.site, self.shards)).or_default();
            lines.push_str(&encoded);
            if let Some(lkg) = &log.lkg {
                lines.push_str(&log::encode_record_ref(log::RecordRef::Lkg {
                    site: &job.site,
                    lkg,
                }));
            }
            let last_state = log.outcomes.last().expect("non-empty outcomes");
            lines.push_str(&log::encode_record_ref(log::RecordRef::State {
                site: &job.site,
                day: last_state.day,
                state: last_state.state,
                target_gone_streak: log.target_gone_streak,
            }));
        }
        for (index, lines) in &appends {
            self.append_guarded(*index, lines)?;
        }

        for ((job, seed), log) in jobs.iter().zip(&seeds).zip(&logs) {
            if seed.is_none() || log.outcomes.is_empty() {
                continue;
            }
            let entry = self.sites.get_mut(&job.site).expect("seeded site exists");
            for revision in &log.revisions {
                entry.versions.push(VersionRecord {
                    revision: revision.revision,
                    day: revision.day,
                    cause: revision.cause.clone(),
                    bundle: revision.bundle.clone(),
                });
            }
            if let Some(lkg) = &log.lkg {
                entry.lkg = Some(lkg.clone());
            }
            let last_state = log.outcomes.last().expect("non-empty outcomes");
            entry.state = last_state.state;
            entry.target_gone_streak = log.target_gone_streak;
            entry.last_day = Some(last_state.day);
        }
        Ok(logs)
    }

    /// Rewrites the dirty segments of every shard down to the retained
    /// history and garbage-collects unreferenced bundle objects (see the
    /// [`compact`](self::compact) module docs for the exact policy and the
    /// invariants).
    pub fn compact(&mut self, policy: &CompactionPolicy) -> Result<CompactionStats, RegistryError> {
        if self.poisoned {
            // The live map may be behind the logs; rewriting them from it
            // would discard the records the failed append already landed.
            return Err(RegistryError::Poisoned);
        }
        let stats =
            compact::compact_registry(&self.root, self.shards, &self.sites, policy, &self.objects)?;
        // Only once every shard rewrite has landed: trim the live histories
        // to what the rewrite kept, so the live map and a post-compaction
        // recovery agree record for record.  (Trimming first would leave
        // the live map under-reporting history if a rewrite failed midway.)
        for entry in self.sites.values_mut() {
            entry
                .versions
                .drain(..policy.keep_from(entry.versions.len()));
        }
        // The rewrite may have shrunk (or emptied) the active segment:
        // refresh the append cursor from disk so the rotation threshold
        // keeps measuring real bytes.
        for shard in 0..self.shards {
            let path = shard::segment_path(&self.root, shard, self.active[shard].id);
            self.active[shard].bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        Ok(stats)
    }
}

/// Folds one replayed (or freshly appended) record into the live map.
fn apply_record(sites: &mut BTreeMap<String, SiteEntry>, record: LogRecord) {
    match record {
        LogRecord::Revision {
            site,
            day,
            revision,
            cause,
            bundle,
        } => {
            sites
                .entry(site)
                .or_insert_with(SiteEntry::new)
                .versions
                .push(VersionRecord {
                    revision,
                    day,
                    cause,
                    bundle,
                });
        }
        LogRecord::Lkg { site, lkg } => {
            sites.entry(site).or_insert_with(SiteEntry::new).lkg = Some(lkg);
        }
        LogRecord::State {
            site,
            day,
            state,
            target_gone_streak,
        } => {
            let entry = sites.entry(site).or_insert_with(SiteEntry::new);
            entry.state = state;
            entry.target_gone_streak = target_gone_streak;
            entry.last_day = Some(day);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::Document;
    use wi_induction::WrapperInducer;
    use wi_scoring::ScoringParams;

    fn page(class: &str, values: &[&str]) -> Document {
        let items: String = values
            .iter()
            .map(|v| format!(r#"<span class="{class}">{v}</span>"#))
            .collect();
        Document::parse(&format!(
            r#"<html><body><div id="main"><h4>Prices:</h4>{items}</div>
               <ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></body></html>"#
        ))
        .unwrap()
    }

    fn job(site: &str, rename_at: Option<usize>, epochs: usize) -> (MaintenanceJob, WrapperBundle) {
        let v1 = page("p", &["1", "2", "3"]);
        let targets: Vec<_> = v1.elements_by_class("p");
        let wrapper = WrapperInducer::default()
            .try_induce_best(&v1, &targets)
            .unwrap();
        let bundle =
            WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label(site);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let class = match rename_at {
                    Some(at) if i >= at => "price",
                    _ => "p",
                };
                let values = [format!("{i}0"), format!("{i}1"), format!("{i}2")];
                let value_refs: Vec<&str> = values.iter().map(String::as_str).collect();
                PageVersion {
                    day: 20 * i as i64,
                    doc: page(class, &value_refs),
                }
            })
            .collect();
        (
            MaintenanceJob {
                site: site.to_string(),
                pages,
                seed_lkg: None,
                inducer: None,
            },
            bundle,
        )
    }

    #[test]
    fn registry_versions_per_site() {
        let mut registry = Registry::new();
        let (job1, bundle1) = job("movies-01", Some(2), 4);
        registry.install("movies-01", bundle1, 0);
        assert_eq!(registry.current("movies-01").unwrap().revision, 0);
        assert!(registry.current("unknown").is_none());

        let logs = registry.maintain_batch_sequential(&[job1], &Maintainer::default());
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].repairs(), 1);
        let history = registry.history("movies-01");
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].cause, "installed");
        assert!(history[1].cause.contains("re-anchored"));
        assert_eq!(registry.current("movies-01").unwrap().revision, 1);
        assert_eq!(registry.sites().collect::<Vec<_>>(), vec!["movies-01"]);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let mut sequential = Registry::new();
        let mut parallel = Registry::new();
        let jobs: Vec<MaintenanceJob> = (0..8)
            .map(|i| {
                let site = format!("site-{i:02}");
                let (job, bundle) = super::tests::job(&site, (i % 2 == 0).then_some(2), 5);
                sequential.install(&site, bundle.clone(), 0);
                parallel.install(&site, bundle, 0);
                job
            })
            .collect();
        let maintainer = Maintainer::default();
        let a = sequential.maintain_batch_sequential(&jobs, &maintainer);
        let b = parallel.maintain_batch_with_workers(&jobs, &maintainer, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.repairs(), y.repairs());
            assert_eq!(x.bundle.revision, y.bundle.revision);
            assert_eq!(
                x.outcomes.iter().map(|o| o.flagged).collect::<Vec<_>>(),
                y.outcomes.iter().map(|o| o.flagged).collect::<Vec<_>>()
            );
        }
        for i in 0..8 {
            let site = format!("site-{i:02}");
            assert_eq!(
                sequential.history(&site).len(),
                parallel.history(&site).len()
            );
        }
    }

    #[test]
    fn duplicate_sites_in_one_batch_cannot_fork_the_history() {
        let mut registry = Registry::new();
        let (job_a, bundle) = job("dup-site", Some(1), 4);
        let (job_b, _) = job("dup-site", Some(2), 4);
        registry.install("dup-site", bundle, 0);
        let logs = registry.maintain_batch_sequential(&[job_a, job_b], &Maintainer::default());
        assert_eq!(logs.len(), 2);
        assert!(!logs[0].outcomes.is_empty(), "first job runs");
        assert!(logs[1].outcomes.is_empty(), "duplicate job is skipped");
        // Exactly one history line: install + the first job's repair.
        let revisions: Vec<u32> = registry
            .history("dup-site")
            .iter()
            .map(|v| v.revision)
            .collect();
        assert_eq!(revisions, vec![0, 1]);
    }

    #[test]
    fn uninstalled_sites_yield_empty_logs() {
        let mut registry = Registry::new();
        let (job, _) = job("never-installed", None, 3);
        let logs = registry.maintain_batch(&[job], &Maintainer::default());
        assert_eq!(logs.len(), 1);
        assert!(logs[0].outcomes.is_empty());
    }
}
