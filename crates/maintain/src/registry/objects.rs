//! The content-addressed bundle store: one file per unique wrapper body.
//!
//! Revision records used to embed their full [`WrapperBundle`] JSON inline,
//! so a site whose wrapper never changed still re-serialized the whole
//! bundle into every compacted log generation, and N sites sharing one
//! induced template stored N copies.  The object store deduplicates by
//! content: a bundle is rendered to its canonical compact JSON, hashed
//! (FxHash64 over the raw bytes), and written to
//! `<root>/objects/<16 hex>.json` **once** — revision records then carry
//! only the 16-hex digest (see `registry::log`).
//!
//! Objects are immutable: a digest's file is never rewritten (a store of an
//! already-present digest is a no-op), so snapshots can hard-link the files
//! and replication can skip any digest the destination already has.
//! Unreferenced objects are garbage-collected by compaction, which knows
//! the set of digests still reachable from the segment files.
//!
//! Loads verify the digest over the raw bytes before parsing, so a
//! corrupted object is detected exactly like a corrupted log line — the
//! affected revision record fails validation and recovery stops its replay
//! prefix there.

use super::log::{checksum, RegistryError};
use super::shard::{sync_dir, write_atomic};
use std::path::{Path, PathBuf};
use wi_induction::json::parse_json;
use wi_induction::WrapperBundle;

/// Handle on a registry's `objects/` directory.
#[derive(Debug)]
pub struct ObjectStore {
    dir: PathBuf,
}

impl ObjectStore {
    /// The store under a registry root (no I/O; the directory is created on
    /// first write).
    pub fn open(root: &Path) -> ObjectStore {
        ObjectStore {
            dir: root.join("objects"),
        }
    }

    /// The directory holding the object files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of one object file.
    pub fn object_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.json"))
    }

    /// Stores a bundle, returning its content digest.  Idempotent: a digest
    /// already on disk is returned without touching the file (objects are
    /// immutable, so equality of digest implies equality of content).
    pub fn store(&self, bundle: &WrapperBundle) -> Result<u64, RegistryError> {
        let body = bundle.to_json_value().to_compact();
        let digest = checksum(&body);
        let path = self.object_path(digest);
        if path.exists() {
            return Ok(digest);
        }
        if !self.dir.exists() {
            std::fs::create_dir_all(&self.dir).map_err(|e| RegistryError::io(&self.dir, e))?;
            if let Some(parent) = self.dir.parent() {
                sync_dir(parent)?;
            }
        }
        write_atomic(&path, &body)?;
        Ok(digest)
    }

    /// Loads a bundle by digest, verifying the digest over the raw bytes
    /// before parsing.  The error is a bare message (like `decode_line`'s):
    /// the caller adds shard/line coordinates, because a missing or corrupt
    /// object invalidates the revision record that references it.
    pub fn load(&self, digest: u64) -> Result<WrapperBundle, String> {
        let path = self.object_path(digest);
        let body = std::fs::read_to_string(&path)
            .map_err(|e| format!("object {digest:016x} unreadable: {e}"))?;
        let computed = checksum(&body);
        if computed != digest {
            return Err(format!(
                "object {digest:016x} fails its content digest (computed {computed:016x})"
            ));
        }
        let value = parse_json(&body).map_err(|e| format!("object {digest:016x}: {e}"))?;
        WrapperBundle::from_json_value(&value).map_err(|e| format!("object {digest:016x}: {e}"))
    }

    /// Whether a digest is present.
    pub fn contains(&self, digest: u64) -> bool {
        self.object_path(digest).exists()
    }

    /// Every digest on disk, ascending.  Foreign files in the directory are
    /// ignored (same discipline as segment listing).
    pub fn list(&self) -> Result<Vec<u64>, RegistryError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(RegistryError::io(&self.dir, e)),
        };
        let mut digests = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::io(&self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".json") {
                if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    if let Ok(digest) = u64::from_str_radix(hex, 16) {
                        digests.push(digest);
                    }
                }
            }
        }
        digests.sort_unstable();
        Ok(digests)
    }

    /// Removes one object (compaction's garbage collection; the caller has
    /// proven the digest unreachable from every surviving segment line).
    pub fn remove(&self, digest: u64) -> Result<(), RegistryError> {
        let path = self.object_path(digest);
        std::fs::remove_file(&path).map_err(|e| RegistryError::io(&path, e))?;
        sync_dir(&self.dir)
    }

    /// `(object count, summed byte length)` — the `/metrics` gauges.
    pub fn stats(&self) -> (usize, u64) {
        let Ok(digests) = self.list() else {
            return (0, 0);
        };
        let mut bytes = 0u64;
        for digest in &digests {
            bytes += std::fs::metadata(self.object_path(*digest))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        (digests.len(), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_scoring::ScoringParams;

    fn bundle(label: &str) -> WrapperBundle {
        let doc = wi_dom::Document::parse(
            r#"<body><p class="x">a</p><p class="x">b</p><div>c</div></body>"#,
        )
        .unwrap();
        let targets = doc.elements_by_class("x");
        let wrapper = wi_induction::WrapperInducer::default()
            .try_induce_best(&doc, &targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label(label)
    }

    #[test]
    fn store_is_idempotent_and_load_verifies_content() {
        let root = std::env::temp_dir().join(format!("wi-objects-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ObjectStore::open(&root);
        let b = bundle("site-a");
        let digest = store.store(&b).unwrap();
        assert_eq!(store.store(&b).unwrap(), digest, "idempotent");
        assert_eq!(store.list().unwrap(), vec![digest]);
        let loaded = store.load(digest).unwrap();
        assert_eq!(
            loaded.to_json_value().to_compact(),
            b.to_json_value().to_compact()
        );
        // Distinct content gets a distinct object.
        let other = store.store(&bundle("site-b")).unwrap();
        assert_ne!(other, digest);
        assert_eq!(store.list().unwrap().len(), 2);
        // A flipped byte is detected at load time.
        let path = store.object_path(digest);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(digest).unwrap_err().contains("digest"));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
