//! Extraction-health verification: replaying a bundle against a snapshot and
//! scoring the result **without ground truth**.
//!
//! The verifier's only reference point is the *last-known-good* state
//! ([`LastKnownGood`]): what the wrapper extracted the last time it was
//! healthy.  Page data rotates naturally (a movie page shows a new rating
//! without the template changing), so raw text equality is deliberately a
//! diagnostic signal only; the *hard* health conditions are structural:
//!
//! * the page itself looks like a broken archive capture,
//! * extraction errors or comes back empty,
//! * the result cardinality drifts from the last-known-good count,
//! * the extracted nodes' tag shape diverges (a wrapper that used to select
//!   `span`s suddenly selects `div`s),
//! * an anchor attribute value named by the expression no longer occurs on
//!   any element of the page (checked through the tag index).

use serde::{Deserialize, Serialize};
use wi_dom::{Document, NodeId};
use wi_induction::{CompiledExtractor, Extractor, WrapperBundle};
use wi_xpath::{parse_query, EvalContext, NodeTest, Predicate, StringFunction, TextSource};

/// What the wrapper extracted the last time it was healthy — the reference
/// state all verification signals are computed against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LastKnownGood {
    /// The day of the healthy snapshot.
    pub day: i64,
    /// Number of nodes extracted.
    pub count: usize,
    /// Normalized text of each extracted node, in document order.
    pub texts: Vec<String>,
    /// Sorted, deduplicated tag names of the extracted nodes.
    pub tags: Vec<String>,
    /// Element count of the healthy document (broken-capture baseline).
    pub doc_elements: usize,
    /// Whether the extracted texts have ever been observed to change between
    /// healthy snapshots.  `false` means the target is template-stable (a
    /// "Next" link, a nav entry): any repair must reproduce the texts
    /// exactly.  `true` means the target carries rotating page data.
    /// Maintained by [`advance`](LastKnownGood::advance).
    pub rotates: bool,
    /// How many consecutive healthy captures have reproduced the same texts.
    /// Text-based repair vetoes only engage once stability is *evidenced*
    /// (two or more confirmations), not merely unrefuted.
    pub stable_observations: u32,
    /// Every attribute value present on the healthy document.  A renamed or
    /// redesigned anchor value is by definition *not* in here; candidate
    /// re-anchors that were already present are old neighbors, not renames.
    /// Shared behind an [`Arc`](std::sync::Arc): the set is captured once per
    /// healthy document and never mutated afterwards, so advancing the state
    /// every epoch bumps a refcount instead of cloning the whole census.
    pub attribute_values: std::sync::Arc<std::collections::BTreeSet<String>>,
    /// Carrier census of the bundle's attribute anchors: how many elements
    /// of the healthy document carried each anchored `(attribute, value)`.
    /// A rename moves the census to the new value; a wrong unique match
    /// does not (captured by [`capture_for`](LastKnownGood::capture_for)).
    pub anchor_carriers: Vec<AnchorCarrier>,
}

/// The carrier census of one attribute anchor at the last healthy snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorCarrier {
    /// The anchored attribute name.
    pub attribute: String,
    /// The anchored value.
    pub value: String,
    /// Elements carrying the value on the healthy document.
    pub count: usize,
    /// Consecutive healthy captures with an unchanged count (evidence that
    /// the carrier set is template-stable, not list churn).
    pub stable_observations: u32,
    /// The **neighborhood fingerprint**: normalized texts of the leaf
    /// elements that shared this anchor's carrier with the extracted nodes
    /// at capture time, extracted nodes excluded, sorted and deduplicated.
    /// For a labeled details row this is the label ("Director:") — the
    /// context that identifies *which* carrier of a repeated anchor value
    /// the expression actually went through, so a positionally-masked
    /// anchor surviving its block's removal can still be recognized as a
    /// removed target (see `DriftClassifier`).
    #[serde(default)]
    pub neighborhood: Vec<String>,
    /// Consecutive healthy captures with an unchanged neighborhood.  Like
    /// text stability, the fingerprint is only *evidence* once reproduced
    /// (two or more confirmations) — list churn inside a carrier must not
    /// trigger removal verdicts.
    #[serde(default)]
    pub neighborhood_stable: u32,
}

impl LastKnownGood {
    /// Captures the last-known-good state from a healthy extraction.
    pub fn capture(doc: &Document, day: i64, nodes: &[NodeId]) -> LastKnownGood {
        let mut tags: Vec<String> = nodes
            .iter()
            .filter_map(|&n| doc.tag_name(n).map(str::to_string))
            .collect();
        tags.sort();
        tags.dedup();
        LastKnownGood {
            day,
            count: nodes.len(),
            texts: nodes.iter().map(|&n| doc.normalized_text(n)).collect(),
            tags,
            doc_elements: doc.element_count(),
            rotates: false,
            stable_observations: 0,
            // The document's shared census (see `wi_dom::attrs`): a refcount
            // bump here instead of a per-capture set rebuild.
            attribute_values: doc.attribute_value_census().clone(),
            anchor_carriers: Vec::new(),
        }
    }

    /// Like [`capture`](LastKnownGood::capture), additionally recording the
    /// carrier census of every attribute anchor of `bundle`.
    pub fn capture_for(
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        nodes: &[NodeId],
    ) -> LastKnownGood {
        let mut anchors: Vec<(String, String)> = Vec::new();
        for entry in &bundle.entries {
            let Ok(query) = parse_query(&entry.expression) else {
                continue;
            };
            for step in &query.steps {
                for predicate in &step.predicates {
                    if let Predicate::StringCompare {
                        func: StringFunction::Equals,
                        source: TextSource::Attribute(name),
                        value,
                    } = predicate
                    {
                        let pair = (name.clone(), value.clone());
                        if !anchors.contains(&pair) {
                            anchors.push(pair);
                        }
                    }
                }
            }
        }
        Self::capture_with_anchors(doc, day, nodes, anchors)
    }

    /// The body of [`capture_for`](LastKnownGood::capture_for) with the
    /// anchor pairs already extracted (the incremental loop keeps them
    /// parsed once per revision in its [`CompiledVerify`]).  Both censuses
    /// come from the document's attribute index (see `wi_dom::attrs`): the
    /// value census is a shared `Arc` clone and each carrier count one
    /// integer-keyed probe, where the naive composition walked the document
    /// once for the census and once per anchor.
    pub(crate) fn capture_with_anchors(
        doc: &Document,
        day: i64,
        nodes: &[NodeId],
        anchors: Vec<(String, String)>,
    ) -> LastKnownGood {
        let mut tags: Vec<String> = nodes
            .iter()
            .filter_map(|&n| doc.tag_name(n).map(str::to_string))
            .collect();
        tags.sort();
        tags.dedup();
        LastKnownGood {
            day,
            count: nodes.len(),
            texts: nodes.iter().map(|&n| doc.normalized_text(n)).collect(),
            tags,
            doc_elements: doc.element_count(),
            rotates: false,
            stable_observations: 0,
            attribute_values: doc.attribute_value_census().clone(),
            anchor_carriers: anchors
                .into_iter()
                .map(|(attribute, value)| {
                    let count = doc.carrier_count(&attribute, &value);
                    let neighborhood = capture_neighborhood(doc, &attribute, &value, nodes);
                    AnchorCarrier {
                        attribute,
                        value,
                        count,
                        stable_observations: 0,
                        neighborhood,
                        neighborhood_stable: 0,
                    }
                })
                .collect(),
        }
    }

    /// Rolls the state forward to a newer healthy capture, preserving what
    /// the history has taught: once texts have been seen to rotate, the
    /// target is known to carry rotating data forever; identical texts add
    /// one stability confirmation.
    pub fn advance(previous: &LastKnownGood, mut next: LastKnownGood) -> LastKnownGood {
        if previous.rotates || previous.texts != next.texts {
            next.rotates = true;
            next.stable_observations = 0;
        } else {
            next.stable_observations = previous.stable_observations + 1;
        }
        for carrier in &mut next.anchor_carriers {
            if let Some(prev) = previous
                .anchor_carriers
                .iter()
                .find(|p| p.attribute == carrier.attribute && p.value == carrier.value)
            {
                if prev.count == carrier.count {
                    carrier.stable_observations = prev.stable_observations + 1;
                }
                if prev.neighborhood == carrier.neighborhood {
                    carrier.neighborhood_stable = prev.neighborhood_stable + 1;
                }
            }
        }
        next
    }

    /// Rolls the state forward across a snapshot whose document is
    /// content-identical to the one this state was captured from, under the
    /// same bundle revision.  In that situation a fresh
    /// [`capture_for`](LastKnownGood::capture_for) reproduces every field of
    /// `self` (texts, tags, counts, censuses — all pure functions of the
    /// document and the bundle), so
    /// `advance(self, capture_for(bundle, doc, day, nodes))` reduces to:
    /// the day moves, the stability counters tick, nothing else changes.
    /// This method computes that result without re-walking the document;
    /// callers must guard on the fingerprint precondition (see
    /// `IncrementalState::lkg_unchanged`).
    pub fn advance_identical(&self, day: i64) -> LastKnownGood {
        let mut next = self.clone();
        next.day = day;
        if self.rotates {
            next.stable_observations = 0;
        } else {
            next.stable_observations = self.stable_observations + 1;
        }
        for carrier in &mut next.anchor_carriers {
            // Identical document ⇒ identical carrier census and identical
            // neighborhood ⇒ every carrier confirms once, exactly as
            // `advance` would decide.
            carrier.stable_observations += 1;
            carrier.neighborhood_stable += 1;
        }
        next
    }

    /// Whether the target's texts are *evidenced* to be template-stable:
    /// never seen rotating, and reproduced across at least two healthy
    /// captures.
    pub fn texts_evidently_stable(&self) -> bool {
        !self.rotates && self.stable_observations >= 2
    }

    /// The recorded carrier census of an anchor, if the census has it.
    pub fn anchor_census(&self, attribute: &str, value: &str) -> Option<&AnchorCarrier> {
        self.anchor_carriers
            .iter()
            .find(|c| c.attribute == attribute && c.value == value)
    }
}

/// How many elements of `doc` carry `value` under attribute `attribute`.
/// One attribute-index probe (see `wi_dom::attrs`) minus the synthetic root,
/// which this census has never included.
pub(crate) fn count_carriers(doc: &Document, attribute: &str, value: &str) -> usize {
    let total = doc.carrier_count(attribute, value);
    total - usize::from(doc.attribute(doc.root(), attribute) == Some(value))
}

/// The neighborhood fingerprint of one attribute anchor: the normalized
/// texts of the *leaf* elements that share a carrier of `(attribute,
/// value)` with the extracted nodes, the extracted subtrees themselves
/// excluded, sorted and deduplicated.
///
/// Carriers are taken from the extracted nodes' own ancestor-or-self
/// chains, not from the whole document: of a repeated anchor value
/// (`div[@class="blk"]` appearing five times) only the carrier the
/// expression actually descended through contributes context.  A leaf is
/// an element with no element children; leaves inside an extracted
/// subtree — including an extracted node that is itself a carrier — are
/// skipped, because the target's own text rotates and must never anchor
/// the fingerprint.
pub(crate) fn capture_neighborhood(
    doc: &Document,
    attribute: &str,
    value: &str,
    nodes: &[NodeId],
) -> Vec<String> {
    let extracted: std::collections::BTreeSet<NodeId> = nodes.iter().copied().collect();
    let mut carriers: Vec<NodeId> = Vec::new();
    for &node in nodes {
        let mut cursor = Some(node);
        while let Some(n) = cursor {
            if doc.is_element(n) && doc.attribute(n, attribute) == Some(value) {
                carriers.push(n);
            }
            cursor = doc.parent(n);
        }
    }
    carriers.sort();
    carriers.dedup();

    let mut texts: Vec<String> = Vec::new();
    for &carrier in &carriers {
        'leaves: for leaf in doc.descendants_or_self(carrier) {
            if !doc.is_element(leaf) || doc.children(leaf).any(|c| doc.is_element(c)) {
                continue;
            }
            // Walk back up to the carrier: a hop through an extracted node
            // (the carrier itself included) disqualifies the leaf.
            let mut cursor = Some(leaf);
            while let Some(n) = cursor {
                if extracted.contains(&n) {
                    continue 'leaves;
                }
                if n == carrier {
                    break;
                }
                cursor = doc.parent(n);
            }
            let text = doc.normalized_text(leaf);
            if !text.is_empty() {
                texts.push(text);
            }
        }
    }
    texts.sort();
    texts.dedup();
    texts
}

/// Whether a recorded neighborhood fingerprint is still present: every
/// recorded text must reappear as the normalized text of some element
/// inside *some* carrier of `(attribute, value)` on this document (the
/// carrier itself included).  An empty fingerprint is vacuously present —
/// it carries no evidence either way.
pub(crate) fn neighborhood_present(
    doc: &Document,
    attribute: &str,
    value: &str,
    texts: &[String],
) -> bool {
    if texts.is_empty() {
        return true;
    }
    let carriers: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n) && doc.attribute(n, attribute) == Some(value))
        .collect();
    texts.iter().all(|text| {
        carriers.iter().any(|&carrier| {
            doc.descendants_or_self(carrier)
                .any(|n| doc.is_element(n) && doc.normalized_text(n) == *text)
        })
    })
}

/// One observation about a replayed extraction.  Severe signals make the
/// report unhealthy; diagnostic ones sharpen classification and repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthSignal {
    /// The extractor itself failed (corrupt artifact, empty bundle, …).
    ExtractionFailed(
        /// Display form of the underlying `ExtractError`.
        String,
    ),
    /// The snapshot looks like a broken archive capture: far fewer elements
    /// than the last healthy snapshot (or fewer than the absolute floor).
    BrokenPage {
        /// Elements on this snapshot.
        elements: usize,
        /// Elements on the last healthy snapshot (0 when unknown).
        baseline: usize,
    },
    /// The wrapper selected nothing.
    EmptyResult,
    /// The result count drifted beyond tolerance from the last-known-good
    /// count.
    CardinalityDrift {
        /// Last-known-good count.
        expected: usize,
        /// Count on this snapshot.
        got: usize,
    },
    /// The extracted nodes' tag set differs from the last-known-good one.
    ShapeDivergence {
        /// Last-known-good sorted tag set.
        expected: Vec<String>,
        /// Sorted tag set on this snapshot.
        got: Vec<String>,
    },
    /// A positionally-masked anchor's carrier count moved away from its
    /// historically stable census: `div[@class="person"][1]` keeps
    /// extracting *one* node even when the carrier it used to select
    /// disappears, so the extraction silently shifts to a neighbor.  Only
    /// raised when the census was stable for at least two healthy captures
    /// (list churn legitimately moves carrier counts around).
    AnchorCensusDrift {
        /// The anchored attribute name.
        attribute: String,
        /// The anchored value.
        value: String,
        /// The historically stable carrier count.
        expected: usize,
        /// The carrier count on this snapshot.
        got: usize,
    },
    /// An anchor value used by an expression no longer occurs anywhere on
    /// the page (diagnostic: points the classifier at the broken step).
    AnchorMissing {
        /// Index of the bundle entry.
        entry: usize,
        /// Index of the step inside the entry's expression.
        step: usize,
        /// The anchored attribute name, or `"."` for a text anchor.
        attribute: String,
        /// The value that disappeared.
        value: String,
    },
    /// Jaccard similarity of extracted texts against the last-known-good
    /// texts (diagnostic: rotating page data legitimately drives this to 0).
    TextDivergence {
        /// `|old ∩ new| / |old ∪ new|` over exact normalized texts.
        similarity: f64,
    },
}

impl HealthSignal {
    /// Whether this signal alone makes the snapshot unhealthy.
    pub fn is_severe(&self) -> bool {
        !matches!(
            self,
            HealthSignal::AnchorMissing { .. } | HealthSignal::TextDivergence { .. }
        )
    }
}

/// The verifier's verdict for one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthReport {
    /// The snapshot day.
    pub day: i64,
    /// What the wrapper extracted (empty on extraction failure).
    pub extracted: Vec<NodeId>,
    /// All observations, severe first.
    pub signals: Vec<HealthSignal>,
}

impl HealthReport {
    /// `true` when no severe signal fired: the wrapper still works.
    pub fn healthy(&self) -> bool {
        !self.signals.iter().any(HealthSignal::is_severe)
    }

    /// `true` when the snapshot itself is a broken capture — the wrapper is
    /// not at fault and must not be repaired against this page.
    pub fn page_broken(&self) -> bool {
        self.signals
            .iter()
            .any(|s| matches!(s, HealthSignal::BrokenPage { .. }))
    }
}

/// Tuning knobs for verification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifyConfig {
    /// A snapshot with fewer elements than this is a broken capture even
    /// without a baseline.
    pub min_page_elements: usize,
    /// A snapshot with fewer than `ratio × baseline` elements is a broken
    /// capture.
    pub broken_page_ratio: f64,
    /// Allowed relative count drift for multi-node wrappers (single-node
    /// wrappers must keep extracting exactly one node).
    pub cardinality_slack: f64,
    /// Whether to probe anchor attribute values through the tag index.
    pub check_anchors: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            min_page_elements: 8,
            broken_page_ratio: 0.1,
            cardinality_slack: 0.5,
            check_anchors: true,
        }
    }
}

/// Replays bundles against snapshots and reports extraction health.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    /// The verification thresholds.
    pub config: VerifyConfig,
}

impl Verifier {
    /// Creates a verifier with explicit thresholds.
    pub fn new(config: VerifyConfig) -> Verifier {
        Verifier { config }
    }

    /// Checks one snapshot, allocating a fresh evaluation context.
    pub fn check(
        &self,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
    ) -> HealthReport {
        self.check_with(&mut EvalContext::new(), bundle, doc, day, lkg)
    }

    /// Checks one snapshot, reusing the caller's evaluation context (the
    /// batch driver passes one per worker).
    pub fn check_with(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
    ) -> HealthReport {
        self.check_with_compiled(cx, &CompiledVerify::new(bundle), doc, day, lkg)
    }

    /// Checks one snapshot against a bundle compiled once with
    /// [`CompiledVerify::new`] — the incremental loop replays the same
    /// revision over every snapshot of a timeline, so the expressions parse
    /// once per revision instead of twice per epoch.
    pub(crate) fn check_with_compiled(
        &self,
        cx: &mut EvalContext,
        compiled: &CompiledVerify,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
    ) -> HealthReport {
        self.check_with_lazy(cx, compiled, doc, day, lkg, |cx| compiled.extract(cx, doc))
    }

    /// The body of [`check_with_compiled`](Verifier::check_with_compiled)
    /// with the extraction step abstracted out: `extract` runs only when the
    /// page passes the broken-capture gate, and the incremental loop
    /// substitutes a closure that replays a memoized extraction (a pure
    /// function of document content and bundle revision) instead of
    /// re-evaluating the expressions.
    pub(crate) fn check_with_lazy(
        &self,
        cx: &mut EvalContext,
        compiled: &CompiledVerify,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        extract: impl FnOnce(&mut EvalContext) -> Result<Vec<NodeId>, String>,
    ) -> HealthReport {
        let mut signals = Vec::new();

        // Broken capture first: nothing below is meaningful on one.
        let elements = doc.element_count();
        let baseline = lkg.map(|l| l.doc_elements).unwrap_or(0);
        let floor = (baseline as f64 * self.config.broken_page_ratio).ceil() as usize;
        if elements < self.config.min_page_elements || (baseline > 0 && elements < floor) {
            signals.push(HealthSignal::BrokenPage { elements, baseline });
            return HealthReport {
                day,
                extracted: Vec::new(),
                signals,
            };
        }

        let extracted = match extract(cx) {
            Ok(nodes) => nodes,
            Err(message) => {
                signals.push(HealthSignal::ExtractionFailed(message));
                return HealthReport {
                    day,
                    extracted: Vec::new(),
                    signals,
                };
            }
        };

        if extracted.is_empty() {
            signals.push(HealthSignal::EmptyResult);
        } else if let Some(lkg) = lkg {
            let got = extracted.len();
            let drifted = if lkg.count <= 1 {
                got != lkg.count
            } else {
                // Lists legitimately gain/lose entries (length churn), but a
                // multi-node wrapper collapsing to a single node has almost
                // certainly latched onto the wrong neighborhood.
                let slack = (lkg.count as f64 * self.config.cardinality_slack).max(1.0);
                (got as f64 - lkg.count as f64).abs() > slack || got < 2
            };
            if drifted {
                signals.push(HealthSignal::CardinalityDrift {
                    expected: lkg.count,
                    got,
                });
            }

            let mut tags: Vec<String> = extracted
                .iter()
                .filter_map(|&n| doc.tag_name(n).map(str::to_string))
                .collect();
            tags.sort();
            tags.dedup();
            if tags != lkg.tags {
                signals.push(HealthSignal::ShapeDivergence {
                    expected: lkg.tags.clone(),
                    got: tags,
                });
            }

            signals.push(HealthSignal::TextDivergence {
                similarity: text_similarity(
                    &lkg.texts,
                    &extracted
                        .iter()
                        .map(|&n| doc.normalized_text(n))
                        .collect::<Vec<_>>(),
                ),
            });
        }

        if self.config.check_anchors {
            let already_unhealthy = signals.iter().any(HealthSignal::is_severe);
            probe_anchors(&compiled.probes, doc, lkg, already_unhealthy, &mut signals);
        }

        signals.sort_by_key(|s| !s.is_severe());
        HealthReport {
            day,
            extracted,
            signals,
        }
    }
}

/// Jaccard similarity over exact normalized texts.
fn text_similarity(old: &[String], new: &[String]) -> f64 {
    use std::collections::HashSet;
    let a: HashSet<&str> = old.iter().map(String::as_str).collect();
    let b: HashSet<&str> = new.iter().map(String::as_str).collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(&b).count();
    let union = a.union(&b).count();
    inter as f64 / union.max(1) as f64
}

/// One deduplicated anchor of a bundle, ready for probing.
struct AnchorProbe {
    /// First occurrence, for the emitted signal's coordinates.
    entry: usize,
    /// First occurrence's step index.
    step: usize,
    /// The node test of the (first) step carrying the anchor.
    test: NodeTest,
    func: StringFunction,
    source: TextSource,
    value: String,
    /// Whether any occurrence sits in a positionally-filtered step.
    positional: bool,
}

/// A bundle revision's verification plan, parsed once: the compiled
/// extractor (or the compile error it will keep reporting) and the
/// deduplicated anchor probes.  Build one per revision and replay it over
/// every snapshot; `check_with` builds a throwaway one per call for API
/// compatibility.
pub(crate) struct CompiledVerify {
    /// The parsed extractor; `Err` carries the message `check_with` has
    /// always reported for an uncompilable bundle.
    extractor: Result<CompiledExtractor, String>,
    /// Deduplicated equality/prefix anchors of all entries.
    probes: Vec<AnchorProbe>,
    /// Deduplicated `(attribute, value)` equality-anchor pairs, in first-
    /// occurrence order — exactly the census list
    /// [`LastKnownGood::capture_for`] re-parses the entries for on every
    /// capture.
    pub(crate) anchor_pairs: Vec<(String, String)>,
}

impl CompiledVerify {
    /// Parses `bundle`'s expressions into the reusable verification plan.
    pub(crate) fn new(bundle: &WrapperBundle) -> CompiledVerify {
        let mut probes: Vec<AnchorProbe> = Vec::new();
        let mut anchor_pairs: Vec<(String, String)> = Vec::new();
        for (entry_idx, entry) in bundle.entries.iter().enumerate() {
            let Ok(query) = parse_query(&entry.expression) else {
                continue; // an unparsable entry surfaces as ExtractionFailed
            };
            for (step_idx, step) in query.steps.iter().enumerate() {
                let positional = step.predicates.iter().any(Predicate::is_positional);
                for predicate in &step.predicates {
                    let Predicate::StringCompare {
                        func,
                        source,
                        value,
                    } = predicate
                    else {
                        continue;
                    };
                    if let (StringFunction::Equals, TextSource::Attribute(name)) = (func, source) {
                        let pair = (name.clone(), value.clone());
                        if !anchor_pairs.contains(&pair) {
                            anchor_pairs.push(pair);
                        }
                    }
                    if let Some(existing) = probes.iter_mut().find(|p| {
                        p.func == *func
                            && p.source == *source
                            && p.value == *value
                            && p.test == step.test
                    }) {
                        existing.positional |= positional;
                    } else {
                        probes.push(AnchorProbe {
                            entry: entry_idx,
                            step: step_idx,
                            test: step.test.clone(),
                            func: *func,
                            source: source.clone(),
                            value: value.clone(),
                            positional,
                        });
                    }
                }
            }
        }
        CompiledVerify {
            extractor: bundle.compile_extractor().map_err(|e| e.to_string()),
            probes,
            anchor_pairs,
        }
    }

    /// Runs the compiled extractor, reporting either error the uncompiled
    /// path has always reported (compile failure or evaluation failure) as
    /// the `ExtractionFailed` message.
    pub(crate) fn extract(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
    ) -> Result<Vec<NodeId>, String> {
        match &self.extractor {
            Ok(extractor) => extractor
                .extract_with(cx, doc, doc.root())
                .map_err(|e| e.to_string()),
            Err(message) => Err(message.clone()),
        }
    }
}

/// Emits an [`HealthSignal::AnchorMissing`] for every equality/prefix anchor
/// of every stored expression whose value no longer occurs on the page, and
/// an [`HealthSignal::AnchorCensusDrift`] for every positionally-masked
/// anchor whose carrier count left its historically stable census.
///
/// Anchors were deduplicated across entries and steps when the probe list
/// was built (ensemble members typically share anchors), so each distinct
/// anchor is scanned — and signalled — at most once.  Attribute anchors are
/// probed through the tag index (`div[@class="x"]` only scans `div`
/// elements); text anchors need a per-element normalized-text scan, which is
/// the one expensive probe, so it only runs on snapshots some other signal
/// already marked unhealthy (it is diagnostic, never the deciding signal).
fn probe_anchors(
    probes: &[AnchorProbe],
    doc: &Document,
    lkg: Option<&LastKnownGood>,
    already_unhealthy: bool,
    signals: &mut Vec<HealthSignal>,
) {
    for probe in probes {
        // Census drift: only meaningful for attribute anchors inside
        // positionally-filtered steps, where the extraction count cannot
        // reflect a carrier change.
        if probe.positional {
            if let (Some(lkg), StringFunction::Equals, TextSource::Attribute(name)) =
                (lkg, probe.func, &probe.source)
            {
                if let Some(census) = lkg.anchor_census(name, &probe.value) {
                    if census.stable_observations >= 2 {
                        let got = count_carriers(doc, name, &probe.value);
                        if got != census.count {
                            signals.push(HealthSignal::AnchorCensusDrift {
                                attribute: name.clone(),
                                value: probe.value.clone(),
                                expected: census.count,
                                got,
                            });
                        }
                    }
                }
            }
        }
        let present = match &probe.source {
            TextSource::Attribute(name) => {
                attribute_value_occurs(doc, &probe.test, name, &probe.value, probe.func)
            }
            TextSource::NormalizedText => {
                if !already_unhealthy {
                    continue; // diagnostic only; skip the expensive scan
                }
                text_anchor_occurs(doc, &probe.value, probe.func)
            }
        };
        if !present {
            signals.push(HealthSignal::AnchorMissing {
                entry: probe.entry,
                step: probe.step,
                attribute: match &probe.source {
                    TextSource::Attribute(name) => name.clone(),
                    TextSource::NormalizedText => ".".to_string(),
                },
                value: probe.value.clone(),
            });
        }
    }
}

/// Whether any element's normalized text satisfies the comparison against
/// `value` — the semantic presence test for a template-label anchor
/// (`doc.contains_string` would also match substrings of unrelated text).
pub(crate) fn text_anchor_occurs(doc: &Document, value: &str, func: StringFunction) -> bool {
    doc.descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .any(|n| func.apply(&doc.normalized_text(n), value))
}

/// Whether any element matching the step's node test carries `value` under
/// attribute `name` (per the comparison function).
pub(crate) fn attribute_value_occurs(
    doc: &Document,
    test: &NodeTest,
    name: &str,
    value: &str,
    func: StringFunction,
) -> bool {
    let matches = |n: NodeId| {
        doc.attribute(n, name)
            .map(|v| func.apply(v, value))
            .unwrap_or(false)
    };
    match test {
        NodeTest::Tag(tag) => doc.elements_by_tag_slice(tag).iter().copied().any(matches),
        _ => doc
            .descendants(doc.root())
            .filter(|&n| doc.is_element(n))
            .any(matches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_induction::WrapperInducer;
    use wi_scoring::ScoringParams;

    fn page(class: &str, values: &[&str]) -> Document {
        let items: String = values
            .iter()
            .map(|v| format!(r#"<span class="{class}">{v}</span>"#))
            .collect();
        Document::parse(&format!(
            r#"<html><body><div id="main"><h4>Prices:</h4>{items}</div>
               <div id="side"><ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></div>
               </body></html>"#
        ))
        .unwrap()
    }

    fn induce_bundle(doc: &Document, targets: &[NodeId]) -> WrapperBundle {
        let wrapper = WrapperInducer::default()
            .try_induce_best(doc, targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
    }

    #[test]
    fn healthy_extraction_reports_healthy_and_captures_lkg() {
        let doc = page("p", &["10", "20"]);
        let targets = doc.elements_by_class("p");
        let bundle = induce_bundle(&doc, &targets);
        let verifier = Verifier::default();
        let report = verifier.check(&bundle, &doc, 0, None);
        assert!(report.healthy());
        assert_eq!(report.extracted, targets);

        let lkg = LastKnownGood::capture(&doc, 0, &report.extracted);
        assert_eq!(lkg.count, 2);
        assert_eq!(lkg.tags, vec!["span".to_string()]);
        assert_eq!(lkg.texts, vec!["10", "20"]);

        // Rotated content on the same template stays healthy.
        let rotated = page("p", &["30", "40"]);
        let report2 = verifier.check(&bundle, &rotated, 20, Some(&lkg));
        assert!(report2.healthy(), "signals: {:?}", report2.signals);
        assert!(report2.signals.iter().any(
            |s| matches!(s, HealthSignal::TextDivergence { similarity } if *similarity == 0.0)
        ));
    }

    #[test]
    fn renamed_anchor_is_flagged_empty_and_anchor_missing() {
        let doc = page("p", &["10", "20"]);
        let targets = doc.elements_by_class("p");
        let bundle = induce_bundle(&doc, &targets);
        let lkg = LastKnownGood::capture(&doc, 0, &targets);

        let renamed = page("price", &["10", "20"]);
        let report = Verifier::default().check(&bundle, &renamed, 20, Some(&lkg));
        assert!(!report.healthy());
        assert!(report.signals.contains(&HealthSignal::EmptyResult));
        assert!(report
            .signals
            .iter()
            .any(|s| matches!(s, HealthSignal::AnchorMissing { .. })));
        assert!(!report.page_broken());
    }

    #[test]
    fn broken_capture_is_flagged_as_page_broken() {
        let doc = page("p", &["10"]);
        let targets = doc.elements_by_class("p");
        let bundle = induce_bundle(&doc, &targets);
        let lkg = LastKnownGood::capture(&doc, 0, &targets);

        let broken =
            Document::parse("<html><body><p>Page cannot be crawled or displayed</p></body></html>")
                .unwrap();
        let report = Verifier::default().check(&bundle, &broken, 40, Some(&lkg));
        assert!(!report.healthy());
        assert!(report.page_broken());
    }

    #[test]
    fn cardinality_and_shape_drift_are_severe() {
        let doc = page("p", &["10", "20", "30", "40"]);
        let targets = doc.elements_by_class("p");
        let bundle = induce_bundle(&doc, &targets);
        let lkg = LastKnownGood::capture(&doc, 0, &targets);
        let verifier = Verifier::default();

        // Dropping one of four items stays within the multi-node slack …
        let fewer = page("p", &["10", "20", "30"]);
        assert!(verifier.check(&bundle, &fewer, 20, Some(&lkg)).healthy());

        // … losing three of four does not.
        let collapsed = page("p", &["10"]);
        let report = verifier.check(&bundle, &collapsed, 40, Some(&lkg));
        assert!(!report.healthy());
        assert!(report.signals.iter().any(|s| matches!(
            s,
            HealthSignal::CardinalityDrift {
                expected: 4,
                got: 1
            }
        )));

        // A single-node wrapper must keep extracting exactly one node.
        let single = page("p", &["10"]);
        let single_targets = single.elements_by_class("p");
        let single_bundle = induce_bundle(&single, &single_targets);
        let single_lkg = LastKnownGood::capture(&single, 0, &single_targets);
        let doubled = page("p", &["10", "20"]);
        let report = verifier.check(&single_bundle, &doubled, 20, Some(&single_lkg));
        assert!(!report.healthy());
    }

    #[test]
    fn text_similarity_is_jaccard() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "z".to_string()];
        assert!((text_similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(text_similarity(&[], &[]), 1.0);
        assert_eq!(text_similarity(&a, &a), 1.0);
    }
}
