//! Repair policies: re-anchoring in place, or re-inducing from harvested
//! last-known-good values.
//!
//! See the crate docs for the repair-policy contract.  In short: re-anchor
//! first (it preserves the expression's structure), re-induce as fallback,
//! validate every candidate against the snapshot that exposed the break, and
//! never install a repair that does not restore a healthy extraction.

use crate::drift::{DriftReport, FixKind};
use crate::incremental::{IncrementalState, InduceLookup};
use crate::verify::{LastKnownGood, Verifier};
use serde::{Deserialize, Serialize};
use wi_dom::{Document, NodeId};
use wi_induction::{BundleEntry, WrapperBundle, WrapperInducer};
use wi_xpath::EvalContext;

/// How a repaired bundle came to be.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Anchors were substituted in place; the edit descriptions are
    /// human-readable (`@class "a" -> "b"`).
    Reanchored(
        /// One description per substitution.
        Vec<String>,
    ),
    /// The bundle was re-induced from values harvested on the evolved page.
    Reinduced {
        /// How many target nodes the value harvest annotated.
        harvested: usize,
    },
}

impl RepairAction {
    /// A short provenance string for the bundle's metadata.
    pub fn provenance(&self, day: i64) -> String {
        match self {
            RepairAction::Reanchored(edits) => {
                format!("day {day}: re-anchored {}", edits.join(", "))
            }
            RepairAction::Reinduced { harvested } => {
                format!("day {day}: re-induced from {harvested} harvested value(s)")
            }
        }
    }
}

/// A successfully validated repair.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// What was done.
    pub action: RepairAction,
    /// The replacement bundle (same label, `revision + 1`).
    pub bundle: WrapperBundle,
    /// What the replacement extracts on the snapshot that exposed the break.
    pub extracted: Vec<NodeId>,
}

/// Which repair policies are enabled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Substitute re-validated anchors in place.
    pub reanchor: bool,
    /// Re-induce from harvested last-known-good values when re-anchoring is
    /// not possible.
    pub reinduce: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            reanchor: true,
            reinduce: true,
        }
    }
}

/// Applies repair policies to flagged bundles.
#[derive(Debug, Clone, Default)]
pub struct Repairer {
    /// Enabled policies.
    pub config: RepairConfig,
    /// Validates candidate repairs against the breaking snapshot.
    pub verifier: Verifier,
}

impl Repairer {
    /// Creates a repairer with explicit policies (validation uses the given
    /// verifier's thresholds).
    pub fn new(config: RepairConfig, verifier: Verifier) -> Repairer {
        Repairer { config, verifier }
    }

    /// Attempts to repair `bundle` against the snapshot that exposed the
    /// break, allocating a fresh evaluation context.
    pub fn repair(
        &self,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        drift: &DriftReport,
        inducer: &WrapperInducer,
    ) -> Option<RepairOutcome> {
        self.repair_with(
            &mut EvalContext::new(),
            bundle,
            doc,
            day,
            lkg,
            drift,
            inducer,
        )
    }

    /// Like [`repair`](Repairer::repair), reusing the caller's evaluation
    /// context.
    #[allow(clippy::too_many_arguments)]
    pub fn repair_with(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        drift: &DriftReport,
        inducer: &WrapperInducer,
    ) -> Option<RepairOutcome> {
        self.repair_with_cached(cx, bundle, doc, day, lkg, drift, inducer, None)
    }

    /// Like [`repair_with`](Repairer::repair_with), threading the
    /// maintenance loop's incremental state so repeated re-induction
    /// attempts against recurring page shapes replay their memoized outcome
    /// (including memoized *failure* — a page shape that defeated induction
    /// once will defeat it again).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn repair_with_cached(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        drift: &DriftReport,
        inducer: &WrapperInducer,
        inc: Option<&mut IncrementalState>,
    ) -> Option<RepairOutcome> {
        if self.config.reanchor {
            if let Some(outcome) = self.try_reanchor(cx, bundle, doc, day, lkg, drift) {
                return Some(outcome);
            }
        }
        if self.config.reinduce {
            if let Some(outcome) = self.try_reinduce_cached(cx, bundle, doc, day, lkg, inducer, inc)
            {
                return Some(outcome);
            }
        }
        None
    }

    /// Memoizing front for [`try_reinduce`](Repairer::try_reinduce).  The
    /// re-induction outcome is a pure function of the document content and
    /// the harvest source (`lkg.texts`, `lkg.count`): induction, the
    /// majority rule and validation read nothing else, and
    /// [`WrapperBundle::revised`] replaces the entries wholesale, so the
    /// current bundle only contributes label/params/revision — which are
    /// re-applied on every hit.
    #[allow(clippy::too_many_arguments)]
    fn try_reinduce_cached(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        inducer: &WrapperInducer,
        mut inc: Option<&mut IncrementalState>,
    ) -> Option<RepairOutcome> {
        let key = match (inc.as_ref(), lkg) {
            (Some(_), Some(lkg)) => Some(IncrementalState::induce_key(doc.content_hash(), lkg)),
            _ => None,
        };
        if let (Some(state), Some(key)) = (inc.as_deref_mut(), key) {
            match state.induce_lookup(key, doc) {
                InduceLookup::Hit(None) => return None,
                InduceLookup::Hit(Some((entries, harvested, extracted))) => {
                    let action = RepairAction::Reinduced { harvested };
                    let candidate = bundle.revised(entries, action.provenance(day));
                    return Some(RepairOutcome {
                        action,
                        bundle: candidate,
                        extracted,
                    });
                }
                InduceLookup::Miss => {}
            }
        }
        let outcome = self.try_reinduce(cx, bundle, doc, day, lkg, inducer);
        if let (Some(state), Some(key)) = (inc, key) {
            let memo = outcome.as_ref().map(|o| {
                let harvested = match &o.action {
                    RepairAction::Reinduced { harvested } => *harvested,
                    RepairAction::Reanchored(_) => {
                        unreachable!("try_reinduce only produces Reinduced")
                    }
                };
                (
                    o.bundle.entries.as_slice(),
                    harvested,
                    o.extracted.as_slice(),
                )
            });
            state.induce_admit(key, doc, memo);
        }
        outcome
    }

    /// Installs the classifier's validated substitutions: every entry with a
    /// fixed expression is rewritten, the rest keep their expression (an
    /// ensemble member that still works stays untouched).
    fn try_reanchor(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        drift: &DriftReport,
    ) -> Option<RepairOutcome> {
        if !drift.repairable_in_place() {
            return None;
        }
        let mut entries: Vec<BundleEntry> = bundle.entries.clone();
        let mut edits: Vec<String> = Vec::new();
        for diagnosis in &drift.entries {
            let Some(fixed) = &diagnosis.fixed else {
                continue;
            };
            if diagnosis.fixes.is_empty() {
                continue; // the entry was acceptable as-is
            }
            entries[diagnosis.entry].expression = fixed.to_string();
            for fix in &diagnosis.fixes {
                edits.push(match &fix.kind {
                    FixKind::Reanchor {
                        attribute,
                        from,
                        to,
                    } => format!("@{attribute} {from:?} -> {to:?}"),
                    FixKind::Reposition { from, to } => {
                        format!("position [{from}] -> [{to}]")
                    }
                });
            }
        }
        let action = RepairAction::Reanchored(edits);
        let candidate = bundle.revised(entries, action.provenance(day));
        self.validate(cx, candidate, doc, day, lkg, action)
    }

    /// Harvests the last-known-good extraction values on the evolved page
    /// and re-runs induction over them.
    fn try_reinduce(
        &self,
        cx: &mut EvalContext,
        bundle: &WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        inducer: &WrapperInducer,
    ) -> Option<RepairOutcome> {
        let lkg = lkg?;
        let (wrapper, targets) = inducer.try_induce_from_texts(doc, &lkg.texts).ok()?;
        // The harvest must re-identify the *bulk* of the last-known-good
        // extraction.  A single coincidental text match elsewhere on the
        // page (a nav entry that happens to equal one extracted value) is
        // not evidence the target survived — installing a wrapper over it
        // would hijack an unrelated element and block retirement.
        if targets.len() * 2 < lkg.count.max(1) || targets.len() > lkg.count * 2 {
            return None;
        }
        let action = RepairAction::Reinduced {
            harvested: targets.len(),
        };
        let entries = vec![BundleEntry {
            expression: wrapper.expression(),
            counts: wrapper.instance.counts,
            score: wrapper.instance.score,
        }];
        let candidate = bundle.revised(entries, action.provenance(day));
        // Validate without the stale last-known-good: a legitimate
        // re-induction may land on different tags (and the page's values
        // rotated), so shape/text comparisons against the old state would
        // veto every structural repair.  The page/extraction checks still
        // apply, and the harvested targets anchor the cardinality.
        self.validate(cx, candidate, doc, day, None, action)
    }

    /// The contract's validation step: a candidate repair is only installed
    /// if it restores a healthy extraction on the breaking snapshot.
    fn validate(
        &self,
        cx: &mut EvalContext,
        candidate: WrapperBundle,
        doc: &Document,
        day: i64,
        lkg: Option<&LastKnownGood>,
        action: RepairAction,
    ) -> Option<RepairOutcome> {
        let report = self.verifier.check_with(cx, &candidate, doc, day, lkg);
        if !report.healthy() {
            return None;
        }
        Some(RepairOutcome {
            action,
            bundle: candidate,
            extracted: report.extracted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftClassifier;
    use wi_dom::Document;
    use wi_induction::Extractor;
    use wi_scoring::ScoringParams;

    fn induce(doc: &Document, targets: &[NodeId]) -> WrapperBundle {
        let wrapper = WrapperInducer::default()
            .try_induce_best(doc, targets)
            .unwrap();
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label("t")
    }

    fn break_and_repair(
        v1: &Document,
        targets: &[NodeId],
        v2: &Document,
    ) -> Option<(WrapperBundle, RepairOutcome)> {
        let bundle = induce(v1, targets);
        let lkg = LastKnownGood::capture(v1, 0, targets);
        let verifier = Verifier::default();
        let health = verifier.check(&bundle, v2, 20, Some(&lkg));
        assert!(!health.healthy());
        let drift = DriftClassifier::default().classify(&bundle, v2, 20, Some(&lkg), &health);
        Repairer::default()
            .repair(
                &bundle,
                v2,
                20,
                Some(&lkg),
                &drift,
                &WrapperInducer::default(),
            )
            .map(|o| (bundle, o))
    }

    #[test]
    fn rename_is_repaired_in_place_with_provenance() {
        let v1 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="c"><span class="price">10</span>
               <span class="price">20</span><span class="price">30</span></div></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("price");
        let v2 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="c"><span class="cost">11</span>
               <span class="cost">21</span><span class="cost">31</span></div></body>"#,
        )
        .unwrap();
        let (original, outcome) = break_and_repair(&v1, &targets, &v2).expect("repaired");
        assert!(matches!(outcome.action, RepairAction::Reanchored(_)));
        assert_eq!(outcome.bundle.revision, original.revision + 1);
        assert_eq!(outcome.bundle.label, original.label);
        assert!(outcome
            .bundle
            .provenance
            .as_deref()
            .unwrap()
            .contains("re-anchored"));
        assert_eq!(outcome.extracted, v2.elements_by_class("cost"));
        // The repaired bundle keeps working on later rotations.
        let v3 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="c"><span class="cost">90</span>
               <span class="cost">91</span><span class="cost">92</span></div></body>"#,
        )
        .unwrap();
        assert_eq!(
            outcome.bundle.extract(&v3, v3.root()).unwrap(),
            v3.elements_by_class("cost")
        );
    }

    #[test]
    fn unfixable_anchor_falls_back_to_reinduction_from_values() {
        let v1 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="list"><b class="t">Alpha</b><b class="t">Beta</b>
               <b class="t">Gamma</b></div></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("t");
        // The evolved page restructures entirely (different tags, no classes)
        // but still shows the same values.
        let v2 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <table id="new"><tr><td>Alpha</td></tr><tr><td>Beta</td></tr>
               <tr><td>Gamma</td></tr></table></body>"#,
        )
        .unwrap();
        let (original, outcome) = break_and_repair(&v1, &targets, &v2).expect("repaired");
        assert!(matches!(
            outcome.action,
            RepairAction::Reinduced { harvested: 3 }
        ));
        assert_eq!(outcome.bundle.revision, original.revision + 1);
        assert_eq!(outcome.extracted.len(), 3);
        assert_eq!(
            outcome.extracted,
            v2.elements_by_tag("td"),
            "re-induced wrapper selects the value cells"
        );
    }

    #[test]
    fn truly_gone_targets_are_not_repaired() {
        let v1 = Document::parse(
            r#"<body><div class="blk"><h4>Director:</h4><span class="v">S</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        let target = v1.elements_by_class("v");
        let v2 = Document::parse(
            r#"<body><ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        assert!(break_and_repair(&v1, &target, &v2).is_none());
    }

    #[test]
    fn coincidental_single_text_match_does_not_hijack_a_removed_target() {
        // Three extracted values; the evolved page removes the whole block
        // but the nav coincidentally contains one of them.  Re-induction
        // must refuse the 1-of-3 harvest (majority rule) so the wrapper can
        // degrade and retire instead of latching onto the nav entry.
        let v1 = Document::parse(
            r#"<body><ul id="nav"><li>Home</li><li>Offers</li><li>About</li></ul>
               <div id="list"><b class="t">Alpha</b><b class="t">Beta</b>
               <b class="t">Gamma</b></div></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("t");
        let v2 = Document::parse(
            r#"<body><ul id="nav"><li>Home</li><li>Alpha</li><li>About</li>
               <li>More</li><li>Links</li></ul></body>"#,
        )
        .unwrap();
        assert!(break_and_repair(&v1, &targets, &v2).is_none());
    }

    #[test]
    fn disabled_policies_do_nothing() {
        let v1 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="c"><span class="price">10</span><span class="price">20</span>
               <span class="price">30</span></div></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("price");
        let bundle = induce(&v1, &targets);
        let lkg = LastKnownGood::capture(&v1, 0, &targets);
        let v2 = Document::parse(
            r#"<body><div id="nav"><ul><li>a</li><li>b</li><li>c</li></ul></div>
               <div id="c"><span class="cost">10</span><span class="cost">20</span>
               <span class="cost">30</span></div></body>"#,
        )
        .unwrap();
        let health = Verifier::default().check(&bundle, &v2, 20, Some(&lkg));
        let drift = DriftClassifier::default().classify(&bundle, &v2, 20, Some(&lkg), &health);
        let off = Repairer::new(
            RepairConfig {
                reanchor: false,
                reinduce: false,
            },
            Verifier::default(),
        );
        assert!(off
            .repair(
                &bundle,
                &v2,
                20,
                Some(&lkg),
                &drift,
                &WrapperInducer::default()
            )
            .is_none());
    }
}
