//! Incremental-replay caches for the maintenance loop.
//!
//! Monitored pages change slowly: in a low-churn timeline roughly half of
//! the consecutive snapshots are byte-identical and most of the rest share
//! large subtrees with their predecessor.  The full maintenance loop
//! nevertheless re-verifies, re-classifies and occasionally re-induces from
//! scratch on every epoch.  [`IncrementalState`] memoizes the two most
//! expensive whole-document computations so that replaying an unchanged (or
//! previously seen) snapshot costs a fingerprint comparison instead of a
//! tree walk:
//!
//! * **Verify memo** — `check_with` is a pure function of the document
//!   content, the bundle entries (identified by revision within one run —
//!   revisions only move forward, via [`WrapperBundle::revised`]) and the
//!   slice of the last-known-good state it actually reads.  The memo key is
//!   `(doc content fingerprint, bundle revision, lkg fingerprint)`; the
//!   value stores the health signals and the extracted nodes as **pre-order
//!   positions** so a hit rematerializes `NodeId`s valid for the current
//!   document arena.
//! * **Induction memo** — `try_reinduce` is a pure function of the document
//!   content and the harvest source (`lkg.texts`, `lkg.count`).  Both the
//!   produced entries and the *failure* outcome (induction error, majority
//!   rule, validation) are memoized, so repeated repair attempts against
//!   recurring page shapes skip the O(page) candidate generation entirely.
//!
//! ## Invalidation contract
//!
//! Keys embed content fingerprints, so a changed document can never hit a
//! stale entry — staleness is impossible by construction, exactly as in
//! [`wi_xpath::CrossVersionCache`].  The one drift signal that warrants
//! flushing anyway is a [`DriftClass::Redesign`](crate::DriftClass): a
//! redesigned site invalidates the *assumption* that past page shapes recur,
//! so [`IncrementalState::invalidate`] drops everything rather than let the
//! maps grow with entries that will never hit again.  [`invalidate`] is the
//! **only** wholesale eviction entry point; per-entry admission goes through
//! [`verify`](IncrementalState::verify) and
//! [`induce_admit`](IncrementalState::induce_admit).

use crate::verify::{CompiledVerify, HealthReport, HealthSignal, LastKnownGood, Verifier};
use std::hash::Hasher;
use wi_dom::{Document, FxHasher, FxMap, NodeId};
use wi_induction::{BundleEntry, WrapperBundle};
use wi_xpath::EvalContext;

/// Aggregate hit/miss/invalidation counts across both memo layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct IncStats {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
}

struct VerifyMemo {
    signals: Vec<HealthSignal>,
    /// Extracted nodes as pre-order positions (arena-independent).
    extracted: Vec<u32>,
}

/// What the last *healthy* epoch left behind, for the identical-snapshot
/// replay (see [`IncrementalState::verify`]).
struct EpochEcho {
    /// Content fingerprint of the healthy snapshot.
    doc_fp: u64,
    /// Bundle revision in force when it verified.
    revision: u32,
    /// Its non-severe anchor signals (a pure function of document content
    /// and bundle entries, so they recur verbatim on an identical snapshot).
    anchor_missing: Vec<HealthSignal>,
    /// Its extraction as pre-order positions.
    extracted: Vec<u32>,
}

struct InduceMemo {
    entries: Vec<BundleEntry>,
    harvested: usize,
    extracted: Vec<u32>,
}

/// Result of consulting the induction memo.
pub(crate) enum InduceLookup {
    /// The exact (document, harvest source) pair was attempted before.
    /// `None` means the attempt failed (and will fail again); `Some` carries
    /// the validated entries, the harvest size and the rematerialized
    /// extraction.
    Hit(Option<(Vec<BundleEntry>, usize, Vec<NodeId>)>),
    /// Never attempted — compute, then [`IncrementalState::induce_admit`].
    Miss,
}

/// Key for the induction memo: `(doc fingerprint, texts hash, lkg.count)`.
pub(crate) type InduceKey = (u64, u64, usize);

/// Cross-epoch memo state owned by one maintenance run (or one registry
/// worker, which replays many runs back to back — the fingerprint keys make
/// sharing across jobs sound).
pub(crate) struct IncrementalState {
    verify: FxMap<(u64, u32, u64), VerifyMemo>,
    induction: FxMap<InduceKey, Option<InduceMemo>>,
    /// `(content fingerprint, bundle revision)` of the snapshot the live
    /// last-known-good state was captured from — the precondition of
    /// [`LastKnownGood::advance_identical`].
    lkg_origin: Option<(u64, u32)>,
    /// The last healthy epoch's residue, for the identical-snapshot replay.
    echo: Option<EpochEcho>,
    /// The live revision's expressions parsed once ([`CompiledVerify`]);
    /// rebuilt when a repair bumps the revision.  Within one run revisions
    /// move strictly forward, so the revision number identifies the entries.
    compiled: Option<(u32, CompiledVerify)>,
    /// Fresh [`LastKnownGood::capture_for`] results keyed
    /// `(doc fingerprint, bundle revision)` — the capture is a pure function
    /// of document and entries (the extraction it summarizes is, too), and
    /// its census walks are the loop's second-largest per-epoch cost.
    captures: FxMap<(u64, u32), LastKnownGood>,
    /// Extraction outcomes keyed `(doc fingerprint, bundle revision)`.
    /// Extraction is a pure function of document content and entries —
    /// *independent of the last-known-good state* — so this layer hits on
    /// every recurring page shape even when the lkg-sensitive verify memo
    /// misses (the lkg churns one epoch behind every content change).  `Err`
    /// carries the `ExtractionFailed` message verbatim.
    extractions: FxMap<(u64, u32), Result<Vec<u32>, String>>,
    stats: IncStats,
}

impl IncrementalState {
    pub(crate) fn new() -> Self {
        IncrementalState {
            verify: FxMap::default(),
            induction: FxMap::default(),
            lkg_origin: None,
            echo: None,
            compiled: None,
            captures: FxMap::default(),
            extractions: FxMap::default(),
            stats: IncStats::default(),
        }
    }

    /// Memoized [`Verifier::check_with`].  A hit replays the recorded
    /// signals and rematerializes the extracted nodes from pre-order
    /// positions; a miss runs the verifier and admits the result.
    ///
    /// ## The identical-snapshot replay
    ///
    /// Before consulting the memo map, a stronger fast path: when this
    /// snapshot's fingerprint and the live bundle revision match the last
    /// *healthy* epoch's (the [`EpochEcho`]), and the loop's last-known-good
    /// state is present (it was captured from exactly that epoch, possibly
    /// carried unchanged across intervening flagged/broken snapshots), the
    /// verdict is fully determined:
    ///
    /// * extraction is a pure function of (document, entries) — identical;
    /// * `CardinalityDrift` cannot fire: `lkg.count` *is* that extraction's
    ///   length;
    /// * `ShapeDivergence` cannot fire: `lkg.tags` is the same
    ///   sorted-deduplicated tag list the check recomputes;
    /// * `TextDivergence` compares the extraction's texts with themselves —
    ///   similarity exactly `1.0`;
    /// * `AnchorCensusDrift` cannot fire: the recorded census was counted on
    ///   this very document;
    /// * `AnchorMissing` (attribute) signals depend only on (document,
    ///   entries) — replayed verbatim from the echo; text-anchor probes
    ///   never run on a healthy snapshot.
    ///
    /// `check_with` pushes the text signal before the anchor probes and its
    /// severity sort is stable over these all-non-severe signals, so the
    /// synthesized order is the computed order.  The equivalence battery
    /// (`tests/incremental_equivalence.rs`) pins all of this against the
    /// from-scratch loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify(
        &mut self,
        cx: &mut EvalContext,
        verifier: &Verifier,
        bundle: &WrapperBundle,
        doc: &Document,
        doc_fp: u64,
        day: i64,
        lkg: Option<&LastKnownGood>,
    ) -> HealthReport {
        if lkg.is_some() {
            if let Some(echo) = self
                .echo
                .as_ref()
                .filter(|e| e.doc_fp == doc_fp && e.revision == bundle.revision)
            {
                let nodes = doc.order_index().nodes_in_order();
                if echo.extracted.iter().all(|&p| (p as usize) < nodes.len()) {
                    self.stats.hits += 1;
                    let mut signals = vec![HealthSignal::TextDivergence { similarity: 1.0 }];
                    signals.extend(echo.anchor_missing.iter().cloned());
                    return HealthReport {
                        day,
                        extracted: echo.extracted.iter().map(|&p| nodes[p as usize]).collect(),
                        signals,
                    };
                }
            }
        }
        let key = (doc_fp, bundle.revision, lkg_fingerprint(lkg));
        if let Some(memo) = self.verify.get(&key) {
            let nodes = doc.order_index().nodes_in_order();
            if memo.extracted.iter().all(|&p| (p as usize) < nodes.len()) {
                self.stats.hits += 1;
                return HealthReport {
                    day,
                    extracted: memo.extracted.iter().map(|&p| nodes[p as usize]).collect(),
                    signals: memo.signals.clone(),
                };
            }
        }
        if self.compiled.as_ref().map(|(rev, _)| *rev) != Some(bundle.revision) {
            self.compiled = Some((bundle.revision, CompiledVerify::new(bundle)));
        }
        let compiled = &self.compiled.as_ref().expect("just installed").1;
        // Extraction is lkg-independent, so it replays from its own memo
        // even when the full-report memo missed; only a genuinely new
        // (document, revision) pair re-evaluates the expressions.
        let extractions = &mut self.extractions;
        let mut replayed = false;
        let report = verifier.check_with_lazy(cx, compiled, doc, day, lkg, |cx| {
            let ekey = (doc_fp, bundle.revision);
            if let Some(cached) = extractions.get(&ekey) {
                match cached {
                    Ok(positions) => {
                        let nodes = doc.order_index().nodes_in_order();
                        if positions.iter().all(|&p| (p as usize) < nodes.len()) {
                            replayed = true;
                            return Ok(positions.iter().map(|&p| nodes[p as usize]).collect());
                        }
                    }
                    Err(message) => {
                        replayed = true;
                        return Err(message.clone());
                    }
                }
            }
            let result = compiled.extract(cx, doc);
            match &result {
                Ok(nodes) => {
                    if let Some(positions) = positions_of(doc, nodes) {
                        extractions.insert(ekey, Ok(positions));
                    }
                }
                Err(message) => {
                    extractions.insert(ekey, Err(message.clone()));
                }
            }
            result
        });
        if replayed {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        if let Some(extracted) = positions_of(doc, &report.extracted) {
            self.verify.insert(
                key,
                VerifyMemo {
                    signals: report.signals.clone(),
                    extracted,
                },
            );
        }
        report
    }

    /// Whether the live last-known-good state was captured against a
    /// document with this fingerprint under this bundle revision.  When
    /// true, the current epoch's capture would reproduce it field for
    /// field, so [`LastKnownGood::advance_identical`] is byte-equivalent to
    /// a fresh capture-and-advance.
    pub(crate) fn lkg_unchanged(&self, doc_fp: u64, revision: u32) -> bool {
        self.lkg_origin == Some((doc_fp, revision))
    }

    /// Records the snapshot the last-known-good state was just (re)captured
    /// from.
    pub(crate) fn record_lkg_origin(&mut self, doc_fp: u64, revision: u32) {
        self.lkg_origin = Some((doc_fp, revision));
    }

    /// Memoized [`LastKnownGood::capture_for`].  The fresh capture is a pure
    /// function of `(document, bundle entries)`: `nodes` is the bundle's own
    /// (deterministic) extraction on `doc`, and every captured field —
    /// texts, tags, counts, attribute values, carrier censuses — is computed
    /// from `doc` and the entries' anchors.  `rotates` and the stability
    /// counters are constants (`false`/`0`) in a fresh capture; only `day`
    /// varies, and it is re-stamped on every hit.
    pub(crate) fn capture_for(
        &mut self,
        bundle: &WrapperBundle,
        doc: &Document,
        doc_fp: u64,
        day: i64,
        nodes: &[NodeId],
    ) -> LastKnownGood {
        let key = (doc_fp, bundle.revision);
        if let Some(memo) = self.captures.get(&key) {
            self.stats.hits += 1;
            let mut fresh = memo.clone();
            fresh.day = day;
            return fresh;
        }
        self.stats.misses += 1;
        if self.compiled.as_ref().map(|(rev, _)| *rev) != Some(bundle.revision) {
            self.compiled = Some((bundle.revision, CompiledVerify::new(bundle)));
        }
        let anchors = self
            .compiled
            .as_ref()
            .expect("just installed")
            .1
            .anchor_pairs
            .clone();
        let fresh = LastKnownGood::capture_with_anchors(doc, day, nodes, anchors);
        self.captures.insert(key, fresh.clone());
        fresh
    }

    /// Records a healthy epoch's residue for the identical-snapshot replay.
    /// Call only with a healthy report, after the loop refreshed (or
    /// identically advanced) its last-known-good state from this snapshot.
    pub(crate) fn record_echo(
        &mut self,
        doc_fp: u64,
        revision: u32,
        report: &HealthReport,
        doc: &Document,
    ) {
        debug_assert!(report.healthy());
        let Some(extracted) = positions_of(doc, &report.extracted) else {
            self.echo = None;
            return;
        };
        self.echo = Some(EpochEcho {
            doc_fp,
            revision,
            anchor_missing: report
                .signals
                .iter()
                .filter(|s| matches!(s, HealthSignal::AnchorMissing { .. }))
                .cloned()
                .collect(),
            extracted,
        });
    }

    /// Key for [`induce_lookup`](Self::induce_lookup) /
    /// [`induce_admit`](Self::induce_admit): fingerprints exactly what
    /// re-induction reads — the document and the harvest source.
    pub(crate) fn induce_key(doc_fp: u64, lkg: &LastKnownGood) -> InduceKey {
        let mut h = FxHasher::default();
        h.write_usize(lkg.texts.len());
        for text in &lkg.texts {
            write_str(&mut h, text);
        }
        (doc_fp, h.finish(), lkg.count)
    }

    /// Consults the induction memo; a `Some` hit rematerializes the
    /// extraction for the current document arena.
    pub(crate) fn induce_lookup(&mut self, key: InduceKey, doc: &Document) -> InduceLookup {
        match self.induction.get(&key) {
            Some(None) => {
                self.stats.hits += 1;
                InduceLookup::Hit(None)
            }
            Some(Some(memo)) => {
                let nodes = doc.order_index().nodes_in_order();
                if memo.extracted.iter().all(|&p| (p as usize) < nodes.len()) {
                    self.stats.hits += 1;
                    let extracted = memo.extracted.iter().map(|&p| nodes[p as usize]).collect();
                    InduceLookup::Hit(Some((memo.entries.clone(), memo.harvested, extracted)))
                } else {
                    self.stats.misses += 1;
                    InduceLookup::Miss
                }
            }
            None => {
                self.stats.misses += 1;
                InduceLookup::Miss
            }
        }
    }

    /// Records a re-induction outcome (including failure) for its key.
    pub(crate) fn induce_admit(
        &mut self,
        key: InduceKey,
        doc: &Document,
        outcome: Option<(&[BundleEntry], usize, &[NodeId])>,
    ) {
        let memo = match outcome {
            None => None,
            Some((entries, harvested, extracted)) => {
                let Some(extracted) = positions_of(doc, extracted) else {
                    return;
                };
                Some(InduceMemo {
                    entries: entries.to_vec(),
                    harvested,
                    extracted,
                })
            }
        };
        self.induction.insert(key, memo);
    }

    /// Wholesale eviction — the only entry point that drops entries.  Used
    /// on redesign-class drift, where past page shapes stop recurring.
    pub(crate) fn invalidate(&mut self) {
        if !self.verify.is_empty() || !self.induction.is_empty() {
            self.stats.invalidations += 1;
        }
        self.verify.clear();
        self.induction.clear();
        self.captures.clear();
        self.extractions.clear();
        self.lkg_origin = None;
        self.echo = None;
    }

    /// Drains the counters (for the end-of-run telemetry flush).
    pub(crate) fn take_stats(&mut self) -> IncStats {
        std::mem::take(&mut self.stats)
    }
}

/// Maps extracted nodes to pre-order positions; `None` if any node is
/// detached (never admit a memo that cannot be rematerialized).
fn positions_of(doc: &Document, nodes: &[NodeId]) -> Option<Vec<u32>> {
    let order = doc.order_index();
    nodes.iter().map(|&n| order.position(n)).collect()
}

fn write_str(h: &mut FxHasher, s: &str) {
    h.write_usize(s.len());
    h.write(s.as_bytes());
}

/// Fingerprints exactly the slice of [`LastKnownGood`] that
/// [`Verifier::check_with`] reads: `doc_elements` (broken-page check),
/// `count` (cardinality slack), `tags` (shape divergence), `texts` (text
/// similarity) and the anchor carriers (census drift).  Carrier stability
/// enters as the boolean `stable_observations >= 2` because that is the only
/// predicate `probe_anchors` ever applies to it — hashing the raw counter
/// would fingerprint every warmup tick apart and forfeit the hits on the
/// second identical snapshot.  Deliberately **not** hashed: `day`,
/// `rotates`, top-level `stable_observations`, `attribute_values` and the
/// carriers' neighborhood fingerprint (`neighborhood` /
/// `neighborhood_stable`) — `check_with` never reads them (the
/// neighborhood is a *classifier* input, consulted only on the unhealthy
/// path that this cache never serves), so distinguishing on them would
/// only shrink the hit rate.
fn lkg_fingerprint(lkg: Option<&LastKnownGood>) -> u64 {
    let mut h = FxHasher::default();
    match lkg {
        None => h.write_u8(0),
        Some(lkg) => {
            h.write_u8(1);
            h.write_usize(lkg.doc_elements);
            h.write_usize(lkg.count);
            h.write_usize(lkg.tags.len());
            for tag in &lkg.tags {
                write_str(&mut h, tag);
            }
            h.write_usize(lkg.texts.len());
            for text in &lkg.texts {
                write_str(&mut h, text);
            }
            h.write_usize(lkg.anchor_carriers.len());
            for carrier in &lkg.anchor_carriers {
                write_str(&mut h, &carrier.attribute);
                write_str(&mut h, &carrier.value);
                h.write_usize(carrier.count);
                h.write_u8(u8::from(carrier.stable_observations >= 2));
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::AnchorCarrier;

    fn sample_lkg() -> LastKnownGood {
        LastKnownGood {
            day: 3,
            count: 2,
            texts: vec!["a".into(), "b".into()],
            tags: vec!["span".into()],
            doc_elements: 40,
            rotates: false,
            stable_observations: 1,
            attribute_values: std::sync::Arc::new(std::collections::BTreeSet::new()),
            anchor_carriers: vec![AnchorCarrier {
                attribute: "class".into(),
                value: "title".into(),
                count: 2,
                stable_observations: 1,
                neighborhood: vec!["Label:".into()],
                neighborhood_stable: 1,
            }],
        }
    }

    #[test]
    fn lkg_fingerprint_ignores_fields_check_with_never_reads() {
        let base = sample_lkg();
        let mut same = base.clone();
        same.day = 99;
        same.rotates = true;
        same.stable_observations = 7;
        same.anchor_carriers[0].neighborhood = vec!["Other:".into()];
        same.anchor_carriers[0].neighborhood_stable = 9;
        std::sync::Arc::make_mut(&mut same.attribute_values).insert("x".into());
        assert_eq!(
            lkg_fingerprint(Some(&base)),
            lkg_fingerprint(Some(&same)),
            "unread fields must not shrink the hit rate"
        );
    }

    #[test]
    fn lkg_fingerprint_buckets_carrier_stability_as_a_boolean() {
        let with_stability = |n: u32| {
            let mut lkg = sample_lkg();
            lkg.anchor_carriers[0].stable_observations = n;
            lkg_fingerprint(Some(&lkg))
        };
        assert_eq!(
            with_stability(0),
            with_stability(1),
            "both below the probe threshold"
        );
        assert_eq!(with_stability(2), with_stability(9), "both at or past it");
        assert_ne!(
            with_stability(1),
            with_stability(2),
            "the threshold itself matters"
        );
    }

    #[test]
    fn lkg_fingerprint_distinguishes_read_fields() {
        let base = sample_lkg();
        let mut texts = base.clone();
        texts.texts[0] = "c".into();
        let mut count = base.clone();
        count.count = 3;
        let mut carrier = base.clone();
        carrier.anchor_carriers[0].value = "headline".into();
        for other in [&texts, &count, &carrier] {
            assert_ne!(lkg_fingerprint(Some(&base)), lkg_fingerprint(Some(other)));
        }
        assert_ne!(lkg_fingerprint(Some(&base)), lkg_fingerprint(None));
    }

    #[test]
    fn invalidate_counts_once_and_resets_origin() {
        let mut state = IncrementalState::new();
        state.record_lkg_origin(1, 0);
        assert!(state.lkg_unchanged(1, 0));
        state.invalidate(); // empty maps: no-op for the counter
        assert_eq!(state.stats.invalidations, 0);
        assert!(!state.lkg_unchanged(1, 0), "origin must reset");
        state.induction.insert((1, 2, 3), None);
        state.invalidate();
        assert_eq!(state.stats.invalidations, 1);
        assert!(state.induction.is_empty());
    }
}
