//! The bundle registry: versioned wrapper history per site, plus the
//! parallel batch driver that runs many sites' timelines through the
//! maintenance loop.

use crate::lifecycle::{Maintainer, MaintenanceLog};
use crate::verify::LastKnownGood;
use crate::PageVersion;
use std::collections::BTreeMap;
use wi_induction::WrapperBundle;
use wi_xpath::EvalContext;

/// Number of jobs below which [`Registry::maintain_batch`] stays on the
/// calling thread (mirrors `Extractor::extract_batch`).
const PARALLEL_THRESHOLD: usize = 4;

/// Minimum jobs per worker: spawning a thread for fewer jobs than this costs
/// more than it saves, so the fan-out is clamped to
/// `jobs / MIN_JOBS_PER_WORKER` workers even when more cores are available.
const MIN_JOBS_PER_WORKER: usize = 2;

/// One versioned install of a bundle for a site.
#[derive(Debug, Clone)]
pub struct VersionRecord {
    /// Revision number (the bundle's own `revision`).
    pub revision: u32,
    /// The day this revision was installed.
    pub day: i64,
    /// Why: `"installed"` for the initial induction, the repair provenance
    /// otherwise.
    pub cause: String,
    /// The bundle at this revision.
    pub bundle: WrapperBundle,
}

/// The work order for one site in a batch run.
#[derive(Debug, Clone)]
pub struct MaintenanceJob {
    /// The site key (must have a bundle installed in the registry).
    pub site: String,
    /// The site's page timeline, oldest first.
    pub pages: Vec<PageVersion>,
    /// Optional seed last-known-good state (e.g. from the induction
    /// snapshot); without one the first healthy snapshot bootstraps it.
    pub seed_lkg: Option<LastKnownGood>,
    /// Optional re-induction inducer override for this site (e.g. carrying
    /// the site's template-label text policy); the shared maintainer's
    /// inducer is used otherwise.
    pub inducer: Option<wi_induction::WrapperInducer>,
}

/// Versioned bundle storage per site.
///
/// The registry is the single source of truth for "which wrapper extracts
/// site X right now": [`install`](Registry::install) records revision 0,
/// every validated repair appends a new [`VersionRecord`], and
/// [`current`](Registry::current) always answers with the newest revision.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    sites: BTreeMap<String, Vec<VersionRecord>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Installs a (freshly induced) bundle for a site.
    pub fn install(&mut self, site: impl Into<String>, bundle: WrapperBundle, day: i64) {
        let site = site.into();
        let record = VersionRecord {
            revision: bundle.revision,
            day,
            cause: "installed".to_string(),
            bundle,
        };
        self.sites.entry(site).or_default().push(record);
    }

    /// The bundle currently in force for a site.
    pub fn current(&self, site: &str) -> Option<&WrapperBundle> {
        self.sites
            .get(site)
            .and_then(|versions| versions.last())
            .map(|record| &record.bundle)
    }

    /// The full version history of a site, oldest first.
    pub fn history(&self, site: &str) -> &[VersionRecord] {
        self.sites.get(site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The registered site keys, sorted.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Runs every job's timeline through the maintenance loop and commits
    /// the resulting revisions, fanning the jobs out over the available
    /// cores.  One [`EvalContext`] is created per worker and reused for the
    /// worker's whole chunk, mirroring `Extractor::extract_batch`; the
    /// results (and the committed history) are exactly those of
    /// [`maintain_batch_sequential`](Registry::maintain_batch_sequential).
    ///
    /// The fan-out is **adaptive**: on a single-core machine
    /// (`available_parallelism() == 1`), or when the batch is too small to
    /// amortize thread spawns (fewer than [`PARALLEL_THRESHOLD`] jobs, or
    /// fewer than [`MIN_JOBS_PER_WORKER`] jobs per would-be worker), the
    /// batch stays on the calling thread — scoped threads on one core can
    /// only add overhead (the 0.83× regression recorded in the pre-adaptive
    /// `BENCH_maintain.json`).
    ///
    /// Returns one log per job, in job order.  A job whose site has no
    /// installed bundle yields an empty log.
    pub fn maintain_batch(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Vec<MaintenanceLog> {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Clamp to what the batch can keep busy: at most one worker per
        // MIN_JOBS_PER_WORKER jobs.
        let workers = cores.min(jobs.len() / MIN_JOBS_PER_WORKER).max(1);
        self.maintain_batch_with_workers(jobs, maintainer, workers)
    }

    /// The sequential reference implementation of
    /// [`maintain_batch`](Registry::maintain_batch).
    pub fn maintain_batch_sequential(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
    ) -> Vec<MaintenanceLog> {
        self.maintain_batch_with_workers(jobs, maintainer, 1)
    }

    /// Batch maintenance with an explicit worker count (the throughput bench
    /// compares 1 vs N).
    ///
    /// A site may appear in at most one job per batch: two concurrent runs
    /// from the same starting revision would commit conflicting histories.
    /// Only the first job for a site runs; duplicates yield empty logs.
    pub fn maintain_batch_with_workers(
        &mut self,
        jobs: &[MaintenanceJob],
        maintainer: &Maintainer,
        workers: usize,
    ) -> Vec<MaintenanceLog> {
        // Snapshot the current bundle of every job up front so the run is
        // independent of commit order; duplicate sites get no bundle (and
        // therefore an empty log) so they cannot fork the version history.
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let bundles: Vec<Option<WrapperBundle>> = jobs
            .iter()
            .map(|job| {
                if !seen.insert(&job.site) {
                    return None;
                }
                self.current(&job.site).cloned()
            })
            .collect();

        let logs: Vec<MaintenanceLog> = if jobs.len() < PARALLEL_THRESHOLD || workers < 2 {
            let mut cx = EvalContext::new();
            jobs.iter()
                .zip(&bundles)
                .map(|(job, bundle)| run_job(&mut cx, maintainer, job, bundle.as_ref()))
                .collect()
        } else {
            let chunk_size = jobs.len().div_ceil(workers);
            let mut logs = Vec::with_capacity(jobs.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk_size)
                    .zip(bundles.chunks(chunk_size))
                    .map(|(job_chunk, bundle_chunk)| {
                        scope.spawn(move || {
                            let mut cx = EvalContext::new();
                            job_chunk
                                .iter()
                                .zip(bundle_chunk)
                                .map(|(job, bundle)| {
                                    run_job(&mut cx, maintainer, job, bundle.as_ref())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    logs.extend(handle.join().expect("maintenance worker panicked"));
                }
            });
            logs
        };

        // Commit the new revisions, in job order.
        for (job, log) in jobs.iter().zip(&logs) {
            let Some(versions) = self.sites.get_mut(&job.site) else {
                continue;
            };
            for revision in &log.revisions {
                versions.push(VersionRecord {
                    revision: revision.revision,
                    day: revision.day,
                    cause: revision.cause.clone(),
                    bundle: revision.bundle.clone(),
                });
            }
        }
        logs
    }
}

/// Runs one job (an uninstalled site yields an empty log).
fn run_job(
    cx: &mut EvalContext,
    maintainer: &Maintainer,
    job: &MaintenanceJob,
    bundle: Option<&WrapperBundle>,
) -> MaintenanceLog {
    match bundle {
        Some(bundle) => maintainer.run_with_inducer(
            cx,
            &job.site,
            bundle.clone(),
            &job.pages,
            job.seed_lkg.clone(),
            job.inducer.as_ref().unwrap_or(&maintainer.inducer),
        ),
        None => MaintenanceLog {
            label: job.site.clone(),
            outcomes: Vec::new(),
            revisions: Vec::new(),
            bundle: WrapperBundle::from_instances(&[], Default::default()),
            lkg: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::Document;
    use wi_induction::WrapperInducer;
    use wi_scoring::ScoringParams;

    fn page(class: &str, values: &[&str]) -> Document {
        let items: String = values
            .iter()
            .map(|v| format!(r#"<span class="{class}">{v}</span>"#))
            .collect();
        Document::parse(&format!(
            r#"<html><body><div id="main"><h4>Prices:</h4>{items}</div>
               <ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></body></html>"#
        ))
        .unwrap()
    }

    fn job(site: &str, rename_at: Option<usize>, epochs: usize) -> (MaintenanceJob, WrapperBundle) {
        let v1 = page("p", &["1", "2", "3"]);
        let targets: Vec<_> = v1.elements_by_class("p");
        let wrapper = WrapperInducer::default()
            .try_induce_best(&v1, &targets)
            .unwrap();
        let bundle =
            WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label(site);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let class = match rename_at {
                    Some(at) if i >= at => "price",
                    _ => "p",
                };
                let values = [format!("{i}0"), format!("{i}1"), format!("{i}2")];
                let value_refs: Vec<&str> = values.iter().map(String::as_str).collect();
                PageVersion {
                    day: 20 * i as i64,
                    doc: page(class, &value_refs),
                }
            })
            .collect();
        (
            MaintenanceJob {
                site: site.to_string(),
                pages,
                seed_lkg: None,
                inducer: None,
            },
            bundle,
        )
    }

    #[test]
    fn registry_versions_per_site() {
        let mut registry = Registry::new();
        let (job1, bundle1) = job("movies-01", Some(2), 4);
        registry.install("movies-01", bundle1, 0);
        assert_eq!(registry.current("movies-01").unwrap().revision, 0);
        assert!(registry.current("unknown").is_none());

        let logs = registry.maintain_batch_sequential(&[job1], &Maintainer::default());
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].repairs(), 1);
        let history = registry.history("movies-01");
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].cause, "installed");
        assert!(history[1].cause.contains("re-anchored"));
        assert_eq!(registry.current("movies-01").unwrap().revision, 1);
        assert_eq!(registry.sites().collect::<Vec<_>>(), vec!["movies-01"]);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let mut sequential = Registry::new();
        let mut parallel = Registry::new();
        let jobs: Vec<MaintenanceJob> = (0..8)
            .map(|i| {
                let site = format!("site-{i:02}");
                let (job, bundle) = super::tests::job(&site, (i % 2 == 0).then_some(2), 5);
                sequential.install(&site, bundle.clone(), 0);
                parallel.install(&site, bundle, 0);
                job
            })
            .collect();
        let maintainer = Maintainer::default();
        let a = sequential.maintain_batch_sequential(&jobs, &maintainer);
        let b = parallel.maintain_batch_with_workers(&jobs, &maintainer, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.repairs(), y.repairs());
            assert_eq!(x.bundle.revision, y.bundle.revision);
            assert_eq!(
                x.outcomes.iter().map(|o| o.flagged).collect::<Vec<_>>(),
                y.outcomes.iter().map(|o| o.flagged).collect::<Vec<_>>()
            );
        }
        for i in 0..8 {
            let site = format!("site-{i:02}");
            assert_eq!(
                sequential.history(&site).len(),
                parallel.history(&site).len()
            );
        }
    }

    #[test]
    fn duplicate_sites_in_one_batch_cannot_fork_the_history() {
        let mut registry = Registry::new();
        let (job_a, bundle) = job("dup-site", Some(1), 4);
        let (job_b, _) = job("dup-site", Some(2), 4);
        registry.install("dup-site", bundle, 0);
        let logs = registry.maintain_batch_sequential(&[job_a, job_b], &Maintainer::default());
        assert_eq!(logs.len(), 2);
        assert!(!logs[0].outcomes.is_empty(), "first job runs");
        assert!(logs[1].outcomes.is_empty(), "duplicate job is skipped");
        // Exactly one history line: install + the first job's repair.
        let revisions: Vec<u32> = registry
            .history("dup-site")
            .iter()
            .map(|v| v.revision)
            .collect();
        assert_eq!(revisions, vec![0, 1]);
    }

    #[test]
    fn uninstalled_sites_yield_empty_logs() {
        let mut registry = Registry::new();
        let (job, _) = job("never-installed", None, 3);
        let logs = registry.maintain_batch(&[job], &Maintainer::default());
        assert_eq!(logs.len(), 1);
        assert!(logs[0].outcomes.is_empty());
    }
}
