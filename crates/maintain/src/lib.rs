//! # wi-maintain — the wrapper lifecycle subsystem
//!
//! Induction (in `wi-induction`) produces a wrapper once; this crate keeps it
//! *alive* while the page underneath evolves.  It implements the full
//! maintenance loop over an archive timeline of page versions:
//!
//! 1. **Verify** ([`Verifier`]) — replay a [`WrapperBundle`] against each
//!    successive snapshot and score extraction health without consulting any
//!    ground truth: broken captures, empty results, cardinality drift and
//!    node-shape divergence against the last-known-good extraction, and
//!    anchor attributes that vanished from the page (checked through the
//!    document's tag index).
//! 2. **Classify** ([`DriftClassifier`]) — when a wrapper is flagged, map the
//!    failure onto the paper's Section 6.2 break groups ([`DriftClass`]):
//!    positional changes, attribute renames, site-wide redesigns, diminishing
//!    targets and broken snapshots.  Classification works by *diffing the
//!    failing step against the evolved DOM*: the first empty step of the
//!    expression is found by prefix evaluation, its anchor predicate is
//!    relaxed, and the surviving candidate neighborhood (via the tag index
//!    and the pre/post-order document index) proposes a re-anchoring that is
//!    validated against the rest of the expression.
//! 3. **Repair** ([`Repairer`]) — re-anchor renamed attribute values in
//!    place when the classifier found a consistent substitution, otherwise
//!    harvest the last-known-good extraction *values* as fresh annotations
//!    and re-run induction on the evolved page
//!    ([`WrapperInducer::try_induce_from_texts`]).  Either path hot-swaps the
//!    bundle: the replacement carries the same label, a bumped revision and a
//!    provenance note.
//! 4. **Version** ([`Registry`]) — bundles are versioned per site; the
//!    parallel [`Registry::maintain_batch`] driver runs whole archives of
//!    sites through the loop with one evaluation context per worker,
//!    mirroring `Extractor::extract_batch`.
//! 5. **Persist** ([`PersistentRegistry`]) — the production registry: site
//!    histories sharded by FxHash of the site key, each shard an append-only
//!    checksummed JSON-lines version log with a manifest.
//!    [`PersistentRegistry::recover`] replays the logs back into the live
//!    map (restoring the longest valid record prefix and surfacing anything
//!    dropped as a typed [`RegistryError`]),
//!    [`PersistentRegistry::maintain_batch`] persists every revision plus
//!    each site's maintenance position (last-known-good, lifecycle state,
//!    retirement streak) so restarts resume timelines byte-identically, and
//!    [`PersistentRegistry::compact`] bounds log growth to
//!    last-known-good + a retained audit tail.  See the
//!    [`registry`] module docs for the on-disk layout.
//!
//! The loop itself is the [`Maintainer`] state machine (`Monitoring` →
//! `Degraded` → `Retired`, see [`WrapperState`]).
//!
//! ## The repair-policy contract
//!
//! Every repair policy MUST observe the following contract (relied on by the
//! registry and the evaluation harness):
//!
//! * **Repairs are validated before they are installed.**  A candidate
//!   bundle is re-verified against the very snapshot that exposed the break;
//!   a repair that does not restore a healthy extraction is discarded and
//!   the wrapper stays degraded (it will be retried on the next snapshot).
//! * **Repairs never rewrite history.**  A repair produces a *new* revision
//!   via [`WrapperBundle::revised`] — same label, same scoring parameters,
//!   `revision + 1`, and a human-readable provenance note describing the
//!   edit (or the re-induction).  Prior revisions stay in the registry.
//! * **Re-anchoring precedes re-induction.**  An in-place anchor substitution
//!   preserves the expression's structure (and therefore its robustness
//!   characteristics); full re-induction from harvested values is the
//!   fallback when no consistent substitution exists.
//! * **Broken snapshots are never repaired against.**  A capture flagged as
//!   broken ([`HealthSignal::BrokenPage`]) is an archive artifact, not page
//!   evolution (paper break group (e)); the wrapper, its revision and its
//!   last-known-good state all pass through unchanged.
//! * **Diminishing targets retire, they do not thrash.**  After
//!   `retire_after` consecutive failed repairs whose drift class is
//!   [`DriftClass::TargetRemoved`], the wrapper is retired: verification
//!   continues (it may recover if the target reappears) but no further
//!   repairs are attempted.
//!
//! ## Example
//!
//! ```
//! use wi_dom::Document;
//! use wi_induction::{Extractor, WrapperBundle, WrapperInducer};
//! use wi_maintain::{Maintainer, PageVersion};
//!
//! // Induce on version 1 of a page …
//! let v1 = Document::parse(
//!     r#"<body><ul id="nav"><li>Home</li><li>Offers</li><li>About</li></ul>
//!        <div id="prices"><span class="p">10</span><span class="p">20</span></div></body>"#,
//! ).unwrap();
//! let targets = v1.elements_by_class("p");
//! let wrapper = WrapperInducer::default().try_induce_best(&v1, &targets).unwrap();
//! let bundle = WrapperBundle::from_wrapper(&wrapper, Default::default()).with_label("prices");
//!
//! // … the site renames the class ("p" → "price") in version 2 …
//! let v2 = Document::parse(
//!     r#"<body><ul id="nav"><li>Home</li><li>Offers</li><li>About</li></ul>
//!        <div id="prices"><span class="price">10</span><span class="price">30</span></div></body>"#,
//! ).unwrap();
//!
//! // … and the maintenance loop flags, classifies and repairs the wrapper.
//! let maintainer = Maintainer::default();
//! let log = maintainer.run(
//!     "prices",
//!     bundle,
//!     &[PageVersion { day: 0, doc: v1 }, PageVersion { day: 20, doc: v2 }],
//!     None,
//! );
//! assert!(log.outcomes[1].repaired);
//! let repaired = &log.bundle;
//! assert_eq!(repaired.revision, 1);
//! let doc2 = Document::parse(
//!     r#"<body><ul id="nav"><li>Home</li><li>Offers</li><li>About</li></ul>
//!        <div id="prices"><span class="price">40</span><span class="price">50</span></div></body>"#,
//! ).unwrap();
//! assert_eq!(repaired.extract(&doc2, doc2.root()).unwrap(), doc2.elements_by_class("price"));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drift;
pub(crate) mod incremental;
pub mod lifecycle;
pub mod registry;
pub mod repair;
pub(crate) mod telemetry;
pub mod verify;

use wi_dom::Document;
// Re-exported so downstream code and the doc examples can name every piece
// of the loop from one crate.
pub use drift::{DriftClass, DriftClassifier, DriftConfig, DriftReport, FixKind, QueryFix};
pub use lifecycle::{EpochOutcome, MaintainConfig, Maintainer, MaintenanceLog, WrapperState};
pub use registry::{
    shard_of, CompactionPolicy, CompactionStats, Durability, LogRecord, MaintenanceJob,
    ObjectStore, PersistentRegistry, RecoveryReport, Registry, RegistryError, ReplicationStats,
    ShardStats, SnapshotStats, TornTail, VersionRecord,
};
pub use repair::{RepairAction, RepairConfig, Repairer};
pub use verify::{HealthReport, HealthSignal, LastKnownGood, Verifier, VerifyConfig};
pub use wi_induction::{WrapperBundle, WrapperInducer};

/// One version of a page in an archive timeline: the day it was captured and
/// the parsed document.
///
/// The day is an opaque offset (the webgen archive counts days from
/// 2008-01-01); the maintenance loop only ever compares and reports it.
#[derive(Debug, Clone)]
pub struct PageVersion {
    /// Capture day (archive-defined offset).
    pub day: i64,
    /// The captured document.
    pub doc: Document,
}
